"""In-memory annotated databases (N[X]-relations, Sec. 2.3).

An :class:`AnnotatedDatabase` maps each tuple of each relation to a
provenance annotation symbol.  A database is *abstractly tagged* when
all annotations are distinct — the paper's standing assumption outside
Sec. 6.  Databases with repeated annotations are fully supported so
that the Sec. 6 results (Thms. 6.1 and 6.2) can be exercised.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import (
    NotAbstractlyTaggedError,
    SchemaError,
    UnknownAnnotationError,
)
from repro.utils.naming import NameSupply

Value = Hashable
Row = Tuple[Value, ...]
FactKey = Tuple[str, Row]

#: One entry of the change log: ``(version, op, relation, row, annotation)``
#: where ``op`` is ``"insert"``, ``"delete"`` or ``"retag"``.  For a retag
#: the annotation field holds the *new* annotation.
ChangeRecord = Tuple[int, str, str, Row, str]


class AnnotatedDatabase:
    """A database whose tuples carry provenance annotations.

    >>> db = AnnotatedDatabase()
    >>> db.add("R", ("a", "b"))
    's1'
    >>> db.add("R", ("b", "a"), annotation="s9")
    's9'
    >>> db.annotation_of("R", ("a", "b"))
    's1'
    """

    def __init__(
        self, annotation_prefix: str = "s", track_changes: bool = True
    ):  # noqa: D107
        self._relations: Dict[str, Dict[Row, str]] = {}
        self._arities: Dict[str, int] = {}
        self._supply = NameSupply(annotation_prefix)
        self._by_annotation: Dict[str, List[FactKey]] = {}
        self._version = 0
        self._track_changes = track_changes
        self._changelog: List[ChangeRecord] = []

    def _log(self, op: str, relation: str, row: Row, annotation: str) -> None:
        self._version += 1
        if self._track_changes:
            self._changelog.append((self._version, op, relation, row, annotation))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        relations: Mapping[str, Mapping[Sequence[Value], str]],
    ) -> "AnnotatedDatabase":
        """Build from ``{relation: {tuple: annotation}}``.

        >>> db = AnnotatedDatabase.from_dict({"R": {("a", "b"): "s1"}})
        >>> db.annotation_of("R", ("a", "b"))
        's1'
        """
        db = cls()
        for relation, rows in relations.items():
            for row, annotation in rows.items():
                db.add(relation, tuple(row), annotation=annotation)
        return db

    @classmethod
    def from_rows(
        cls, relations: Mapping[str, Iterable[Sequence[Value]]]
    ) -> "AnnotatedDatabase":
        """Build abstractly-tagged from ``{relation: [tuples]}``; fresh
        annotations ``s1, s2, ...`` are assigned in iteration order."""
        db = cls()
        for relation, rows in relations.items():
            for row in rows:
                db.add(relation, tuple(row))
        return db

    def checkpoint_state(self) -> Dict[str, object]:
        """Internal state needed to rebuild this database exactly.

        Unlike the fact list alone, the checkpoint carries the version
        counter, the fresh-name supply, and empty-but-declared relations,
        so a database restored via :meth:`from_checkpoint` continues to
        generate the same annotations and version numbers as the
        original would have — the invariant durable recovery needs for
        byte-identical replay.  The change log is deliberately excluded:
        consumers re-synchronise from the restored version.
        """
        return {
            "relations": {
                relation: dict(rows) for relation, rows in self._relations.items()
            },
            "arities": dict(self._arities),
            "version": self._version,
            "supply": self._supply.state(),
        }

    @classmethod
    def from_checkpoint(
        cls, state: Mapping[str, object], track_changes: bool = True
    ) -> "AnnotatedDatabase":
        """Rebuild a database from a :meth:`checkpoint_state` snapshot.

        Restoration writes the internal tables directly (it must not go
        through :meth:`add`, which would advance the version counter and
        re-derive the name supply).
        """
        db = cls(track_changes=track_changes)
        arities: Dict[str, int] = dict(state["arities"])  # type: ignore[arg-type]
        relations: Mapping[str, Mapping[Row, str]] = state["relations"]  # type: ignore[assignment]
        for relation, arity in arities.items():
            db._arities[relation] = int(arity)
            db._relations[relation] = {}
        for relation, rows in relations.items():
            table = db._relations[relation]
            for row, annotation in rows.items():
                row = tuple(row)
                table[row] = annotation
                db._by_annotation.setdefault(annotation, []).append((relation, row))
        db._version = int(state["version"])  # type: ignore[arg-type]
        db._supply = NameSupply.from_state(state["supply"])  # type: ignore[arg-type]
        return db

    def add(
        self,
        relation: str,
        row: Sequence[Value],
        annotation: Optional[str] = None,
    ) -> str:
        """Insert a tuple; returns its annotation.

        Without an explicit ``annotation`` a fresh one is generated,
        keeping the database abstractly tagged.  Re-inserting an
        existing tuple with a different annotation raises
        :class:`~repro.errors.SchemaError` (a tuple has one annotation).
        """
        row = tuple(row)
        if relation in self._arities:
            if self._arities[relation] != len(row):
                raise SchemaError(
                    "relation {} has arity {}, got a {}-tuple".format(
                        relation, self._arities[relation], len(row)
                    )
                )
        else:
            self._arities[relation] = len(row)
            self._relations[relation] = {}
        existing = self._relations[relation].get(row)
        if existing is not None:
            if annotation is not None and annotation != existing:
                raise SchemaError(
                    "tuple {}{} is already annotated {}".format(relation, row, existing)
                )
            return existing
        if annotation is None:
            annotation = self._supply.fresh()
        else:
            self._supply.reserve(annotation)
        self._relations[relation][row] = annotation
        self._by_annotation.setdefault(annotation, []).append((relation, row))
        self._log("insert", relation, row, annotation)
        return annotation

    def remove(self, relation: str, row: Sequence[Value]) -> str:
        """Delete a tuple; returns the annotation it carried.

        Raises :class:`~repro.errors.SchemaError` when the tuple is
        absent.  The relation stays declared (with its arity), so later
        re-insertions keep working.
        """
        row = tuple(row)
        rows = self._relations.get(relation)
        if rows is None or row not in rows:
            raise SchemaError(
                "cannot remove absent tuple {}{}".format(relation, row)
            )
        annotation = rows.pop(row)
        facts = self._by_annotation[annotation]
        facts.remove((relation, row))
        if not facts:
            del self._by_annotation[annotation]
        self._log("delete", relation, row, annotation)
        return annotation

    def retag(self, relation: str, row: Sequence[Value], annotation: str) -> str:
        """Change the annotation of an existing tuple; returns the old one.

        This is the "annotation update" primitive of incremental view
        maintenance: the tuple itself is untouched, only its provenance
        symbol changes.
        """
        row = tuple(row)
        rows = self._relations.get(relation)
        if rows is None or row not in rows:
            raise SchemaError(
                "cannot retag absent tuple {}{}".format(relation, row)
            )
        old = rows[row]
        if annotation == old:
            return old
        rows[row] = annotation
        facts = self._by_annotation[old]
        facts.remove((relation, row))
        if not facts:
            del self._by_annotation[old]
        self._supply.reserve(annotation)
        self._by_annotation.setdefault(annotation, []).append((relation, row))
        self._log("retag", relation, row, annotation)
        return old

    def declare_relation(self, relation: str, arity: int) -> None:
        """Declare an (initially empty) relation."""
        if relation in self._arities:
            if self._arities[relation] != arity:
                raise SchemaError(
                    "relation {} already declared with arity {}".format(
                        relation, self._arities[relation]
                    )
                )
            return
        self._arities[relation] = arity
        self._relations[relation] = {}

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def relations(self) -> Set[str]:
        """Names of the stored relations."""
        return set(self._relations.keys())

    def arity(self, relation: str) -> int:
        """Arity of ``relation``."""
        if relation not in self._arities:
            raise SchemaError("unknown relation {}".format(relation))
        return self._arities[relation]

    def rows(self, relation: str) -> List[Row]:
        """All tuples of ``relation`` (empty for unknown relations —
        queries over absent relations simply have no assignments)."""
        return list(self._relations.get(relation, {}).keys())

    def cardinality(self, relation: str) -> int:
        """Number of tuples in ``relation`` (0 for unknown relations).

        Constant-time — planners key join orders on cardinalities, so
        this must not copy the row set the way :meth:`rows` does.
        """
        return len(self._relations.get(relation, ()))

    def facts(self, relation: str) -> List[Tuple[Row, str]]:
        """``(tuple, annotation)`` pairs of ``relation``."""
        return list(self._relations.get(relation, {}).items())

    def all_facts(self) -> Iterator[Tuple[str, Row, str]]:
        """``(relation, tuple, annotation)`` triples of the database."""
        for relation, rows in self._relations.items():
            for row, annotation in rows.items():
                yield relation, row, annotation

    def annotation_of(self, relation: str, row: Sequence[Value]) -> str:
        """The annotation of a tuple; raises ``KeyError`` when absent."""
        return self._relations[relation][tuple(row)]

    def contains(self, relation: str, row: Sequence[Value]) -> bool:
        """Is the tuple present?  (Cheap dictionary lookup.)"""
        return tuple(row) in self._relations.get(relation, {})

    def version(self) -> int:
        """Monotonically increasing modification counter.

        Every :meth:`add`, :meth:`remove` and :meth:`retag` that actually
        changes the database bumps it by one; a snapshot of the version
        plus :meth:`changes_since` yields the delta accumulated since.
        """
        return self._version

    def changes_since(self, version: int) -> List[ChangeRecord]:
        """The change records logged after ``version``.

        This is the cheap tuple-touch bookkeeping consumed by
        :mod:`repro.incremental`:  callers snapshot :meth:`version`,
        mutate freely, then fold the returned records into a
        :class:`~repro.incremental.delta.Delta` batch.  Versions in the
        log are strictly increasing, so the cut point is found by
        bisection.  Databases built with ``track_changes=False`` keep
        no log (the version counter still advances).
        """
        records = self._changelog
        low, high = 0, len(records)
        while low < high:
            mid = (low + high) // 2
            if records[mid][0] <= version:
                low = mid + 1
            else:
                high = mid
        return records[low:]

    def prune_changes(self, version: int) -> int:
        """Drop change records at or before ``version``; returns the count.

        The change log exists so incremental consumers can catch up from
        a version snapshot; once every consumer has folded the records
        up to ``version`` in (a :class:`~repro.db.sharding.ShardedDatabase`
        refresh does), that prefix is dead weight.  Long-lived refresh
        loops prune as they go to keep memory bounded.
        """
        records = self._changelog
        low, high = 0, len(records)
        while low < high:
            mid = (low + high) // 2
            if records[mid][0] <= version:
                low = mid + 1
            else:
                high = mid
        if low:
            del records[:low]
        return low

    def tuples_for_annotation(self, annotation: str) -> List[FactKey]:
        """All ``(relation, tuple)`` pairs carrying ``annotation``."""
        return list(self._by_annotation.get(annotation, []))

    def tuple_for_annotation(self, annotation: str) -> FactKey:
        """The unique tuple carrying ``annotation``.

        Requires abstract tagging for uniqueness; raises
        :class:`~repro.errors.UnknownAnnotationError` when absent and
        :class:`~repro.errors.NotAbstractlyTaggedError` when ambiguous.
        This is the inversion step of the Sec. 5 direct-computation
        pipeline.
        """
        facts = self._by_annotation.get(annotation, [])
        if not facts:
            raise UnknownAnnotationError(
                "no tuple is annotated {}".format(annotation)
            )
        if len(facts) > 1:
            raise NotAbstractlyTaggedError(
                "annotation {} tags {} tuples; the database is not "
                "abstractly tagged".format(annotation, len(facts))
            )
        return facts[0]

    def is_abstractly_tagged(self) -> bool:
        """True when all annotations are pairwise distinct (Sec. 2.3)."""
        return all(len(facts) == 1 for facts in self._by_annotation.values())

    def annotations(self) -> Set[str]:
        """All annotation symbols in use."""
        return set(self._by_annotation.keys())

    def active_domain(self) -> Set[Value]:
        """All values occurring in any tuple."""
        domain: Set[Value] = set()
        for rows in self._relations.values():
            for row in rows:
                domain.update(row)
        return domain

    def fact_count(self) -> int:
        """Total number of tuples."""
        return sum(len(rows) for rows in self._relations.values())

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def retagged(self, prefix: str = "t") -> Tuple["AnnotatedDatabase", Dict[str, str]]:
        """A fresh abstractly-tagged copy plus the re-tagging map.

        Every tuple receives a new distinct annotation; the returned map
        sends each *new* annotation to the original one.  This is the
        construction behind Thm. 6.1 (p-minimality transfers to
        non-abstractly-tagged databases).
        """
        copy = AnnotatedDatabase(annotation_prefix=prefix)
        mapping: Dict[str, str] = {}
        for relation, row, annotation in sorted(self.all_facts()):
            fresh = copy.add(relation, row)
            mapping[fresh] = annotation
        return copy, mapping

    def __len__(self) -> int:
        return self.fact_count()

    def __repr__(self) -> str:
        return "<AnnotatedDatabase {} relations, {} facts>".format(
            len(self._relations), self.fact_count()
        )

"""Horizontal hash-partitioning of annotated databases into shards.

The shard-parallel engine (:mod:`repro.engine.sharded`) splits the
work of one hash-join plan across N shards.  Its correctness model is
**anchored partitioning**: every row of a partitioned relation has one
*owner* shard (a deterministic hash of the row), and a plan run on
shard ``i`` restricts exactly one join step — the *anchor* — to the
rows shard ``i`` owns, while every other step scans a replicated copy.
Each Def. 2.6 assignment maps the anchor atom to exactly one row and
that row is owned by exactly one shard, so the per-shard results
partition the assignment space: their union is the Def. 2.12 sum over
assignments, monomial for monomial.  Self-joins are safe because only
the anchor occurrence is restricted.

Relations below the broadcast threshold take the **broadcast path**:
they are replicated without owners and never anchor a plan (a tiny
anchor fragment would idle most shards); a plan whose relations are all
broadcast runs on a single shard.

:class:`ShardedDatabase` is the parent-side bookkeeping — ownership
maps, refresh-on-change, broadcast promotion/demotion — and
:class:`ShardPayload` is the immutable, picklable snapshot shipped to
worker processes (or shared by reference with worker threads).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.db.instance import AnnotatedDatabase, Row
from repro.errors import EvaluationError
from repro.obs.trace import current_tracer

#: Relations with fewer rows than this are broadcast (replicated without
#: owners) instead of hash-partitioned; see :class:`ShardedDatabase`.
DEFAULT_BROADCAST_THRESHOLD = 16

#: Owner tag of broadcast rows inside a :class:`ShardPayload`.
OWNER_BROADCAST = -1


def shard_of(row: Row, shard_count: int) -> int:
    """The owner shard of ``row`` — deterministic across processes.

    Python's builtin ``hash`` is salted per process, so worker processes
    could not reproduce the parent's partitioning with it; CRC32 of the
    row's ``repr`` is stable for the hashable values databases hold.

    >>> shard_of(("a", 1), 4) == shard_of(("a", 1), 4)
    True
    >>> 0 <= shard_of(("a", 1), 3) < 3
    True
    """
    return zlib.crc32(repr(row).encode("utf-8")) % shard_count


class ShardPayload:
    """A self-contained, picklable snapshot of a sharded database.

    Every relation ships in full — the replicated probe copies the
    non-anchor join steps need — with each row tagged by its owner
    shard (:data:`OWNER_BROADCAST` for broadcast relations).  Workers
    derive anchor fragments by filtering on the owner tag, caching per
    ``(relation, shard)`` so a batch filters each fragment once.
    """

    def __init__(
        self,
        shard_count: int,
        epoch: int,
        arities: Mapping[str, int],
        relations: Mapping[str, Tuple[Tuple[Row, str, int], ...]],
    ):  # noqa: D107
        self.shard_count = shard_count
        #: The parent-side epoch this snapshot was taken at.
        self.epoch = epoch
        self._arities = dict(arities)
        self._relations = dict(relations)
        self._facts_cache: Dict[str, List[Tuple[Row, str]]] = {}
        self._owned_cache: Dict[Tuple[str, int], List[Tuple[Row, str]]] = {}

    def __getstate__(self):
        return (self.shard_count, self.epoch, self._arities, self._relations)

    def __setstate__(self, state):
        self.shard_count, self.epoch, self._arities, self._relations = state
        self._facts_cache = {}
        self._owned_cache = {}

    def relations(self) -> Set[str]:
        """Names of the relations in the snapshot."""
        return set(self._relations)

    def arity(self, relation: str) -> Optional[int]:
        """Arity of ``relation`` (``None`` when unknown)."""
        return self._arities.get(relation)

    def facts(self, relation: str) -> List[Tuple[Row, str]]:
        """The full ``(row, annotation)`` list (empty when unknown)."""
        cached = self._facts_cache.get(relation)
        if cached is None:
            cached = self._facts_cache[relation] = [
                (row, annotation)
                for row, annotation, _owner in self._relations.get(relation, ())
            ]
        return cached

    def owned_facts(self, relation: str, shard_index: int) -> List[Tuple[Row, str]]:
        """The anchor fragment: rows of ``relation`` owned by one shard."""
        key = (relation, shard_index)
        cached = self._owned_cache.get(key)
        if cached is None:
            cached = self._owned_cache[key] = [
                (row, annotation)
                for row, annotation, owner in self._relations.get(relation, ())
                if owner == shard_index
            ]
        return cached

    def fact_count(self) -> int:
        """Total number of rows in the snapshot."""
        return sum(len(rows) for rows in self._relations.values())

    def __repr__(self) -> str:
        return "<ShardPayload {} relations, {} facts, {} shards>".format(
            len(self._relations), self.fact_count(), self.shard_count
        )


class ShardedDatabase:
    """Hash-partitioned view of an :class:`AnnotatedDatabase`.

    Partitioning is computed once and kept **warm**: :meth:`refresh`
    folds the database's change log into the ownership maps instead of
    re-hashing every relation, so a refresh loop pays per *delta*, not
    per database size.  Relations crossing the broadcast threshold in
    either direction are promoted/demoted during refresh.

    >>> db = AnnotatedDatabase.from_rows({"R": [("a", i) for i in range(6)]})
    >>> sharded = ShardedDatabase(db, shard_count=2, broadcast_threshold=4)
    >>> sharded.partitioned_relations()
    {'R'}
    >>> sum(len(sharded.fragment("R", i)) for i in range(2))
    6
    """

    def __init__(
        self,
        db: AnnotatedDatabase,
        shard_count: int,
        broadcast_threshold: Optional[int] = None,
    ):  # noqa: D107
        if shard_count < 1:
            raise EvaluationError("shard count must be positive")
        self._db = db
        self._shard_count = shard_count
        self._threshold = (
            DEFAULT_BROADCAST_THRESHOLD
            if broadcast_threshold is None
            else broadcast_threshold
        )
        self._owners: Dict[str, Dict[Row, int]] = {}
        self._synced_version = db.version()
        self._epoch = 0
        self._payload: Optional[ShardPayload] = None
        self._rebuild()

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shards rows are partitioned into."""
        return self._shard_count

    @property
    def broadcast_threshold(self) -> int:
        """Relations smaller than this are broadcast, not partitioned."""
        return self._threshold

    @property
    def epoch(self) -> int:
        """Bumped whenever content or partitioning changed (pool keying)."""
        return self._epoch

    def _partition_relation(self, relation: str) -> None:
        if self._db.cardinality(relation) >= self._threshold:
            self._owners[relation] = {
                row: shard_of(row, self._shard_count)
                for row in self._db.rows(relation)
            }
        else:
            self._owners.pop(relation, None)

    def _rebuild(self) -> None:
        self._owners.clear()
        for relation in self._db.relations():
            self._partition_relation(relation)

    def refresh(self) -> bool:
        """Sync partitioning with the database; returns True on change.

        Uses :meth:`AnnotatedDatabase.changes_since` when the database
        keeps a change log (each record touches one row's ownership);
        falls back to a full re-partition otherwise.  Either way the
        cached payload is invalidated and the epoch bumps, so executors
        re-ship snapshots to their workers exactly when needed.
        """
        version = self._db.version()
        if version == self._synced_version:
            return False
        records = self._db.changes_since(self._synced_version)
        repartition_cm = current_tracer().span(
            "shard.repartition", records=len(records)
        )
        repartition_cm.__enter__()
        if not records:
            self._rebuild()
        else:
            touched: Set[str] = set()
            for _version, op, relation, row, _annotation in records:
                touched.add(relation)
                owners = self._owners.get(relation)
                if owners is None:
                    continue  # broadcast (or new): re-checked below
                if op == "insert":
                    owners[row] = shard_of(row, self._shard_count)
                elif op == "delete":
                    owners.pop(row, None)
                # retag: the row (hence its owner) is unchanged
            for relation in touched:
                partitioned_now = (
                    self._db.cardinality(relation) >= self._threshold
                )
                if partitioned_now != (relation in self._owners):
                    self._partition_relation(relation)
        self._synced_version = version
        self._payload = None
        self._epoch += 1
        repartition_cm.__exit__(None, None, None)
        return True

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def partitioned_relations(self) -> Set[str]:
        """Relations with per-shard owners (a copy)."""
        return set(self._owners)

    def broadcast_relations(self) -> Set[str]:
        """Relations replicated without owners (a copy)."""
        return self._db.relations() - set(self._owners)

    def is_partitioned(self, relation: str) -> bool:
        """Does ``relation`` have per-shard owners?"""
        return relation in self._owners

    def owner_of(self, relation: str, row: Row) -> Optional[int]:
        """The owner shard of one row (``None`` for broadcast rows)."""
        owners = self._owners.get(relation)
        return None if owners is None else owners.get(tuple(row))

    def fragment(self, relation: str, shard_index: int) -> Dict[Row, str]:
        """The ``{row: annotation}`` fragment one shard owns."""
        owners = self._owners.get(relation, {})
        return {
            row: annotation
            for row, annotation in self._db.facts(relation)
            if owners.get(row) == shard_index
        }

    def anchor_step_for(self, plan) -> Optional[int]:
        """The join step a plan should anchor on, or ``None``.

        Picks the step over the largest partitioned relation — the most
        rows to split is the best load balance.  ``None`` means every
        relation is broadcast: the plan runs on a single shard.
        """
        best: Optional[int] = None
        best_cardinality = -1
        for index, step in enumerate(plan.steps):
            if step.relation in self._owners:
                cardinality = self._db.cardinality(step.relation)
                if cardinality > best_cardinality:
                    best, best_cardinality = index, cardinality
        return best

    def payload(self) -> ShardPayload:
        """The current snapshot (cached until the next refresh)."""
        if self._payload is None:
            with current_tracer().span("shard.snapshot") as span:
                relations: Dict[str, Tuple[Tuple[Row, str, int], ...]] = {}
                arities: Dict[str, int] = {}
                for relation in sorted(self._db.relations()):
                    arities[relation] = self._db.arity(relation)
                    owners = self._owners.get(relation)
                    if owners is None:
                        relations[relation] = tuple(
                            (row, annotation, OWNER_BROADCAST)
                            for row, annotation in self._db.facts(relation)
                        )
                    else:
                        relations[relation] = tuple(
                            (row, annotation, owners[row])
                            for row, annotation in self._db.facts(relation)
                        )
                self._payload = ShardPayload(
                    self._shard_count, self._epoch, arities, relations
                )
                span.set(facts=self._payload.fact_count())
        return self._payload

    def stats(self) -> Dict[str, int]:
        """Cheap size counters (for reports and tests)."""
        return {
            "shards": self._shard_count,
            "partitioned": len(self._owners),
            "broadcast": len(self.broadcast_relations()),
            "owned_rows": sum(len(owners) for owners in self._owners.values()),
            "epoch": self._epoch,
        }

    def __repr__(self) -> str:
        return (
            "<ShardedDatabase {shards} shards, {partitioned} partitioned, "
            "{broadcast} broadcast>".format(**self.stats())
        )


def partition_rows(
    rows: Sequence[Row], shard_count: int
) -> List[List[Row]]:
    """Hash-partition a row list into ``shard_count`` fragments.

    The standalone helper behind :class:`ShardedDatabase`, exposed for
    tests and tooling.

    >>> fragments = partition_rows([("a",), ("b",), ("c",)], 2)
    >>> sorted(row for fragment in fragments for row in fragment)
    [('a',), ('b',), ('c',)]
    """
    fragments: List[List[Row]] = [[] for _ in range(shard_count)]
    for row in rows:
        fragments[shard_of(row, shard_count)].append(row)
    return fragments

"""Horizontal hash-partitioning of annotated databases into shards.

The shard-parallel engine (:mod:`repro.engine.sharded`) splits the
work of one hash-join plan across N shards.  Its correctness model is
**anchored partitioning**: every row of a partitioned relation has one
*owner* shard (a deterministic hash of the row), and a plan run on
shard ``i`` restricts exactly one join step — the *anchor* — to the
rows shard ``i`` owns, while every other step scans a replicated copy.
Each Def. 2.6 assignment maps the anchor atom to exactly one row and
that row is owned by exactly one shard, so the per-shard results
partition the assignment space: their union is the Def. 2.12 sum over
assignments, monomial for monomial.  Self-joins are safe because only
the anchor occurrence is restricted.

Relations below the broadcast threshold take the **broadcast path**:
they are replicated without owners and never anchor a plan (a tiny
anchor fragment would idle most shards); a plan whose relations are all
broadcast runs on a single shard.

:class:`ShardedDatabase` is the parent-side bookkeeping — ownership
maps, refresh-on-change, broadcast promotion/demotion — and
:class:`ShardPayload` is the immutable, picklable snapshot shipped to
worker processes (or shared by reference with worker threads).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from array import array
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.db.instance import AnnotatedDatabase, Row
from repro.errors import EvaluationError
from repro.obs.trace import current_tracer

#: Relations with fewer rows than this are broadcast (replicated without
#: owners) instead of hash-partitioned; see :class:`ShardedDatabase`.
DEFAULT_BROADCAST_THRESHOLD = 16

#: Owner tag of broadcast rows inside a :class:`ShardPayload`.
OWNER_BROADCAST = -1


def shard_of(row: Row, shard_count: int) -> int:
    """The owner shard of ``row`` — deterministic across processes.

    Python's builtin ``hash`` is salted per process, so worker processes
    could not reproduce the parent's partitioning with it; CRC32 of the
    row's ``repr`` is stable for the hashable values databases hold.

    >>> shard_of(("a", 1), 4) == shard_of(("a", 1), 4)
    True
    >>> 0 <= shard_of(("a", 1), 3) < 3
    True
    """
    return zlib.crc32(repr(row).encode("utf-8")) % shard_count


class ShardPayload:
    """A self-contained, picklable snapshot of a sharded database.

    Every relation ships in full — the replicated probe copies the
    non-anchor join steps need — with each row tagged by its owner
    shard (:data:`OWNER_BROADCAST` for broadcast relations).  Workers
    derive anchor fragments by filtering on the owner tag, caching per
    ``(relation, shard)`` so a batch filters each fragment once.
    """

    def __init__(
        self,
        shard_count: int,
        epoch: int,
        arities: Mapping[str, int],
        relations: Mapping[str, Tuple[Tuple[Row, str, int], ...]],
    ):  # noqa: D107
        self.shard_count = shard_count
        #: The parent-side epoch this snapshot was taken at.
        self.epoch = epoch
        self._arities = dict(arities)
        self._relations = dict(relations)
        self._facts_cache: Dict[str, List[Tuple[Row, str]]] = {}
        self._owned_cache: Dict[Tuple[str, int], List[Tuple[Row, str]]] = {}
        #: Snapshot-scoped join-index cache (see ``hashjoin._execute``):
        #: the snapshot is immutable, so indexes built over it stay valid
        #: for its whole lifetime and die with it.  Never pickled.
        self.index_cache: Dict = {}

    def __getstate__(self):
        return (self.shard_count, self.epoch, self._arities, self._relations)

    def __setstate__(self, state):
        self.shard_count, self.epoch, self._arities, self._relations = state
        self._facts_cache = {}
        self._owned_cache = {}
        self.index_cache = {}

    def relations(self) -> Set[str]:
        """Names of the relations in the snapshot."""
        return set(self._relations)

    def arity(self, relation: str) -> Optional[int]:
        """Arity of ``relation`` (``None`` when unknown)."""
        return self._arities.get(relation)

    def facts(self, relation: str) -> List[Tuple[Row, str]]:
        """The full ``(row, annotation)`` list (empty when unknown)."""
        cached = self._facts_cache.get(relation)
        if cached is None:
            cached = self._facts_cache[relation] = [
                (row, annotation)
                for row, annotation, _owner in self._relations.get(relation, ())
            ]
        return cached

    def owned_facts(self, relation: str, shard_index: int) -> List[Tuple[Row, str]]:
        """The anchor fragment: rows of ``relation`` owned by one shard."""
        key = (relation, shard_index)
        cached = self._owned_cache.get(key)
        if cached is None:
            cached = self._owned_cache[key] = [
                (row, annotation)
                for row, annotation, owner in self._relations.get(relation, ())
                if owner == shard_index
            ]
        return cached

    def fact_count(self) -> int:
        """Total number of rows in the snapshot."""
        return sum(len(rows) for rows in self._relations.values())

    def __repr__(self) -> str:
        return "<ShardPayload {} relations, {} facts, {} shards>".format(
            len(self._relations), self.fact_count(), self.shard_count
        )


class ShardedDatabase:
    """Hash-partitioned view of an :class:`AnnotatedDatabase`.

    Partitioning is computed once and kept **warm**: :meth:`refresh`
    folds the database's change log into the ownership maps instead of
    re-hashing every relation, so a refresh loop pays per *delta*, not
    per database size.  Relations crossing the broadcast threshold in
    either direction are promoted/demoted during refresh.

    >>> db = AnnotatedDatabase.from_rows({"R": [("a", i) for i in range(6)]})
    >>> sharded = ShardedDatabase(db, shard_count=2, broadcast_threshold=4)
    >>> sharded.partitioned_relations()
    {'R'}
    >>> sum(len(sharded.fragment("R", i)) for i in range(2))
    6
    """

    def __init__(
        self,
        db: AnnotatedDatabase,
        shard_count: int,
        broadcast_threshold: Optional[int] = None,
    ):  # noqa: D107
        if shard_count < 1:
            raise EvaluationError("shard count must be positive")
        self._db = db
        self._shard_count = shard_count
        self._threshold = (
            DEFAULT_BROADCAST_THRESHOLD
            if broadcast_threshold is None
            else broadcast_threshold
        )
        self._owners: Dict[str, Dict[Row, int]] = {}
        self._synced_version = db.version()
        self._epoch = 0
        self._payload: Optional[ShardPayload] = None
        self._rebuild()

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shards rows are partitioned into."""
        return self._shard_count

    @property
    def broadcast_threshold(self) -> int:
        """Relations smaller than this are broadcast, not partitioned."""
        return self._threshold

    @property
    def epoch(self) -> int:
        """Bumped whenever content or partitioning changed (pool keying)."""
        return self._epoch

    def _partition_relation(self, relation: str) -> None:
        if self._db.cardinality(relation) >= self._threshold:
            self._owners[relation] = {
                row: shard_of(row, self._shard_count)
                for row in self._db.rows(relation)
            }
        else:
            self._owners.pop(relation, None)

    def _rebuild(self) -> None:
        self._owners.clear()
        for relation in self._db.relations():
            self._partition_relation(relation)

    def refresh(self) -> bool:
        """Sync partitioning with the database; returns True on change.

        Uses :meth:`AnnotatedDatabase.changes_since` when the database
        keeps a change log (each record touches one row's ownership);
        falls back to a full re-partition otherwise.  Either way the
        cached payload is invalidated and the epoch bumps, so executors
        re-ship snapshots to their workers exactly when needed.
        """
        version = self._db.version()
        if version == self._synced_version:
            return False
        records = self._db.changes_since(self._synced_version)
        repartition_cm = current_tracer().span(
            "shard.repartition", records=len(records)
        )
        repartition_cm.__enter__()
        if not records:
            self._rebuild()
        else:
            touched: Set[str] = set()
            for _version, op, relation, row, _annotation in records:
                touched.add(relation)
                owners = self._owners.get(relation)
                if owners is None:
                    continue  # broadcast (or new): re-checked below
                if op == "insert":
                    owners[row] = shard_of(row, self._shard_count)
                elif op == "delete":
                    owners.pop(row, None)
                # retag: the row (hence its owner) is unchanged
            for relation in touched:
                partitioned_now = (
                    self._db.cardinality(relation) >= self._threshold
                )
                if partitioned_now != (relation in self._owners):
                    self._partition_relation(relation)
        self._synced_version = version
        self._payload = None
        self._epoch += 1
        repartition_cm.__exit__(None, None, None)
        return True

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def partitioned_relations(self) -> Set[str]:
        """Relations with per-shard owners (a copy)."""
        return set(self._owners)

    def broadcast_relations(self) -> Set[str]:
        """Relations replicated without owners (a copy)."""
        return self._db.relations() - set(self._owners)

    def is_partitioned(self, relation: str) -> bool:
        """Does ``relation`` have per-shard owners?"""
        return relation in self._owners

    def owner_of(self, relation: str, row: Row) -> Optional[int]:
        """The owner shard of one row (``None`` for broadcast rows)."""
        owners = self._owners.get(relation)
        return None if owners is None else owners.get(tuple(row))

    def fragment(self, relation: str, shard_index: int) -> Dict[Row, str]:
        """The ``{row: annotation}`` fragment one shard owns."""
        owners = self._owners.get(relation, {})
        return {
            row: annotation
            for row, annotation in self._db.facts(relation)
            if owners.get(row) == shard_index
        }

    def anchor_step_for(self, plan) -> Optional[int]:
        """The join step a plan should anchor on, or ``None``.

        Picks the step over the largest partitioned relation — the most
        rows to split is the best load balance.  ``None`` means every
        relation is broadcast: the plan runs on a single shard.
        """
        best: Optional[int] = None
        best_cardinality = -1
        for index, step in enumerate(plan.steps):
            if step.relation in self._owners:
                cardinality = self._db.cardinality(step.relation)
                if cardinality > best_cardinality:
                    best, best_cardinality = index, cardinality
        return best

    def payload(self) -> ShardPayload:
        """The current snapshot (cached until the next refresh)."""
        if self._payload is None:
            with current_tracer().span("shard.snapshot") as span:
                relations: Dict[str, Tuple[Tuple[Row, str, int], ...]] = {}
                arities: Dict[str, int] = {}
                for relation in sorted(self._db.relations()):
                    arities[relation] = self._db.arity(relation)
                    owners = self._owners.get(relation)
                    if owners is None:
                        relations[relation] = tuple(
                            (row, annotation, OWNER_BROADCAST)
                            for row, annotation in self._db.facts(relation)
                        )
                    else:
                        relations[relation] = tuple(
                            (row, annotation, owners[row])
                            for row, annotation in self._db.facts(relation)
                        )
                self._payload = ShardPayload(
                    self._shard_count, self._epoch, arities, relations
                )
                span.set(facts=self._payload.fact_count())
        return self._payload

    def stats(self) -> Dict[str, int]:
        """Cheap size counters (for reports and tests)."""
        return {
            "shards": self._shard_count,
            "partitioned": len(self._owners),
            "broadcast": len(self.broadcast_relations()),
            "owned_rows": sum(len(owners) for owners in self._owners.values()),
            "epoch": self._epoch,
        }

    def __repr__(self) -> str:
        return (
            "<ShardedDatabase {shards} shards, {partitioned} partitioned, "
            "{broadcast} broadcast>".format(**self.stats())
        )


# ----------------------------------------------------------------------
# Offset-based payload codec (shared memory now, wire format later)
# ----------------------------------------------------------------------
#: Leading magic of an encoded payload ("RePro Columnar Payload").
PAYLOAD_MAGIC = b"RPCP"

#: Bump on incompatible layout changes; decoders reject mismatches.
PAYLOAD_VERSION = 1

#: Cell/annotation type tags.  Everything a database commonly holds gets
#: a compact fixed encoding; anything else round-trips through pickle.
_TAG_STR = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_NONE = 3
_TAG_TRUE = 4
_TAG_FALSE = 5
_TAG_PICKLE = 6

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

_HEADER = struct.Struct("<4sIIQI")
_RELATION_HEADER = struct.Struct("<IiQ")


def _encode_value(value, blob: bytearray) -> None:
    kind = type(value)
    if kind is str:
        blob.append(_TAG_STR)
        blob += value.encode("utf-8")
    elif kind is bool:
        blob.append(_TAG_TRUE if value else _TAG_FALSE)
    elif kind is int and _INT64_MIN <= value <= _INT64_MAX:
        blob.append(_TAG_INT)
        blob += value.to_bytes(8, "little", signed=True)
    elif kind is float:
        blob.append(_TAG_FLOAT)
        blob += struct.pack("<d", value)
    elif value is None:
        blob.append(_TAG_NONE)
    else:
        blob.append(_TAG_PICKLE)
        blob += pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_value(blob, lo: int, hi: int):
    tag = blob[lo]
    if tag == _TAG_STR:
        return str(bytes(blob[lo + 1:hi]), "utf-8")
    if tag == _TAG_INT:
        return int.from_bytes(blob[lo + 1:hi], "little", signed=True)
    if tag == _TAG_FLOAT:
        return struct.unpack("<d", blob[lo + 1:hi])[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_PICKLE:
        return pickle.loads(bytes(blob[lo + 1:hi]))
    raise EvaluationError("corrupt payload: unknown cell tag {}".format(tag))


def encode_payload(payload: ShardPayload) -> bytes:
    """Serialize a :class:`ShardPayload` into the offset-based layout.

    The format (documented in ``DESIGN.md``) is a header followed by one
    block per relation; each block stores the owner column as a flat
    int array and the annotation/cell values as tagged blobs delimited
    by prefix-offset arrays — decoders slice, they never scan.  The same
    bytes back the ``multiprocessing.shared_memory`` shipping path today
    and are intended as the multi-node wire format.
    """
    chunks: List[bytes] = []
    relations = sorted(payload._relations)
    chunks.append(
        _HEADER.pack(
            PAYLOAD_MAGIC,
            PAYLOAD_VERSION,
            payload.shard_count,
            payload.epoch,
            len(relations),
        )
    )
    for relation in relations:
        rows = payload._relations[relation]
        arity = payload._arities.get(relation)
        if arity is None:
            arity = len(rows[0][0]) if rows else 0
        name = relation.encode("utf-8")
        owners = array("i")
        ann_offsets = array("q", [0])
        ann_blob = bytearray()
        cell_offsets = array("q", [0])
        cell_blob = bytearray()
        for row, annotation, owner in rows:
            if len(row) != arity:
                raise EvaluationError(
                    "row arity mismatch in {!r}".format(relation)
                )
            owners.append(owner)
            _encode_value(annotation, ann_blob)
            ann_offsets.append(len(ann_blob))
            for value in row:
                _encode_value(value, cell_blob)
                cell_offsets.append(len(cell_blob))
        chunks.append(_RELATION_HEADER.pack(len(name), arity, len(rows)))
        chunks.append(name)
        chunks.append(owners.tobytes())
        chunks.append(ann_offsets.tobytes())
        chunks.append(bytes(ann_blob))
        chunks.append(cell_offsets.tobytes())
        chunks.append(bytes(cell_blob))
    return b"".join(chunks)


class _RelationBlock:
    """Directory entry of one relation inside an encoded payload."""

    __slots__ = (
        "arity", "n_rows", "owners", "ann_offsets", "ann_blob",
        "cell_offsets", "cell_blob",
    )

    def __init__(self, arity, n_rows, owners, ann_offsets, ann_blob,
                 cell_offsets, cell_blob):  # noqa: D107
        self.arity = arity
        self.n_rows = n_rows
        self.owners = owners
        self.ann_offsets = ann_offsets
        self.ann_blob = ann_blob
        self.cell_offsets = cell_offsets
        self.cell_blob = cell_blob


class SharedPayloadView:
    """A :class:`ShardPayload`-shaped reader over an encoded buffer.

    Workers attach to the parent's shared-memory segment and build this
    view over its buffer: the directory is parsed eagerly (offsets and
    sizes only), rows are decoded lazily per relation on first access —
    a plan touching two relations never materializes the rest.  The
    buffer must outlive the view (the worker keeps the segment mapped
    for the pool's lifetime).
    """

    def __init__(self, buf):  # noqa: D107
        view = memoryview(buf)
        if len(view) < _HEADER.size:
            raise EvaluationError("corrupt payload: truncated header")
        magic, version, shard_count, epoch, n_relations = _HEADER.unpack_from(
            view, 0
        )
        if magic != PAYLOAD_MAGIC:
            raise EvaluationError("corrupt payload: bad magic")
        if version != PAYLOAD_VERSION:
            raise EvaluationError(
                "unsupported payload version {}".format(version)
            )
        self.shard_count = shard_count
        self.epoch = epoch
        self._blocks: Dict[str, _RelationBlock] = {}
        self._facts_cache: Dict[str, List[Tuple[Row, str]]] = {}
        self._owned_cache: Dict[Tuple[str, int], List[Tuple[Row, str]]] = {}
        #: Same contract as :attr:`ShardPayload.index_cache`.
        self.index_cache: Dict = {}
        cursor = _HEADER.size
        for _ in range(n_relations):
            name_len, arity, n_rows = _RELATION_HEADER.unpack_from(
                view, cursor
            )
            cursor += _RELATION_HEADER.size
            name = str(bytes(view[cursor:cursor + name_len]), "utf-8")
            cursor += name_len
            owners = array("i")
            owners.frombytes(view[cursor:cursor + 4 * n_rows])
            cursor += 4 * n_rows
            ann_offsets = array("q")
            ann_offsets.frombytes(view[cursor:cursor + 8 * (n_rows + 1)])
            cursor += 8 * (n_rows + 1)
            ann_blob = view[cursor:cursor + ann_offsets[-1]]
            cursor += ann_offsets[-1]
            n_cells = n_rows * arity
            cell_offsets = array("q")
            cell_offsets.frombytes(view[cursor:cursor + 8 * (n_cells + 1)])
            cursor += 8 * (n_cells + 1)
            cell_blob = view[cursor:cursor + cell_offsets[-1]]
            cursor += cell_offsets[-1]
            self._blocks[name] = _RelationBlock(
                arity, n_rows, owners, ann_offsets, ann_blob,
                cell_offsets, cell_blob,
            )

    def relations(self) -> Set[str]:
        """Names of the relations in the snapshot."""
        return set(self._blocks)

    def arity(self, relation: str) -> Optional[int]:
        """Arity of ``relation`` (``None`` when unknown)."""
        block = self._blocks.get(relation)
        return None if block is None else block.arity

    def facts(self, relation: str) -> List[Tuple[Row, str]]:
        """The full ``(row, annotation)`` list, decoded once and cached."""
        cached = self._facts_cache.get(relation)
        if cached is None:
            block = self._blocks.get(relation)
            if block is None:
                cached = self._facts_cache[relation] = []
                return cached
            arity = block.arity
            ann_offsets = block.ann_offsets
            ann_blob = block.ann_blob
            cell_offsets = block.cell_offsets
            cell_blob = block.cell_blob
            decoded: List[Tuple[Row, str]] = []
            cell = 0
            for i in range(block.n_rows):
                row = tuple(
                    _decode_value(
                        cell_blob, cell_offsets[cell + j], cell_offsets[cell + j + 1]
                    )
                    for j in range(arity)
                )
                cell += arity
                annotation = _decode_value(
                    ann_blob, ann_offsets[i], ann_offsets[i + 1]
                )
                decoded.append((row, annotation))
            cached = self._facts_cache[relation] = decoded
        return cached

    def owned_facts(self, relation: str, shard_index: int) -> List[Tuple[Row, str]]:
        """The anchor fragment: rows of ``relation`` owned by one shard."""
        key = (relation, shard_index)
        cached = self._owned_cache.get(key)
        if cached is None:
            block = self._blocks.get(relation)
            if block is None:
                cached = self._owned_cache[key] = []
                return cached
            owners = block.owners
            facts = self.facts(relation)
            cached = self._owned_cache[key] = [
                facts[i]
                for i in range(block.n_rows)
                if owners[i] == shard_index
            ]
        return cached

    def fact_count(self) -> int:
        """Total number of rows in the snapshot."""
        return sum(block.n_rows for block in self._blocks.values())

    def __repr__(self) -> str:
        return "<SharedPayloadView {} relations, {} facts, {} shards>".format(
            len(self._blocks), self.fact_count(), self.shard_count
        )


def decode_payload(buf) -> SharedPayloadView:
    """Open an encoded payload buffer as a lazy, read-only view."""
    return SharedPayloadView(buf)


def partition_rows(
    rows: Sequence[Row], shard_count: int
) -> List[List[Row]]:
    """Hash-partition a row list into ``shard_count`` fragments.

    The standalone helper behind :class:`ShardedDatabase`, exposed for
    tests and tooling.

    >>> fragments = partition_rows([("a",), ("b",), ("c",)], 2)
    >>> sorted(row for fragment in fragments for row in fragment)
    [('a',), ('b',), ('c',)]
    """
    fragments: List[List[Row]] = [[] for _ in range(shard_count)]
    for row in rows:
        fragments[shard_of(row, shard_count)].append(row)
    return fragments

"""Annotated databases: N[X]-relations and their storage backends.

* :mod:`repro.db.instance` — the in-memory annotated database used by
  the backtracking engine and all symbolic algorithms;
* :mod:`repro.db.sqlite_backend` — a SQLite-backed store that evaluates
  compiled SQL and reassembles provenance polynomials;
* :mod:`repro.db.generators` — seeded random/synthetic workloads used by
  tests and benchmarks;
* :mod:`repro.db.sharding` — horizontal hash-partitioning (with a
  broadcast path for small relations) behind the shard-parallel engine.
"""

from repro.db.instance import AnnotatedDatabase
from repro.db.sharding import ShardedDatabase, shard_of
from repro.db.sqlite_backend import SQLiteDatabase

__all__ = ["AnnotatedDatabase", "SQLiteDatabase", "ShardedDatabase", "shard_of"]

"""SQLite-backed evaluation of annotated queries.

This backend persists an annotated database into SQLite tables (one
``prov`` column per table), compiles conjunctive queries to SQL
(:mod:`repro.engine.sql_compile`) and reassembles provenance
polynomials from the fetched rows.  It serves two purposes:

1. a realistic database substrate — provenance capture on top of a real
   SQL engine, the way systems like Perm/GProM instrument queries;
2. a differential-testing oracle for the backtracking engine: both must
   return identical polynomials on every query/database pair.

Only SQLite-storable values are supported (str, int, float, bytes,
None); the in-memory engine has no such restriction.
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Set, Tuple

from repro.db.instance import AnnotatedDatabase, Value
from repro.engine.sql_compile import (
    compile_aggregate_to_sql,
    compile_cq_to_sql,
    decode_row,
)
from repro.errors import EvaluationError, SchemaError
from repro.query.aggregate import AggregateQuery
from repro.query.ucq import Query, adjuncts_of
from repro.semiring.polynomial import Monomial, Polynomial

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.aggregate.result import AggregateResult

_STORABLE = (str, int, float, bytes, type(None))

HeadTuple = Tuple[Value, ...]


class SQLiteDatabase:
    """An annotated database stored in SQLite.

    >>> db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "a")]})
    >>> sdb = SQLiteDatabase.from_annotated(db)
    >>> from repro.query.parser import parse_query
    >>> result = sdb.evaluate(parse_query("ans(x) :- R(x, y), R(y, x)"))
    >>> sorted(str(p) for p in result.values())
    ['s1*s2', 's1*s2']
    """

    def __init__(self, path: str = ":memory:"):  # noqa: D107
        self._connection = sqlite3.connect(path)
        self._arities: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def from_annotated(cls, db: AnnotatedDatabase, path: str = ":memory:") -> "SQLiteDatabase":
        """Persist an in-memory annotated database into SQLite."""
        store = cls(path)
        for relation in sorted(db.relations()):
            store.create_relation(relation, db.arity(relation))
            for row, annotation in db.facts(relation):
                store.insert(relation, row, annotation)
        store._connection.commit()
        return store

    def create_relation(self, relation: str, arity: int) -> None:
        """Create the backing table ``relation(c0..c{arity-1}, prov)``."""
        if relation in self._arities:
            if self._arities[relation] != arity:
                raise SchemaError(
                    "relation {} already created with arity {}".format(
                        relation, self._arities[relation]
                    )
                )
            return
        columns = ", ".join("c{}".format(i) for i in range(arity))
        if columns:
            columns += ", "
        self._connection.execute(
            'CREATE TABLE "{}" ({}prov TEXT NOT NULL)'.format(relation, columns)
        )
        self._arities[relation] = arity

    def insert(self, relation: str, row: Sequence[Value], annotation: str) -> None:
        """Insert one annotated tuple."""
        for value in row:
            if not isinstance(value, _STORABLE):
                raise EvaluationError(
                    "value {!r} cannot be stored in SQLite".format(value)
                )
        placeholders = ", ".join(["?"] * (len(row) + 1))
        self._connection.execute(
            'INSERT INTO "{}" VALUES ({})'.format(relation, placeholders),
            tuple(row) + (annotation,),
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def relations(self) -> Set[str]:
        """Names of the stored relations."""
        return set(self._arities.keys())

    def evaluate(self, query: Query) -> Dict[HeadTuple, Polynomial]:
        """Evaluate a CQ≠/UCQ≠ and reassemble provenance polynomials.

        Adjuncts referencing absent relations contribute nothing
        (mirroring the in-memory engine).
        """
        results: Dict[HeadTuple, Polynomial] = {}
        for adjunct in adjuncts_of(query):
            if not adjunct.relations() <= self.relations():
                continue
            compiled = compile_cq_to_sql(adjunct)
            cursor = self._connection.execute(compiled.sql, compiled.parameters)
            for row in cursor:
                head, symbols = decode_row(compiled, row)
                previous = results.get(head, Polynomial.zero())
                results[head] = previous + Polynomial({Monomial(symbols): 1})
        return results

    def evaluate_aggregate(
        self, query: AggregateQuery
    ) -> Dict[HeadTuple, "AggregateResult"]:
        """Evaluate an aggregate query, reassembling semimodule values.

        Each fetched row of a rule's inner SELECT is one contribution
        (one assignment); the accumulator folds them into exactly the
        aggregated K-relation the in-memory engine produces —
        differential tests enforce the agreement.

        >>> db = AnnotatedDatabase.from_rows({"S": [("nyc", 5), ("nyc", 2)]})
        >>> sdb = SQLiteDatabase.from_annotated(db)
        >>> from repro.query.parser import parse_query
        >>> q = parse_query("sales(city, sum(cost)) :- S(city, cost)")
        >>> print(sdb.evaluate_aggregate(q)[("nyc",)])
        ⟨s1 + s2⟩ sum[s2⊗2 + s1⊗5]
        """
        # Imported here: repro.aggregate pulls the algebra package,
        # whose compiler imports repro.db — a top-level import would be
        # circular through the package __init__ modules.
        from repro.aggregate.result import AggregateAccumulator

        accumulator = AggregateAccumulator(query)
        compiled = compile_aggregate_to_sql(query)
        for rule, statement in zip(query.rules, compiled.rules):
            if not rule.relations() <= self.relations():
                continue
            cursor = self._connection.execute(
                statement.sql, statement.parameters
            )
            for row in cursor:
                head, symbols = decode_row(statement, row)
                accumulator.add(
                    rule, head, Polynomial({Monomial(symbols): 1})
                )
        return accumulator.results()

    def provenance(self, query: Query, output: Sequence[Value]) -> Polynomial:
        """``P(t, Q, D)`` via SQL (zero when the tuple is absent)."""
        return self.evaluate(query).get(tuple(output), Polynomial.zero())

    def explain(self, query) -> str:
        """The SQL text of each adjunct (for documentation/debugging)."""
        statements = []
        if isinstance(query, AggregateQuery):
            compiled = compile_aggregate_to_sql(query)
            body = "\nUNION ALL\n".join(
                statement.sql
                + "  -- params: {}".format(list(statement.parameters))
                for statement in compiled.rules
            )
            return (
                "-- contributions of {} (aggregated client-side in "
                "N[X] ⊗ M)\n{}".format(compiled.header, body)
            )
        for adjunct in adjuncts_of(query):
            compiled = compile_cq_to_sql(adjunct)
            statements.append(compiled.sql + "  -- params: {}".format(
                list(compiled.parameters)
            ))
        return "\nUNION ALL\n".join(statements)

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "SQLiteDatabase":
        return self

    def __exit__(self, *_exc) -> Optional[bool]:
        self.close()
        return None

"""Synthetic workload generators for tests and benchmarks.

The paper evaluates nothing empirically (it is a PODS theory paper), so
this module supplies the workloads every theorem is exercised on:

* exhaustive enumeration of all small abstractly-tagged databases
  (:func:`all_databases`) — used by the bounded ``<=_P`` search and by
  property tests, since every separation in the paper is witnessed by a
  database with 2-3 domain values;
* seeded random databases and random queries
  (:func:`random_database`, :func:`random_cq`, :func:`random_ucq`);
* the classic join shapes — chains, stars, cycles, cliques — used by
  the engine and scaling benchmarks.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.db.instance import AnnotatedDatabase
from repro.query.atoms import Atom, Disequality
from repro.query.build import atom, cq
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Variable
from repro.query.ucq import UnionQuery


# ----------------------------------------------------------------------
# Databases
# ----------------------------------------------------------------------
def all_databases(
    relations: Mapping[str, int],
    domain: Sequence,
    max_facts: Optional[int] = None,
    include_empty: bool = True,
) -> Iterator[AnnotatedDatabase]:
    """Enumerate every abstractly-tagged database over ``domain``.

    ``relations`` maps relation names to arities.  The fact universe is
    the full cross product per relation; every subset (optionally
    capped at ``max_facts`` facts) yields one database.  Annotations
    are assigned deterministically in universe order, so runs are
    reproducible.
    """
    universe: List[Tuple[str, Tuple]] = []
    for relation in sorted(relations):
        arity = relations[relation]
        for row in itertools.product(domain, repeat=arity):
            universe.append((relation, row))
    sizes = range(0 if include_empty else 1, len(universe) + 1)
    for size in sizes:
        if max_facts is not None and size > max_facts:
            return
        for subset in itertools.combinations(universe, size):
            db = AnnotatedDatabase()
            for relation in sorted(relations):
                db.declare_relation(relation, relations[relation])
            for relation, row in subset:
                db.add(relation, row)
            yield db


def random_database(
    relations: Mapping[str, int],
    domain: Sequence,
    n_facts: int,
    seed: int = 0,
) -> AnnotatedDatabase:
    """A random abstractly-tagged database with ``n_facts`` facts.

    Facts are sampled without replacement from the cross-product
    universe; deterministic in ``seed``.
    """
    rng = random.Random(seed)
    universe: List[Tuple[str, Tuple]] = []
    for relation in sorted(relations):
        for row in itertools.product(domain, repeat=relations[relation]):
            universe.append((relation, row))
    if n_facts > len(universe):
        n_facts = len(universe)
    db = AnnotatedDatabase()
    for relation in sorted(relations):
        db.declare_relation(relation, relations[relation])
    for relation, row in rng.sample(universe, n_facts):
        db.add(relation, row)
    return db


def uniform_binary_database(domain_size: int, density: float, seed: int = 0) -> AnnotatedDatabase:
    """A single binary relation ``R`` over ``v0..v{n-1}`` with the given
    edge density — the standard graph-shaped workload for join
    benchmarks."""
    rng = random.Random(seed)
    db = AnnotatedDatabase()
    db.declare_relation("R", 2)
    values = ["v{}".format(i) for i in range(domain_size)]
    for source in values:
        for target in values:
            if rng.random() < density:
                db.add("R", (source, target))
    return db


# ----------------------------------------------------------------------
# Queries: classic join shapes
# ----------------------------------------------------------------------
def chain_query(length: int, relation: str = "R") -> ConjunctiveQuery:
    """``ans(x0, x_n) :- R(x0, x1), R(x1, x2), ..., R(x_{n-1}, x_n)``."""
    if length < 1:
        raise ValueError("chain length must be positive")
    atoms = [
        atom(relation, "x{}".format(i), "x{}".format(i + 1)) for i in range(length)
    ]
    return cq(["x0", "x{}".format(length)], atoms)


def star_query(points: int, relation: str = "R") -> ConjunctiveQuery:
    """``ans(c) :- R(c, x1), ..., R(c, x_k)`` — a star join."""
    if points < 1:
        raise ValueError("a star needs at least one point")
    atoms = [atom(relation, "c", "x{}".format(i)) for i in range(1, points + 1)]
    return cq(["c"], atoms)


def cycle_query(length: int, relation: str = "R") -> ConjunctiveQuery:
    """Boolean cycle: ``ans() :- R(x0, x1), ..., R(x_{n-1}, x0)``."""
    if length < 1:
        raise ValueError("cycle length must be positive")
    atoms = [
        atom(relation, "x{}".format(i), "x{}".format((i + 1) % length))
        for i in range(length)
    ]
    return cq([], atoms)


def clique_query(size: int, relation: str = "R") -> ConjunctiveQuery:
    """Boolean clique: one atom per ordered pair of distinct nodes."""
    if size < 2:
        raise ValueError("a clique needs at least two nodes")
    atoms = []
    for i in range(size):
        for j in range(size):
            if i != j:
                atoms.append(atom(relation, "x{}".format(i), "x{}".format(j)))
    return cq([], atoms)


# ----------------------------------------------------------------------
# Queries: random
# ----------------------------------------------------------------------
def random_cq(
    seed: int = 0,
    n_atoms: int = 3,
    n_variables: int = 3,
    relations: Mapping[str, int] = None,
    head_arity: int = 1,
    diseq_probability: float = 0.0,
) -> ConjunctiveQuery:
    """A seeded random conjunctive query.

    Variables are drawn from a pool of ``n_variables``; each atom picks
    a relation and fills its positions with random pool variables; the
    head projects random body variables.  With
    ``diseq_probability > 0`` each variable pair independently gains a
    disequality (skipping pairs that would make the query unsatisfiable
    is unnecessary — distinct variables are always separable).
    """
    rng = random.Random(seed)
    if relations is None:
        relations = {"R": 2, "S": 1}
    pool = [Variable("x{}".format(i)) for i in range(n_variables)]
    names = sorted(relations)
    atoms: List[Atom] = []
    for _ in range(n_atoms):
        name = rng.choice(names)
        args = tuple(rng.choice(pool) for _ in range(relations[name]))
        atoms.append(Atom(name, args))
    body_vars = sorted({v for a in atoms for v in a.variables()})
    head_args = tuple(rng.choice(body_vars) for _ in range(min(head_arity, len(body_vars))))
    disequalities = []
    for i, x in enumerate(body_vars):
        for y in body_vars[i + 1:]:
            if rng.random() < diseq_probability:
                disequalities.append(Disequality(x, y))
    return ConjunctiveQuery(Atom("ans", head_args), atoms, disequalities)


def random_ucq(
    seed: int = 0,
    n_adjuncts: int = 2,
    **cq_kwargs,
) -> UnionQuery:
    """A seeded random union of conjunctive queries."""
    rng = random.Random(seed)
    head_arity = cq_kwargs.pop("head_arity", 1)
    adjuncts = []
    for index in range(n_adjuncts):
        adjuncts.append(
            random_cq(seed=rng.randrange(2**30), head_arity=head_arity, **cq_kwargs)
        )
    # Align head arities: random_cq may shrink the head when the body
    # has fewer variables; rebuild any adjunct that disagrees.
    arity = min(a.arity for a in adjuncts)
    aligned = []
    for adjunct in adjuncts:
        head_args = adjunct.head.args[:arity]
        aligned.append(
            ConjunctiveQuery(
                Atom(adjunct.head_relation, head_args),
                adjunct.atoms,
                adjunct.disequalities,
            )
        )
    return UnionQuery(aligned)

"""The apply/refresh loop and consistency checking for view maintenance.

The correctness contract of the whole subsystem is *observational*:
after any sequence of delta batches, every view's base-expanded
provenance must equal what :func:`repro.views.program.evaluate_program`
computes from scratch on the mutated base database.  Fresh view symbols
differ between an incrementally maintained registry and a fresh
evaluation (they are arbitrary names), so the comparison happens after
composing every layer down to base annotations, where the polynomials
are canonical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Tuple

from repro.db.instance import AnnotatedDatabase
from repro.errors import EvaluationError
from repro.incremental.delta import Delta
from repro.incremental.registry import MaintenanceReport, ViewRegistry
from repro.query.aggregate import AnyQuery
from repro.views.program import ViewEvaluation, evaluate_program


@dataclass(frozen=True)
class ConsistencyReport:
    """The outcome of comparing a registry against full re-evaluation."""

    consistent: bool
    mismatches: Tuple[str, ...]

    def __bool__(self) -> bool:
        return self.consistent


def full_recompute(registry: ViewRegistry) -> ViewEvaluation:
    """Re-evaluate the registry's program from scratch on its base data.

    This is the expensive reference path that incremental maintenance
    replaces — and the oracle it is checked against.  It runs on the
    default (hash-join) engine, whose plan cache is shared across the
    refresh loop: repeated audits re-plan nothing unless a relation's
    cardinality crosses a band boundary.
    """
    return evaluate_program(registry.program, registry.base_database())


def check_consistency(registry: ViewRegistry) -> ConsistencyReport:
    """Compare incrementally maintained state against full re-evaluation.

    Views are compared on base-expanded provenance (exact polynomial
    equality, coefficients included), so any drift — a lost monomial, a
    phantom tuple, a wrong coefficient — is detected.  Aggregate views
    are additionally compared on their base-expanded semimodule
    annotations, tensor by tensor.
    """
    reference = full_recompute(registry)
    aggregate_names = registry.aggregate_names
    mismatches: List[str] = []
    for name in registry.order:
        maintained = registry.base_provenance(name)
        expected = reference.base_provenance(name)
        for row in sorted(set(expected) - set(maintained), key=repr):
            mismatches.append("{}: missing tuple {!r}".format(name, row))
        for row in sorted(set(maintained) - set(expected), key=repr):
            mismatches.append("{}: phantom tuple {!r}".format(name, row))
        for row in sorted(set(maintained) & set(expected), key=repr):
            if maintained[row] != expected[row]:
                mismatches.append(
                    "{}: {!r} has provenance {} but recompute says {}".format(
                        name, row, maintained[row], expected[row]
                    )
                )
        if name not in aggregate_names:
            continue
        maintained_rows = registry.base_aggregates(name)
        expected_rows = reference.base_aggregates(name)
        for row in sorted(set(maintained_rows) & set(expected_rows), key=repr):
            kept = maintained_rows[row].aggregates
            fresh = expected_rows[row].aggregates
            for index, (a, b) in enumerate(zip(kept, fresh)):
                if a != b:
                    mismatches.append(
                        "{}: {!r} aggregate #{} is {} but recompute says "
                        "{}".format(name, row, index, a, b)
                    )
    return ConsistencyReport(
        consistent=not mismatches, mismatches=tuple(mismatches)
    )


def refresh(registry: ViewRegistry) -> ViewRegistry:
    """A freshly materialized registry over the same program and base data.

    The escape hatch when incremental state is suspect (or after a
    schema-level change the delta rules do not cover).  The engine
    configuration carries over — refreshing a sharded registry yields a
    sharded registry with the same shard/worker setup.
    """
    return ViewRegistry(
        registry.program,
        registry.base_database(),
        config=registry.config,
    )


def maintain(
    program: Mapping[str, AnyQuery],
    db: AnnotatedDatabase,
    deltas: Iterable[Delta],
    check_every: int = 0,
) -> Tuple[ViewRegistry, List[MaintenanceReport]]:
    """Materialize ``program`` over ``db`` and push a stream of deltas.

    With ``check_every = k > 0`` every ``k``-th batch is audited against
    full re-evaluation and an :class:`~repro.errors.EvaluationError` is
    raised on drift (the strict mode used by tests and the CLI's
    ``--check``).
    """
    registry = ViewRegistry(program, db)
    reports: List[MaintenanceReport] = []
    for index, delta in enumerate(deltas, start=1):
        reports.append(registry.apply(delta))
        if check_every and index % check_every == 0:
            audit = check_consistency(registry)
            if not audit.consistent:
                raise EvaluationError(
                    "incremental maintenance diverged after batch {}: "
                    "{}".format(index, "; ".join(audit.mismatches[:5]))
                )
    return registry, reports

"""Semiring delta evaluation for CQ≠/UCQ≠ over hash-indexed databases.

The multiplicative delta rule

``Δ(Q1 ⋈ Q2) = ΔQ1 ⋈ Q2  +  Q1 ⋈ ΔQ2  +  ΔQ1 ⋈ ΔQ2``

generalizes to an ``n``-atom body by designating, per new assignment,
the *first* atom bound to a changed tuple: atoms before the pivot range
over the old tuples only, the pivot ranges over the changed tuples, and
atoms after the pivot range over the whole new relation.  Every
assignment of the new database that touches at least one changed tuple
is enumerated exactly once, so summing its monomials gives precisely
the provenance polynomial *increase* — no subtraction is ever needed in
``N[X]``; deletions are handled separately by monomial filtering (see
:mod:`repro.apps.deletion`).

Joins against the unchanged part of the database go through
:class:`HashIndexes` — per ``(relation, bound-position)`` hash indexes
built lazily and maintained under updates — so a delta join inspects
only rows matching the already-bound attributes instead of scanning
whole relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.db.instance import AnnotatedDatabase, ChangeRecord, Row, Value
from repro.engine.evaluate import Assignment, HeadTuple
from repro.errors import SchemaError
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Variable
from repro.query.ucq import Query, adjuncts_of
from repro.semiring.polynomial import Polynomial

Fact = Tuple[str, Row]

_EMPTY: Tuple[Row, ...] = ()


def _normalize_insert(entry: Sequence) -> Tuple[str, Row, Optional[str]]:
    if len(entry) == 2:
        relation, row = entry
        annotation: Optional[str] = None
    else:
        relation, row, annotation = entry
    return (relation, tuple(row), annotation)


@dataclass(frozen=True)
class Delta:
    """A batch of base-tuple changes: inserts, deletes, annotation updates.

    ``inserts`` holds ``(relation, row, annotation)`` triples (the
    annotation may be ``None`` for a fresh one; plain ``(relation, row)``
    pairs are accepted and normalized); ``deletes`` holds
    ``(relation, row)`` pairs; ``retags`` holds
    ``(relation, row, new_annotation)`` triples.

    >>> d = Delta(inserts=[("R", ("a", "b"))], deletes=[("R", ("b", "a"))])
    >>> d.is_empty()
    False
    >>> sorted(d.touched_relations())
    ['R']
    """

    inserts: Tuple[Tuple[str, Row, Optional[str]], ...] = ()
    deletes: Tuple[Fact, ...] = ()
    retags: Tuple[Tuple[str, Row, str], ...] = ()

    def __post_init__(self):  # noqa: D105
        object.__setattr__(
            self,
            "inserts",
            tuple(_normalize_insert(entry) for entry in self.inserts),
        )
        object.__setattr__(
            self,
            "deletes",
            tuple((relation, tuple(row)) for relation, row in self.deletes),
        )
        object.__setattr__(
            self,
            "retags",
            tuple(
                (relation, tuple(row), annotation)
                for relation, row, annotation in self.retags
            ),
        )

    def is_empty(self) -> bool:
        """True when the batch changes nothing."""
        return not (self.inserts or self.deletes or self.retags)

    def __bool__(self) -> bool:
        return not self.is_empty()

    def touched_relations(self) -> Set[str]:
        """Names of the relations mentioned by any change."""
        touched = {relation for relation, _row, _a in self.inserts}
        touched.update(relation for relation, _row in self.deletes)
        touched.update(relation for relation, _row, _a in self.retags)
        return touched

    def size(self) -> int:
        """Total number of changed tuples."""
        return len(self.inserts) + len(self.deletes) + len(self.retags)

    @classmethod
    def from_changes(cls, records: Iterable[ChangeRecord]) -> "Delta":
        """Fold an :meth:`AnnotatedDatabase.changes_since` log into a batch.

        Churn inside the window cancels: a tuple inserted and deleted
        again nets to nothing; a tuple deleted and re-inserted becomes a
        delete + insert pair; a retag of a tuple inserted in the window
        folds into the insert.
        """
        inserted: Dict[Fact, Optional[str]] = {}
        deleted: Dict[Fact, None] = {}
        retagged: Dict[Fact, str] = {}
        for _version, op, relation, row, annotation in records:
            fact = (relation, row)
            if op == "insert":
                inserted[fact] = annotation
            elif op == "delete":
                retagged.pop(fact, None)
                if fact in inserted and fact not in deleted:
                    del inserted[fact]  # born and died inside the window
                else:
                    inserted.pop(fact, None)
                    deleted[fact] = None
            elif op == "retag":
                if fact in inserted:
                    inserted[fact] = annotation
                else:
                    retagged[fact] = annotation
            else:  # pragma: no cover - the log only holds the three ops
                raise ValueError("unknown change op {!r}".format(op))
        return cls(
            inserts=tuple(
                (relation, row, annotation)
                for (relation, row), annotation in inserted.items()
            ),
            deletes=tuple(deleted),
            retags=tuple(
                (relation, row, annotation)
                for (relation, row), annotation in retagged.items()
            ),
        )


class HashIndexes:
    """Lazy per-``(relation, bound positions)`` hash indexes.

    ``lookup("R", (0,), ("a",))`` returns the rows of ``R`` whose first
    attribute equals ``"a"`` — built on first use by one scan, then
    maintained incrementally through :meth:`insert` / :meth:`remove`.
    An empty position mask falls back to a full scan (there is nothing
    to index on).
    """

    def __init__(self, db: AnnotatedDatabase):  # noqa: D107
        self._db = db
        self._indexes: Dict[
            Tuple[str, Tuple[int, ...]], Dict[Tuple[Value, ...], List[Row]]
        ] = {}

    def lookup(
        self, relation: str, positions: Tuple[int, ...], key: Tuple[Value, ...]
    ) -> Sequence[Row]:
        """Rows of ``relation`` whose values at ``positions`` equal ``key``."""
        if not positions:
            return self._db.rows(relation)
        index = self._indexes.get((relation, positions))
        if index is None:
            index = {}
            for row in self._db.rows(relation):
                index.setdefault(
                    tuple(row[p] for p in positions), []
                ).append(row)
            self._indexes[(relation, positions)] = index
        return index.get(key, _EMPTY)

    def insert(self, relation: str, row: Row) -> None:
        """Mirror a database insertion into every built index."""
        for (indexed_relation, positions), index in self._indexes.items():
            if indexed_relation == relation:
                index.setdefault(
                    tuple(row[p] for p in positions), []
                ).append(row)

    def remove(self, relation: str, row: Row) -> None:
        """Mirror a database deletion into every built index."""
        for (indexed_relation, positions), index in self._indexes.items():
            if indexed_relation == relation:
                key = tuple(row[p] for p in positions)
                bucket = index.get(key)
                if bucket is not None and row in bucket:
                    bucket.remove(row)

    def built_count(self) -> int:
        """Number of materialized indexes (for tests/inspection)."""
        return len(self._indexes)


def _bound_positions(
    atom, binding: Dict[Variable, Value]
) -> Tuple[Tuple[int, ...], Tuple[Value, ...]]:
    """The atom positions already determined by constants or the binding."""
    positions: List[int] = []
    key: List[Value] = []
    for position, term in enumerate(atom.args):
        if isinstance(term, Constant):
            positions.append(position)
            key.append(term.value)
        elif term in binding:
            positions.append(position)
            key.append(binding[term])
    return tuple(positions), tuple(key)


def _match(atom, row: Row, binding: Dict[Variable, Value]):
    """New variable bindings induced by assigning ``row`` to ``atom``.

    Returns ``None`` when inconsistent with the existing binding (or
    with a repeated variable inside the atom).
    """
    new: Dict[Variable, Value] = {}
    for term, value in zip(atom.args, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        elif term in binding:
            if binding[term] != value:
                return None
        elif term in new:
            if new[term] != value:
                return None
        else:
            new[term] = value
    return new


def _arity_matches(db: AnnotatedDatabase, atom) -> bool:
    try:
        return db.arity(atom.relation) == atom.arity
    except SchemaError:
        return True  # unknown relation: no rows, harmless


def delta_assignments(
    query: ConjunctiveQuery,
    db: AnnotatedDatabase,
    indexes: HashIndexes,
    inserted: Mapping[str, AbstractSet[Row]],
) -> Iterator[Assignment]:
    """Assignments of ``query`` over ``db`` using ≥ 1 inserted tuple.

    ``db`` must already be the *post-delta* database; ``inserted`` maps
    relation names to the rows added by the delta.  Each qualifying
    assignment is produced exactly once via the pivot decomposition of
    the delta rule (see the module docstring).
    """
    atoms = query.atoms
    if not all(_arity_matches(db, atom) for atom in atoms):
        return
    disequalities = list(query.disequalities)
    missing = object()

    def term_value(term, binding):
        if isinstance(term, Constant):
            return term.value
        return binding.get(term, missing)

    def diseqs_hold(binding) -> bool:
        for dis in disequalities:
            left = term_value(dis.left, binding)
            right = term_value(dis.right, binding)
            if left is not missing and right is not missing and left == right:
                return False
        return True

    for pivot, pivot_atom in enumerate(atoms):
        fresh_rows = inserted.get(pivot_atom.relation)
        if not fresh_rows:
            continue

        def extend(index, binding, chosen, pivot=pivot, fresh_rows=fresh_rows):
            if index == len(atoms):
                yield Assignment(
                    query=query,
                    atom_rows=tuple(chosen),
                    binding=tuple(
                        sorted(binding.items(), key=lambda kv: kv[0].name)
                    ),
                )
                return
            atom = atoms[index]
            if index == pivot:
                candidates: Iterable[Row] = fresh_rows
            else:
                positions, key = _bound_positions(atom, binding)
                candidates = indexes.lookup(atom.relation, positions, key)
                if index < pivot:
                    changed = inserted.get(atom.relation)
                    if changed:
                        candidates = [
                            row for row in candidates if row not in changed
                        ]
            for row in candidates:
                if len(row) != atom.arity:
                    continue
                new = _match(atom, row, binding)
                if new is None:
                    continue
                binding.update(new)
                if diseqs_hold(binding):
                    chosen.append(row)
                    yield from extend(index + 1, binding, chosen)
                    chosen.pop()
                for variable in new:
                    del binding[variable]

        yield from extend(0, {}, [])


def delta_provenance(
    query: Query,
    db: AnnotatedDatabase,
    indexes: HashIndexes,
    inserted: Mapping[str, AbstractSet[Row]],
) -> Dict[HeadTuple, Polynomial]:
    """The provenance *increase* per output tuple caused by ``inserted``.

    Adding these polynomials to the (deletion-filtered) old view yields
    exactly ``evaluate(query, db)`` — the algebraic heart of incremental
    maintenance over ``N[X]``.
    """
    results: Dict[HeadTuple, Polynomial] = {}
    for adjunct in adjuncts_of(query):
        for assignment in delta_assignments(adjunct, db, indexes, inserted):
            head = assignment.head_tuple()
            monomial = assignment.monomial(db)
            previous = results.get(head, Polynomial.zero())
            results[head] = previous + Polynomial({monomial: 1})
    return results


def apply_to_database(
    db: AnnotatedDatabase,
    delta: Delta,
    indexes: Optional[HashIndexes] = None,
) -> Tuple[Set[str], Dict[str, Set[Row]], Dict[str, str]]:
    """Apply a base delta to ``db`` (mirroring ``indexes`` when given).

    Returns ``(deleted_symbols, inserted_rows_by_relation, retag_map)``
    — the three ingredients of polynomial maintenance.  Deletes are
    applied first, then inserts, then retags, so a delete + re-insert of
    the same tuple in one batch works.  Inserting an already-present
    tuple with a compatible annotation is a no-op (it contributes no new
    assignments).
    """
    deleted_symbols: Set[str] = set()
    inserted: Dict[str, Set[Row]] = {}
    retag_map: Dict[str, str] = {}
    for relation, row in delta.deletes:
        deleted_symbols.add(db.remove(relation, row))
        if indexes is not None:
            indexes.remove(relation, row)
    for relation, row, annotation in delta.inserts:
        if db.contains(relation, row):
            db.add(relation, row, annotation=annotation)  # annotation check
            continue
        db.add(relation, row, annotation=annotation)
        if indexes is not None:
            indexes.insert(relation, row)
        inserted.setdefault(relation, set()).add(row)
    for relation, row, annotation in delta.retags:
        old = db.retag(relation, row, annotation)
        if old == annotation:
            continue
        # Chained retags of the same tuple within one batch compose: the
        # map is applied simultaneously later, so fold a -> b, b -> c
        # into a -> c instead of recording both renames.
        for key, value in list(retag_map.items()):
            if value == old:
                if key == annotation:
                    del retag_map[key]
                else:
                    retag_map[key] = annotation
                break
        else:
            retag_map[old] = annotation
    return deleted_symbols, inserted, retag_map

"""Incremental view maintenance over ``N[X]`` provenance polynomials.

Why provenance makes views maintainable
---------------------------------------
The provenance polynomial ``P(t, Q, D)`` (Def. 2.12) records *every*
derivation of an output tuple: one monomial per satisfying assignment,
one factor per used input tuple.  That makes the effect of any base
update expressible algebraically, without re-running the query:

* **deletion** of a tuple sends its annotation to the semiring zero, so
  every monomial mentioning it vanishes (``0`` is annihilating for
  ``·`` and neutral for ``+``) — the view tuple survives iff its
  polynomial stays nonzero, computed by
  :func:`repro.apps.deletion.partition_by_survival`;
* **insertion** adds monomials: by distributivity, the new assignments
  are exactly those using at least one inserted tuple, enumerated by
  the delta rule ``Δ(Q1 ⋈ Q2) = ΔQ1⋈Q2 + Q1⋈ΔQ2 + ΔQ1⋈ΔQ2`` (unions
  simply add) in :mod:`repro.incremental.delta`;
* **annotation update** is a symbol renaming, the homomorphic image
  under ``N[X] → N[X']`` (:meth:`Polynomial.map_symbols`).

Because ``N[X]`` is the *universal* commutative semiring (Green et al.,
PODS 2007), maintaining the polynomial maintains every specialization —
trust, clearance, probability, counting — for free.

Why survival works on core provenance but polynomials do not
------------------------------------------------------------
Survival under deletion is a Boolean, *absorptive* question: whether
``P(t, Q, D)`` stays nonzero after zeroing symbols is insensitive to
coefficients, exponents, and even to monomials absorbed by smaller ones
(if ``m ≤ m'`` then ``m'`` only vanishes when some symbol of ``m'`` is
zeroed; the question factors through the absorptive quotient of
``N[X]``).  The paper's core provenance — the minimal monomials under
the Def. 2.15 order — therefore answers survival exactly, which is why
Sec. 6 can still run deletion propagation on cores.  The surviving
*polynomial*, by contrast, is not recoverable from the core:
``s1 + s1*s2`` and ``s1`` share the core ``s1``, yet they are different
elements of ``N[X]`` — any non-absorptive specialization (counting,
probability) tells them apart, and the monomials the core absorbed are
live derivations a later deletion may leave as the only ones standing
in an updated polynomial.  Incremental maintenance of materialized
views therefore stores full polynomials, and the composed, repeated-tag
setting this creates is exactly the Sec. 6 regime discussed in
:mod:`repro.views.program` (Thms. 6.1/6.2): p-minimal queries stay
p-minimal, but direct core computation becomes impossible — so we keep
the polynomials and derive cores on demand.

Subsystem layout
----------------
:mod:`~repro.incremental.delta`
    :class:`Delta` batches, lazily-built per-relation hash indexes, and
    the pivot-decomposed delta join.
:mod:`~repro.incremental.registry`
    :class:`ViewRegistry` — materialized views with fresh layer symbols
    (as in :mod:`repro.views.program`), maintained in topological order
    with provenance-driven invalidation via an inverted
    symbol → view-tuple index.
:mod:`~repro.incremental.maintain`
    The apply/refresh loop and the equivalence audit against
    :func:`repro.views.program.evaluate_program`.
"""

from repro.incremental.delta import (
    Delta,
    HashIndexes,
    apply_to_database,
    delta_assignments,
    delta_provenance,
)
from repro.incremental.maintain import (
    ConsistencyReport,
    check_consistency,
    full_recompute,
    maintain,
    refresh,
)
from repro.incremental.registry import (
    MaintenanceReport,
    ViewChange,
    ViewRegistry,
)

__all__ = [
    "Delta",
    "HashIndexes",
    "apply_to_database",
    "delta_assignments",
    "delta_provenance",
    "ViewRegistry",
    "ViewChange",
    "MaintenanceReport",
    "ConsistencyReport",
    "check_consistency",
    "full_recompute",
    "maintain",
    "refresh",
]

"""A registry of materialized views maintained incrementally.

:class:`ViewRegistry` materializes a view program (as
:func:`repro.views.program.evaluate_program` does) and then keeps every
view consistent under batched base updates without re-evaluation:

* deletions and annotation updates are pushed through the stored
  polynomials — a view tuple is touched **only** when one of its
  monomials mentions a changed symbol, found through an inverted
  symbol → view-tuple index (provenance-driven invalidation, reusing
  :func:`repro.apps.deletion.partition_by_survival`);
* insertions are pushed through the delta rule of
  :mod:`repro.incremental.delta`, joining only against rows reachable
  from the inserted tuples via hash indexes;
* view-level changes (a view tuple dying or being born) become the
  delta of downstream views, processed in topological order.

Fresh symbols keep the layered structure of
:class:`~repro.views.program.ViewEvaluation`: each view tuple carries a
symbol standing for its polynomial over the previous layers, and
``base_provenance`` composes the layers down to base annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.aggregate.evaluate import evaluate_aggregate
from repro.aggregate.result import AggregateAccumulator, AggregateResult
from repro.apps.deletion import delete_tuples, partition_by_survival
from repro.config import EngineConfig, resolve_engine_config
from repro.db.instance import AnnotatedDatabase, Row
from repro.engine.evaluate import evaluate
from repro.errors import EvaluationError
from repro.incremental.delta import (
    Delta,
    HashIndexes,
    apply_to_database,
    delta_assignments,
    delta_provenance,
)
from repro.query.aggregate import AggregateQuery, AnyQuery
from repro.semiring.polynomial import Polynomial
from repro.utils.naming import NameSupply
from repro.views.program import (
    MaterializedView,
    ViewEvaluation,
    check_aggregates_terminal,
    dependency_order,
    expand_to_base,
)

ViewTuple = Tuple[str, Row]


@dataclass
class ViewChange:
    """What one maintenance batch did to one view.

    For plain views the values are polynomials and ``deleted`` maps
    each dead row to its retired symbol; for aggregate views the values
    are :class:`~repro.aggregate.result.AggregateResult` rows and the
    retired symbol is ``""`` (terminal views bind no symbols).
    """

    inserted: Dict[Row, Polynomial] = field(default_factory=dict)
    deleted: Dict[Row, str] = field(default_factory=dict)  # row -> retired symbol
    updated: Dict[Row, Polynomial] = field(default_factory=dict)

    def is_empty(self) -> bool:
        """True when the view was untouched."""
        return not (self.inserted or self.deleted or self.updated)

    def summary(self) -> str:
        """Compact ``+i -d ~u`` counts."""
        return "+{} -{} ~{}".format(
            len(self.inserted), len(self.deleted), len(self.updated)
        )


@dataclass
class MaintenanceReport:
    """The per-view outcome of applying one :class:`Delta` batch."""

    base: Delta
    changes: Dict[str, ViewChange]

    def touched_views(self) -> List[str]:
        """Views actually modified, in maintenance order."""
        return [name for name, change in self.changes.items() if not change.is_empty()]

    def summary(self) -> str:
        """One line, e.g. ``V1 +1 -0 ~2; V2 +0 -1 ~0``."""
        parts = [
            "{} {}".format(name, change.summary())
            for name, change in self.changes.items()
            if not change.is_empty()
        ]
        return "; ".join(parts) if parts else "no view changes"


class ViewRegistry:
    """Materialized views over an annotated database, kept fresh by deltas.

    >>> from repro.query.parser import parse_program
    >>> db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "c")]})
    >>> registry = ViewRegistry(parse_program("V(x, z) :- R(x, y), R(y, z)"), db)
    >>> sorted(registry.view("V"))
    [('a', 'c')]
    >>> report = registry.apply(Delta(inserts=[("R", ("c", "a"))]))
    >>> sorted(registry.view("V"))
    [('a', 'c'), ('b', 'a'), ('c', 'b')]
    """

    def __init__(
        self,
        program: Mapping[str, AnyQuery],
        db: AnnotatedDatabase,
        symbol_prefix: str = "w",
        config: Optional[EngineConfig] = None,
        engine: Optional[str] = None,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
    ):  # noqa: D107
        config = resolve_engine_config(
            config,
            "ViewRegistry",
            engine=engine,
            shards=shards,
            workers=workers,
        )
        if config.engine not in ("hashjoin", "sharded"):
            raise EvaluationError(
                "unknown registry engine {!r}; supported: hashjoin, "
                "sharded".format(config.engine)
            )
        self._config = config
        engine = config.engine
        self._engine = engine
        clashes = set(program) & db.relations()
        if clashes:
            raise EvaluationError(
                "view names clash with base relations: {}".format(sorted(clashes))
            )
        if not db.is_abstractly_tagged():
            # Symbol-keyed invalidation identifies tuples by annotation;
            # a shared tag would make deletion of one tuple zero the
            # monomials of another (the Sec. 6 repeated-tag regime needs
            # composition through views, not shared base tags).
            raise EvaluationError(
                "incremental maintenance requires an abstractly-tagged "
                "base database (every tuple carrying a distinct annotation)"
            )
        self._program: Dict[str, AnyQuery] = dict(program)
        self._order = dependency_order(self._program)
        self._aggregate_names = check_aggregates_terminal(self._program)
        self._base_relations = set(db.relations())
        self._supply = NameSupply(symbol_prefix, avoid=db.annotations())
        # The sharded engine keeps its partitioning warm through the
        # working database's change log, so only that engine pays for
        # one.
        self._db = AnnotatedDatabase(track_changes=(engine == "sharded"))
        for relation in sorted(db.relations()):
            self._db.declare_relation(relation, db.arity(relation))
        for relation, row, annotation in db.all_facts():
            self._db.add(relation, row, annotation=annotation)
        self._indexes = HashIndexes(self._db)
        self._session = None
        if engine == "sharded":
            # Imported lazily (repro.session imports the engine stack,
            # which reaches back into this package's siblings).  Thread
            # mode: the working database mutates every batch, and
            # re-pickling payloads to a process pool per delta would
            # swamp the deltas themselves.
            from repro.session import QuerySession

            self._session = QuerySession(
                self._db, config.with_overrides(mode="thread")
            )
        self._views: Dict[str, Dict[Row, Polynomial]] = {}
        self._symbols: Dict[str, Dict[Row, str]] = {}
        self._bindings: Dict[str, Polynomial] = {}
        self._aggregates: Dict[str, Dict[Row, AggregateResult]] = {}
        self._dependents: Dict[str, Set[ViewTuple]] = {}
        self._dynamic: Dict[str, AnyQuery] = {}
        self._observers: List = []
        self._materialize()

    # ------------------------------------------------------------------
    # Durability (checkpoint / restore without re-materializing)
    # ------------------------------------------------------------------
    def materialized_state(self) -> Dict[str, object]:
        """JSON-ready registry state for the durability snapshot.

        Plain views are *not* serialized here: their rows and symbols
        live in the working database (checkpointed separately), and
        their polynomials are exactly the ``bindings`` values — storing
        them twice would only invite divergence.  What the working
        database cannot reconstruct travels here: the fresh-symbol
        supply, bindings, aggregate views (terminal, so absent from the
        working database), and the base-relation set.
        """
        from repro.io import aggregate_results_to_list, polynomial_to_list
        from repro.query.printer import query_to_str

        return {
            "supply": self._supply.state(),
            "order": list(self._order),
            "dynamic": {
                name: query_to_str(query)
                for name, query in sorted(self._dynamic.items())
            },
            "aggregate_names": sorted(self._aggregate_names),
            "base_relations": sorted(self._base_relations),
            "bindings": {
                symbol: polynomial_to_list(polynomial)
                for symbol, polynomial in sorted(self._bindings.items())
            },
            "aggregates": {
                name: aggregate_results_to_list(groups)
                for name, groups in sorted(self._aggregates.items())
            },
        }

    @classmethod
    def from_materialized(
        cls,
        program: Mapping[str, AnyQuery],
        db: AnnotatedDatabase,
        state: Mapping[str, object],
        config: Optional[EngineConfig] = None,
    ) -> "ViewRegistry":
        """Rebuild a registry from a checkpointed *working* database plus
        :meth:`materialized_state`, skipping ``_materialize`` entirely.

        ``db`` must be the restored working database (base relations and
        plain-view rows, e.g. via
        :meth:`~repro.db.instance.AnnotatedDatabase.from_checkpoint`);
        recovery asserts the snapshot was taken under the same view
        program and raises :class:`~repro.errors.EvaluationError`
        otherwise.
        """
        from repro.io import aggregate_results_from_list, polynomial_from_list

        config = resolve_engine_config(config, "ViewRegistry.from_materialized")
        if config.engine not in ("hashjoin", "sharded"):
            raise EvaluationError(
                "unknown registry engine {!r}; supported: hashjoin, "
                "sharded".format(config.engine)
            )
        registry = cls.__new__(cls)
        registry._config = config
        registry._engine = config.engine
        registry._program = dict(program)
        # Views registered at runtime (``add_view``) travel in the
        # snapshot as rule text — merge them back before the
        # program-identity check, or recovery of a server that gained a
        # subscription view would refuse its own snapshot.
        from repro.query.parser import parse_query

        registry._dynamic = {
            name: parse_query(text)
            for name, text in (state.get("dynamic") or {}).items()
        }
        registry._program.update(registry._dynamic)
        registry._order = dependency_order(registry._program)
        registry._aggregate_names = check_aggregates_terminal(registry._program)
        if list(state["order"]) != registry._order or sorted(
            state["aggregate_names"]
        ) != sorted(registry._aggregate_names):
            raise EvaluationError(
                "snapshot was taken under a different view program "
                "(snapshot order {!r}, current {!r})".format(
                    state["order"], registry._order
                )
            )
        registry._base_relations = set(state["base_relations"])
        registry._supply = NameSupply.from_state(state["supply"])
        registry._db = db
        registry._indexes = HashIndexes(db)
        registry._session = None
        if config.engine == "sharded":
            from repro.session import QuerySession

            registry._session = QuerySession(
                db, config.with_overrides(mode="thread")
            )
        registry._bindings = {
            symbol: polynomial_from_list(payload)
            for symbol, payload in state["bindings"].items()
        }
        registry._views = {}
        registry._symbols = {}
        registry._aggregates = {}
        registry._dependents = {}
        registry._observers = []
        for name in registry._order:
            if name in registry._aggregate_names:
                groups = aggregate_results_from_list(state["aggregates"][name])
                registry._aggregates[name] = groups
                for row, result in groups.items():
                    registry._register_aggregate(name, row, result)
                continue
            registry._views[name] = {}
            registry._symbols[name] = {}
            for row, symbol in db.facts(name):
                polynomial = registry._bindings.get(symbol)
                if polynomial is None:
                    raise EvaluationError(
                        "snapshot binding for view symbol {!r} of {}{} is "
                        "missing".format(symbol, name, row)
                    )
                registry._views[name][row] = polynomial
                registry._symbols[name][row] = symbol
                for mentioned in polynomial.support():
                    registry._dependents.setdefault(mentioned, set()).add(
                        (name, row)
                    )
        return registry

    # ------------------------------------------------------------------
    # Initial materialization (and full-recompute fallback)
    # ------------------------------------------------------------------
    # Materialization and every full-recompute audit go through the
    # default (hash-join) engine; its cardinality-banded plan cache
    # means the refresh loop re-plans a view query only when a base
    # relation's size crosses a power-of-two band.
    def _materialize(self) -> None:
        for name in self._order:
            if name in self._aggregate_names:
                # Aggregate views are terminal: their groups never feed
                # other views, so they get no fresh symbols and no rows
                # in the working database — only the inverted index.
                if self._session is not None:
                    results = self._session.evaluate_aggregate(
                        self._program[name]
                    )
                else:
                    results = evaluate_aggregate(self._program[name], self._db)
                self._aggregates[name] = results
                for row, result in results.items():
                    self._register_aggregate(name, row, result)
                continue
            self._views[name] = {}
            self._symbols[name] = {}
            self._db.declare_relation(name, self._program[name].arity)
            if self._session is not None:
                results = self._session.evaluate(self._program[name])
            else:
                results = evaluate(self._program[name], self._db)
            for row, polynomial in sorted(results.items(), key=lambda kv: repr(kv[0])):
                self._install(name, row, polynomial)

    def _affected_rows(self, name: str, changed_symbols: Set[str]) -> Set[Row]:
        """Rows of one view whose provenance mentions a changed symbol.

        The inverted-index lookup behind provenance-driven invalidation,
        shared by plain and aggregate maintenance.
        """
        affected: Set[Row] = set()
        for symbol in changed_symbols:
            for dep_name, dep_row in self._dependents.get(symbol, ()):
                if dep_name == name:
                    affected.add(dep_row)
        return affected

    def _register_aggregate(
        self, name: str, row: Row, result: AggregateResult
    ) -> None:
        # Element annotations only mention monomials of the group's
        # provenance, so indexing the provenance support covers both.
        for mentioned in result.provenance.support():
            self._dependents.setdefault(mentioned, set()).add((name, row))

    def _install(self, name: str, row: Row, polynomial: Polynomial) -> str:
        symbol = self._supply.fresh()
        self._views[name][row] = polynomial
        self._symbols[name][row] = symbol
        self._bindings[symbol] = polynomial
        self._db.add(name, row, annotation=symbol)
        self._indexes.insert(name, row)
        for mentioned in polynomial.support():
            self._dependents.setdefault(mentioned, set()).add((name, row))
        return symbol

    def _reindex(
        self, name: str, row: Row, old: Polynomial, new: Polynomial
    ) -> None:
        before = old.support()
        after = new.support()
        for symbol in before - after:
            bucket = self._dependents.get(symbol)
            if bucket is not None:
                bucket.discard((name, row))
                if not bucket:
                    del self._dependents[symbol]
        for symbol in after - before:
            self._dependents.setdefault(symbol, set()).add((name, row))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def apply(self, delta: Delta) -> MaintenanceReport:
        """Apply one batch of base changes, maintaining every view.

        Views never appear in a :class:`Delta` — they change only as a
        consequence of base changes.
        """
        illegal = delta.touched_relations() & set(self._program)
        if illegal:
            raise EvaluationError(
                "deltas must touch base relations only, not views: "
                "{}".format(sorted(illegal))
            )
        self._validate_annotations(delta)
        deleted_symbols, inserted, retag_map = apply_to_database(
            self._db, delta, self._indexes
        )
        self._base_relations.update(inserted)
        changes: Dict[str, ViewChange] = {}
        for name in self._order:
            if name in self._aggregate_names:
                changes[name] = self._maintain_aggregate(
                    name, deleted_symbols, inserted
                )
            else:
                changes[name] = self._maintain_view(
                    name, deleted_symbols, inserted
                )
        # Renames run after the maintenance loop: the deletion filter
        # above matches monomials by the *old* tags, so a batch may
        # retag a surviving tuple to an annotation freed by one of its
        # own deletes without the filter eating the survivor.
        retag_updates = self._apply_retags(retag_map) if retag_map else {}
        for name, rows in retag_updates.items():
            change = changes[name]
            view = (
                self._aggregates[name]
                if name in self._aggregate_names
                else self._views[name]
            )
            for row in rows:
                if (
                    row not in change.deleted
                    and row not in change.updated
                    and row not in change.inserted
                ):
                    change.updated[row] = view[row]
        if self._session is not None:
            # Keep the shard partitioning warm: fold this batch's change
            # records into the ownership maps now, so ad-hoc queries
            # served through :attr:`session` (and re-materializations)
            # re-partition nothing — then prune the consumed records so
            # a long-lived refresh loop's change log stays bounded.
            self._session.refresh()
            self._db.prune_changes(self._db.version())
        report = MaintenanceReport(base=delta, changes=changes)
        version = self._db.version()
        for observer in list(self._observers):
            observer(version, report)
        return report

    def _validate_annotations(self, delta: Delta) -> None:
        """Keep the working database abstractly tagged across the batch.

        Annotations introduced by inserts or retags must be fresh —
        neither live (outside the tuples this very batch deletes) nor
        introduced twice within the batch.  Re-using the annotation of
        a tuple deleted in the same batch is fine: by apply order the
        delete lands first.
        """
        freed: Set[str] = set()
        for relation, row in delta.deletes:
            if self._db.contains(relation, row):
                freed.add(self._db.annotation_of(relation, row))
        introduced: Set[str] = set()
        for relation, row, annotation in delta.inserts:
            if annotation is None or self._db.contains(relation, row):
                continue  # fresh symbol / no-op re-insert
            if (
                annotation in introduced
                or (annotation in self._db.annotations() and annotation not in freed)
            ):
                raise EvaluationError(
                    "insert annotation {!r} is already in use; incremental "
                    "maintenance requires abstract tagging".format(annotation)
                )
            introduced.add(annotation)
        for relation, row, annotation in delta.retags:
            current: Set[str] = set()
            if self._db.contains(relation, row):
                current.add(self._db.annotation_of(relation, row))
            if annotation in current:
                continue  # retag to itself: no-op
            if (
                annotation in introduced
                or (annotation in self._db.annotations() and annotation not in freed)
            ):
                raise EvaluationError(
                    "retag annotation {!r} is already in use; incremental "
                    "maintenance requires abstract tagging".format(annotation)
                )
            introduced.add(annotation)

    def _apply_retags(self, retag_map: Dict[str, str]) -> Dict[str, Set[Row]]:
        affected: Set[ViewTuple] = set()
        for old_symbol in retag_map:
            affected |= self._dependents.get(old_symbol, set())
        touched: Dict[str, Set[Row]] = {}
        for name, row in sorted(affected, key=repr):
            if name in self._aggregate_names:
                old_result = self._aggregates[name][row]
                new_result = old_result.map_polynomials(
                    lambda p: p.map_symbols(retag_map)
                )
                self._aggregates[name][row] = new_result
                self._reindex(
                    name, row, old_result.provenance, new_result.provenance
                )
            else:
                old = self._views[name][row]
                new = old.map_symbols(retag_map)
                self._views[name][row] = new
                self._bindings[self._symbols[name][row]] = new
                self._reindex(name, row, old, new)
            touched.setdefault(name, set()).add(row)
        return touched

    def _maintain_view(
        self,
        name: str,
        deleted_symbols: Set[str],
        inserted: Dict[str, Set[Row]],
    ) -> ViewChange:
        view = self._views[name]
        symbols = self._symbols[name]
        change = ViewChange()

        # Invalidation: only view tuples whose provenance mentions a
        # deleted symbol are touched; everything else is provably stale-free.
        if deleted_symbols:
            affected_rows = self._affected_rows(name, deleted_symbols)
            if affected_rows:
                affected = {row: view[row] for row in affected_rows}
                survivors, killed = partition_by_survival(
                    affected, deleted_symbols
                )
                for row in sorted(killed, key=repr):
                    old = view.pop(row)
                    retired = symbols.pop(row)
                    del self._bindings[retired]
                    self._db.remove(name, row)
                    self._indexes.remove(name, row)
                    self._reindex(name, row, old, Polynomial.zero())
                    deleted_symbols.add(retired)  # invalidates downstream
                    change.deleted[row] = retired
                for row, new in survivors.items():
                    old = view[row]
                    view[row] = new
                    self._bindings[symbols[row]] = new
                    self._reindex(name, row, old, new)
                    change.updated[row] = new

        # Insertions: the delta join adds the provenance increase.
        if inserted:
            increase = delta_provenance(
                self._program[name], self._db, self._indexes, inserted
            )
            for row in sorted(increase, key=repr):
                extra = increase[row]
                if row in view:
                    old = view[row]
                    new = old + extra
                    view[row] = new
                    self._bindings[symbols[row]] = new
                    self._reindex(name, row, old, new)
                    change.updated[row] = new
                else:
                    self._install(name, row, extra)
                    inserted.setdefault(name, set()).add(row)
                    change.inserted[row] = extra

        return change

    def _maintain_aggregate(
        self,
        name: str,
        deleted_symbols: Set[str],
        inserted: Dict[str, Set[Row]],
    ) -> ViewChange:
        """Maintain one aggregate view through monomial-level deltas.

        Deletions filter the provenance *and* every semimodule tensor
        of exactly the groups the inverted index flags; insertions run
        the delta join over the rules' inner CQs and fold the new
        contributions in.  Aggregate groups never invalidate downstream
        state (the views are terminal), so nothing propagates further.
        """
        query: AggregateQuery = self._program[name]
        view = self._aggregates[name]
        change = ViewChange()

        if deleted_symbols:
            for row in sorted(
                self._affected_rows(name, deleted_symbols), key=repr
            ):
                old = view[row]
                new = old.map_polynomials(
                    lambda p: delete_tuples(p, deleted_symbols)
                )
                if new.provenance.is_zero():
                    del view[row]
                    self._reindex(
                        name, row, old.provenance, Polynomial.zero()
                    )
                    # Terminal views retire no symbol; record the death.
                    change.deleted[row] = ""
                else:
                    view[row] = new
                    self._reindex(name, row, old.provenance, new.provenance)
                    change.updated[row] = new

        if inserted:
            accumulator = AggregateAccumulator(query)
            for rule in query.rules:
                for assignment in delta_assignments(
                    rule.inner, self._db, self._indexes, inserted
                ):
                    accumulator.add(
                        rule,
                        assignment.head_tuple(),
                        Polynomial({assignment.monomial(self._db): 1}),
                    )
            increase = accumulator.results()
            for row in sorted(increase, key=repr):
                extra = increase[row]
                if row in view:
                    old = view[row]
                    new = AggregateResult(
                        old.provenance + extra.provenance,
                        tuple(
                            a + b
                            for a, b in zip(old.aggregates, extra.aggregates)
                        ),
                    )
                    view[row] = new
                    self._reindex(name, row, old.provenance, new.provenance)
                    change.updated[row] = new
                else:
                    view[row] = extra
                    self._register_aggregate(name, row, extra)
                    change.inserted[row] = extra

        return change

    # ------------------------------------------------------------------
    # Observers and dynamic views (the changefeed substrate)
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Call ``observer(version, report)`` after every :meth:`apply`.

        The callback runs synchronously under whatever lock the caller
        holds around :meth:`apply` (the serving tier holds its session
        lock), so an observer sees reports in version order with no
        gaps — exactly the ordering a changefeed cursor promises.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously added observer (missing ones ignored)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def add_view(self, name: str, query: AnyQuery) -> None:
        """Register and materialize one view at runtime.

        The new view may read base relations and existing plain views
        (never aggregate views — those stay terminal), and nothing may
        read *it* yet, so the existing materialized state is untouched:
        the view is evaluated once at the current version and then
        maintained like any other.  Dynamic views are recorded in
        :meth:`materialized_state` as rule text so a durability
        snapshot taken after this call recovers them.
        """
        if name in self._program or name in self._db.relations():
            raise EvaluationError(
                "view name {!r} clashes with an existing view or base "
                "relation".format(name)
            )
        missing = query.relations() - self._db.relations()
        if missing:
            raise EvaluationError(
                "view {!r} reads unknown relations: {}".format(
                    name, sorted(missing)
                )
            )
        candidate = dict(self._program)
        candidate[name] = query
        # Validates terminality (an aggregate view can never be read by
        # the newcomer) and recursion-freedom before anything mutates.
        aggregate_names = check_aggregates_terminal(candidate)
        order = dependency_order(candidate)
        self._program = candidate
        self._aggregate_names = aggregate_names
        self._order = order
        self._dynamic[name] = query
        if name in self._aggregate_names:
            if self._session is not None:
                results = self._session.evaluate_aggregate(query)
            else:
                results = evaluate_aggregate(query, self._db)
            self._aggregates[name] = results
            for row, result in results.items():
                self._register_aggregate(name, row, result)
        else:
            self._views[name] = {}
            self._symbols[name] = {}
            self._db.declare_relation(name, query.arity)
            if self._session is not None:
                results = self._session.evaluate(query)
            else:
                results = evaluate(query, self._db)
            for row, polynomial in sorted(
                results.items(), key=lambda kv: repr(kv[0])
            ):
                self._install(name, row, polynomial)
        if self._session is not None:
            self._session.refresh()
            self._db.prune_changes(self._db.version())

    @property
    def dynamic_views(self) -> Dict[str, AnyQuery]:
        """Views registered at runtime via :meth:`add_view` (a copy)."""
        return dict(self._dynamic)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def program(self) -> Dict[str, AnyQuery]:
        """The view program (a copy)."""
        return dict(self._program)

    @property
    def order(self) -> List[str]:
        """The maintenance (topological) order of the views."""
        return list(self._order)

    @property
    def aggregate_names(self) -> Set[str]:
        """Names of the program's aggregate views (a copy)."""
        return set(self._aggregate_names)

    @property
    def session(self):
        """The warm :class:`~repro.session.QuerySession` of a registry
        built with ``engine="sharded"`` (``None`` otherwise).

        It evaluates over the registry's working database — base
        relations *and* materialized plain views — so it doubles as a
        serving path for ad-hoc queries against the maintained state,
        staying warm across :meth:`apply` batches.
        """
        return self._session

    @property
    def engine(self) -> str:
        """The evaluation engine this registry was built with."""
        return self._engine

    @property
    def config(self) -> EngineConfig:
        """The resolved :class:`~repro.config.EngineConfig` in effect."""
        return self._config

    @property
    def engine_options(self) -> Dict[str, Optional[int]]:
        """The ``shards``/``workers`` configuration (for rebuilds)."""
        return {"shards": self._config.shards, "workers": self._config.workers}

    def close(self) -> None:
        """Release the session's worker pool, if any (idempotent)."""
        if self._session is not None:
            self._session.close()

    def __enter__(self) -> "ViewRegistry":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def view(self, name: str) -> Dict[Row, Polynomial]:
        """The materialized view: output tuple → polynomial over the
        previous layers' symbols; for aggregate views, group →
        :class:`~repro.aggregate.result.AggregateResult` (a copy)."""
        if name in self._aggregate_names:
            return dict(self._aggregates[name])
        return dict(self._views[name])

    # ------------------------------------------------------------------
    # Serving path
    # ------------------------------------------------------------------
    @property
    def serving_db(self) -> AnnotatedDatabase:
        """The working database: base relations plus materialized plain
        views, the instance a serving session should evaluate over.

        Read/evaluate only — every mutation must go through
        :meth:`apply`, or the maintained polynomials would silently
        diverge from the data.
        """
        return self._db

    def db_version(self) -> int:
        """The working database's version counter.

        Bumps on every base *and* view change of an :meth:`apply`
        batch, so it is the freshness token the serving tier keys its
        version-keyed result cache on: any maintained change moves it.
        """
        return self._db.version()

    def read_view(self, name: str, base: bool = False) -> Dict[Row, object]:
        """One materialized view for the serving tier (a copy).

        Unlike the version-keyed query cache, view reads need no
        staleness machinery at all: the registry's provenance-driven
        invalidation already rewrote exactly the affected rows during
        :meth:`apply`, so the materialized table *is* the current
        answer.  With ``base=True`` annotations are expanded down to
        base symbols (plain views yield polynomials, aggregate views
        yield :class:`~repro.aggregate.result.AggregateResult` rows
        either way).  Unknown names raise
        :class:`~repro.errors.EvaluationError` — the HTTP layer maps
        that to a 404, not a 500.
        """
        if name not in self._program:
            raise EvaluationError(
                "no view named {!r}; registry serves {}".format(
                    name, sorted(self._program)
                )
            )
        if not base:
            return self.view(name)
        if name in self._aggregate_names:
            return self.base_aggregates(name)
        return self.base_provenance(name)

    def aggregate_view(self, name: str) -> Dict[Row, AggregateResult]:
        """One maintained aggregate view (a copy)."""
        return dict(self._aggregates[name])

    def base_aggregates(self, name: str) -> Dict[Row, AggregateResult]:
        """An aggregate view with every annotation expanded to base."""
        return {
            row: result.map_polynomials(
                lambda p: expand_to_base(p, self._bindings)
            )
            for row, result in self._aggregates[name].items()
        }

    def symbol_of(self, name: str, row: Row) -> str:
        """The fresh symbol annotating one view tuple."""
        return self._symbols[name][tuple(row)]

    def bindings(self) -> Dict[str, Polynomial]:
        """Every live view symbol → its defining polynomial (a copy)."""
        return dict(self._bindings)

    def base_provenance(self, name: str) -> Dict[Row, Polynomial]:
        """The view's provenance fully expanded to base annotations."""
        if name in self._aggregate_names:
            return {
                row: expand_to_base(result.provenance, self._bindings)
                for row, result in self._aggregates[name].items()
            }
        return {
            row: expand_to_base(polynomial, self._bindings)
            for row, polynomial in self._views[name].items()
        }

    def base_database(self) -> AnnotatedDatabase:
        """A copy of the current base portion of the working database."""
        base = AnnotatedDatabase()
        for relation in sorted(self._base_relations):
            if relation not in self._program:
                base.declare_relation(relation, self._db.arity(relation))
        for relation, row, annotation in self._db.all_facts():
            if relation not in self._program:
                base.add(relation, row, annotation=annotation)
        return base

    def as_evaluation(self) -> ViewEvaluation:
        """The current state in :class:`ViewEvaluation` form."""
        views = {
            name: MaterializedView(
                name=name,
                results=dict(self._views[name]),
                symbols=dict(self._symbols[name]),
            )
            for name in self._order
            if name not in self._aggregate_names
        }
        return ViewEvaluation(
            views=views,
            bindings=dict(self._bindings),
            aggregates={
                name: dict(groups)
                for name, groups in self._aggregates.items()
            },
        )

    def stats(self) -> Dict[str, int]:
        """Cheap size counters (for reports and benchmarks)."""
        return {
            "base_facts": sum(
                len(self._db.rows(relation))
                for relation in self._db.relations()
                if relation not in self._program
            ),
            "view_tuples": sum(len(view) for view in self._views.values())
            + sum(len(groups) for groups in self._aggregates.values()),
            "live_symbols": len(self._bindings),
            "indexes": self._indexes.built_count(),
        }

    def __repr__(self) -> str:
        return "<ViewRegistry {} views, {} view tuples>".format(
            len(self._views), sum(len(view) for view in self._views.values())
        )

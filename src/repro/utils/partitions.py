"""Enumeration of set partitions under separation constraints.

The *possible completions* of a query (Def. 4.1) are obtained by
partitioning the arguments ``Var(Q) ∪ C`` into disjoint blocks such that

1. each block contains at most one constant, and
2. the two endpoints of every disequality of ``Q`` land in distinct
   blocks.

This module provides a generic enumerator of exactly those partitions.
The number of unconstrained partitions of an ``n``-element set is the
Bell number ``B(n)``, which is the source of the EXPTIME lower bound on
provenance minimization (Thm. 4.10).
"""

from __future__ import annotations

from typing import (
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

Item = Hashable
Block = Tuple[Item, ...]
Partition = Tuple[Block, ...]


def constrained_partitions(
    items: Sequence[Item],
    separate: Iterable[Tuple[Item, Item]] = (),
    singletons: Iterable[Item] = (),
) -> Iterator[Partition]:
    """Enumerate partitions of ``items`` honouring the constraints.

    ``separate``
        pairs that must not share a block (the disequalities of the
        query, plus every pair of distinct constants).
    ``singletons``
        items that may not be merged with any *other* item of
        ``singletons`` (each block contains at most one of them).  This
        expresses "at most one constant per block" without listing all
        constant pairs explicitly.

    Blocks and partitions are emitted in a canonical deterministic order:
    the blocks of a partition are ordered by the position of their first
    item in ``items``, and the enumeration follows the classic
    "restricted growth" scheme.

    >>> list(constrained_partitions(["x", "y"]))
    [(('x', 'y'),), (('x',), ('y',))]
    """
    items = list(items)
    if len(set(items)) != len(items):
        raise ValueError("partition items must be distinct")
    forbidden: Set[FrozenSet[Item]] = set()
    for a, b in separate:
        if a == b:
            raise ValueError(
                "cannot separate an item from itself: {!r}".format(a)
            )
        forbidden.add(frozenset((a, b)))
    singleton_set = set(singletons)

    def compatible(block: List[Item], item: Item) -> bool:
        if item in singleton_set and any(b in singleton_set for b in block):
            return False
        return all(frozenset((b, item)) not in forbidden for b in block)

    def recurse(index: int, blocks: List[List[Item]]) -> Iterator[Partition]:
        if index == len(items):
            yield tuple(tuple(block) for block in blocks)
            return
        item = items[index]
        for block in blocks:
            if compatible(block, item):
                block.append(item)
                yield from recurse(index + 1, blocks)
                block.pop()
        blocks.append([item])
        yield from recurse(index + 1, blocks)
        blocks.pop()

    yield from recurse(0, [])


def count_partitions(
    items: Sequence[Item],
    separate: Iterable[Tuple[Item, Item]] = (),
    singletons: Iterable[Item] = (),
) -> int:
    """Number of partitions :func:`constrained_partitions` would emit.

    With no constraints this is the Bell number ``B(len(items))``.

    >>> count_partitions(range(3))
    5
    """
    return sum(1 for _ in constrained_partitions(items, separate, singletons))


def bell_number(n: int) -> int:
    """The ``n``-th Bell number, via the Bell triangle.

    Used by tests and by the Thm. 4.10 benchmark to predict the size of
    canonical rewritings of disequality-free queries.

    >>> [bell_number(i) for i in range(6)]
    [1, 1, 2, 5, 15, 52]
    """
    if n < 0:
        raise ValueError("n must be nonnegative")
    row = [1]
    for _ in range(n):
        next_row = [row[-1]]
        for value in row:
            next_row.append(next_row[-1] + value)
        row = next_row
    return row[0]

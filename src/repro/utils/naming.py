"""Fresh-name generation for variables and annotations.

Canonical rewritings introduce new variables ``v1, v2, ...`` (Def. 4.1)
and abstractly-tagged databases introduce annotations ``s1, s2, ...``
(Sec. 2.3).  Both need names guaranteed not to collide with names already
in scope.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Set


class NameSupply:
    """Deterministic supply of fresh names with a common prefix.

    >>> supply = NameSupply("v", avoid={"v2"})
    >>> [supply.fresh() for _ in range(3)]
    ['v1', 'v3', 'v4']
    """

    def __init__(self, prefix: str, avoid: Iterable[str] = ()):  # noqa: D107
        self._prefix = prefix
        self._avoid: Set[str] = set(avoid)
        self._next = 1

    def fresh(self) -> str:
        """Return the next unused name and reserve it."""
        while True:
            candidate = "{}{}".format(self._prefix, self._next)
            self._next += 1
            if candidate not in self._avoid:
                self._avoid.add(candidate)
                return candidate

    def reserve(self, name: str) -> None:
        """Mark ``name`` as used so it will never be produced."""
        self._avoid.add(name)

    def state(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the supply.

        Restoring via :meth:`from_state` continues the exact same name
        sequence — the property durability recovery relies on to keep
        freshly generated annotations byte-identical across a restart.

        >>> supply = NameSupply("v", avoid={"v2"})
        >>> _ = supply.fresh()
        >>> clone = NameSupply.from_state(supply.state())
        >>> clone.fresh() == supply.fresh()
        True
        """
        return {
            "prefix": self._prefix,
            "next": self._next,
            "avoid": sorted(self._avoid),
        }

    @classmethod
    def from_state(cls, payload: Dict[str, Any]) -> "NameSupply":
        """Rebuild a supply from a :meth:`state` snapshot."""
        supply = cls(payload["prefix"], avoid=payload["avoid"])
        supply._next = int(payload["next"])
        return supply


def fresh_names(prefix: str, count: int, avoid: Iterable[str] = ()) -> List[str]:
    """A list of ``count`` fresh names with the given prefix.

    >>> fresh_names("s", 3)
    ['s1', 's2', 's3']
    """
    supply = NameSupply(prefix, avoid)
    return [supply.fresh() for _ in range(count)]


def subscript_stream(prefix: str) -> Iterator[str]:
    """Infinite stream ``prefix1, prefix2, ...`` (no avoidance)."""
    index = 1
    while True:
        yield "{}{}".format(prefix, index)
        index += 1

"""Maximum bipartite matching (Hopcroft-Karp).

Deciding the polynomial order ``p <= p'`` of Def. 2.15 requires an
*injective* mapping from the monomial occurrences of ``p`` into containing
monomial occurrences of ``p'``.  Such a mapping exists precisely when the
bipartite graph (left: occurrences of ``p``, right: occurrences of ``p'``,
edges: monomial containment) has a matching saturating the left side.

We implement Hopcroft-Karp from scratch (the library has no mandatory
dependencies); tests cross-check it against ``networkx``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Sequence

_INF = float("inf")


def maximum_matching_size(adjacency: Sequence[Iterable[int]], n_right: int) -> int:
    """Size of a maximum matching of a bipartite graph.

    ``adjacency[u]`` lists the right-side vertices adjacent to the
    left-side vertex ``u``.  Right-side vertices are ``0..n_right-1``.

    >>> maximum_matching_size([[0, 1], [0]], 2)
    2
    >>> maximum_matching_size([[0], [0]], 1)
    1
    """
    matching = maximum_matching(adjacency, n_right)
    return sum(1 for partner in matching if partner is not None)


def maximum_matching(
    adjacency: Sequence[Iterable[int]], n_right: int
) -> List[Optional[int]]:
    """Compute a maximum matching; returns ``match_left``.

    ``match_left[u]`` is the right vertex matched to the left vertex
    ``u``, or ``None`` if ``u`` is unmatched.  Runs in
    ``O(E * sqrt(V))`` (Hopcroft-Karp).
    """
    adj: List[List[int]] = [list(neighbours) for neighbours in adjacency]
    n_left = len(adj)
    match_left: List[Optional[int]] = [None] * n_left
    match_right: List[Optional[int]] = [None] * n_right
    dist: List[float] = [0.0] * n_left

    def bfs() -> bool:
        queue = deque()
        for u in range(n_left):
            if match_left[u] is None:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found_augmenting = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = match_right[v]
                if w is None:
                    found_augmenting = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found_augmenting

    def dfs(u: int) -> bool:
        for v in adj[u]:
            w = match_right[v]
            if w is None or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in range(n_left):
            if match_left[u] is None:
                dfs(u)
    return match_left


def greedy_matching_size(adjacency: Sequence[Iterable[int]], n_right: int) -> int:
    """Size of the matching found by a one-pass greedy heuristic.

    Used only as an ablation baseline in the benchmarks: greedy matching
    can under-approximate the maximum and would make the polynomial order
    incomplete (it may miss valid ``p <= p'`` witnesses).
    """
    taken = [False] * n_right
    size = 0
    for neighbours in adjacency:
        for v in neighbours:
            if not taken[v]:
                taken[v] = True
                size += 1
                break
    return size

"""Algorithmic substrate shared by the rest of the library.

This subpackage is deliberately free of any provenance- or query-specific
vocabulary: it provides frozen multisets (:mod:`repro.utils.multiset`),
maximum bipartite matching (:mod:`repro.utils.matching`), constrained set
partition enumeration (:mod:`repro.utils.partitions`) and fresh-name
generation (:mod:`repro.utils.naming`).
"""

from repro.utils.matching import maximum_matching_size, greedy_matching_size
from repro.utils.multiset import FrozenMultiset
from repro.utils.naming import NameSupply, fresh_names
from repro.utils.partitions import constrained_partitions, count_partitions

__all__ = [
    "FrozenMultiset",
    "maximum_matching_size",
    "greedy_matching_size",
    "constrained_partitions",
    "count_partitions",
    "NameSupply",
    "fresh_names",
]

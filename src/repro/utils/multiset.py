"""An immutable, hashable multiset.

Provenance monomials (Sec. 2.3 of the paper) are multisets of annotation
symbols: ``s1 * s1 * s2`` is the multiset ``{s1: 2, s2: 1}``.  The order
relation on monomials (Def. 2.15) is exactly multiset inclusion, so the
core container used throughout the library is this frozen multiset.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, Tuple, TypeVar

T = TypeVar("T")


class FrozenMultiset:
    """An immutable multiset over hashable, orderable elements.

    Elements are kept internally as a sorted tuple, which makes equal
    multisets structurally identical and therefore hashable and directly
    comparable.

    >>> m = FrozenMultiset(["s1", "s2", "s1"])
    >>> m.count("s1")
    2
    >>> m <= FrozenMultiset(["s1", "s1", "s2", "s3"])
    True
    """

    __slots__ = ("_items", "_counts", "_hash")

    def __init__(self, items: Iterable[T] = ()):  # noqa: D107
        self._items: Tuple[T, ...] = tuple(sorted(items, key=_sort_key))
        self._counts: Dict[T, int] = dict(Counter(self._items))
        self._hash = hash(self._items)

    @classmethod
    def from_counts(cls, counts: Dict[T, int]) -> "FrozenMultiset":
        """Build from ``{element: multiplicity}`` without re-counting.

        The snapshot/WAL decode path rebuilds hundreds of thousands of
        monomials whose serialized form already *is* a count mapping;
        going through ``__init__`` would re-sort the expanded element
        list and re-run :class:`collections.Counter` over it.  All
        multiplicities must be positive.

        >>> FrozenMultiset.from_counts({"s2": 1, "s1": 2}) == \
            FrozenMultiset(["s1", "s2", "s1"])
        True
        """
        items: list = []
        for item in sorted(counts, key=_sort_key):
            multiplicity = counts[item]
            if multiplicity < 1:
                raise ValueError(
                    "multiplicities must be positive, got {!r}: {!r}".format(
                        item, multiplicity
                    )
                )
            items.extend([item] * multiplicity)
        multiset = cls.__new__(cls)
        multiset._items = tuple(items)
        multiset._counts = dict(counts)
        multiset._hash = hash(multiset._items)
        return multiset

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: T) -> bool:
        return item in self._counts

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrozenMultiset):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        return "FrozenMultiset({!r})".format(list(self._items))

    # ------------------------------------------------------------------
    # Multiset queries
    # ------------------------------------------------------------------
    def count(self, item: T) -> int:
        """Multiplicity of ``item`` (0 when absent)."""
        return self._counts.get(item, 0)

    @property
    def counts(self) -> Dict[T, int]:
        """A fresh ``{element: multiplicity}`` dictionary."""
        return dict(self._counts)

    @property
    def items(self) -> Tuple[T, ...]:
        """All elements with repetition, in sorted order."""
        return self._items

    def support(self) -> "FrozenMultiset":
        """The underlying *set*: each element exactly once.

        This implements the "remove all the multiple occurrences of the
        same variable in each monomial" step of Corollary 5.6.
        """
        return FrozenMultiset(self._counts.keys())

    def distinct(self) -> Tuple[T, ...]:
        """The distinct elements, sorted."""
        return tuple(sorted(self._counts.keys(), key=_sort_key))

    # ------------------------------------------------------------------
    # Multiset order (Def. 2.15 on monomials) and algebra
    # ------------------------------------------------------------------
    def __le__(self, other: "FrozenMultiset") -> bool:
        """Multiset inclusion: every multiplicity in ``self`` is covered.

        This is Def. 2.15 for monomials: an injective mapping of the
        factors of ``self`` to equal factors of ``other`` exists if and
        only if the multiset of ``self`` is included in that of ``other``.
        """
        if len(self) > len(other):
            return False
        other_counts = other._counts
        for item, n in self._counts.items():
            if other_counts.get(item, 0) < n:
                return False
        return True

    def __lt__(self, other: "FrozenMultiset") -> bool:
        return self <= other and self != other

    def __ge__(self, other: "FrozenMultiset") -> bool:
        return other <= self

    def __gt__(self, other: "FrozenMultiset") -> bool:
        return other < self

    def __add__(self, other: "FrozenMultiset") -> "FrozenMultiset":
        """Multiset sum (used for monomial multiplication)."""
        if not isinstance(other, FrozenMultiset):
            return NotImplemented
        return FrozenMultiset(self._items + other._items)

    def union(self, other: "FrozenMultiset") -> "FrozenMultiset":
        """Multiset union: per-element maximum of multiplicities."""
        merged = Counter(self._counts)
        for item, n in other._counts.items():
            merged[item] = max(merged[item], n)
        return FrozenMultiset(Counter(dict(merged)).elements())


def _sort_key(item):
    """Stable sort key that tolerates heterogeneous element types."""
    return (type(item).__name__, repr(item))

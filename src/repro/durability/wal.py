"""Write-ahead logging of accepted update batches (``RPWL`` v1).

A WAL file is a fixed header followed by framed records, one per
accepted ``/update`` delta batch, appended and fsynced *before* the
batch is applied — so an accepted batch is on disk even when the
process dies mid-apply.  Byte layout (documented in ``DESIGN.md``):

* **header** — ``<4sIQ>``: magic ``b"RPWL"``, format version ``1``,
  and the database version the log starts at (the version of the
  snapshot it extends);
* **record** — ``<II>`` (payload length, CRC32 of the payload)
  followed by the payload: the canonical-JSON encoding of one
  :func:`repro.io.delta_to_dict` batch, UTF-8.

Only the tail of the *last* record can be torn (appends are
sequential), so recovery scans records forward and truncates at the
first frame that is incomplete or fails its checksum; everything
before it is intact by CRC.  A bad header is not recoverable and
raises :class:`~repro.errors.WalError`.

Fault injection: when the environment variable
:data:`FAULT_ENV` (``REPRO_WAL_FAULT``) is ``"<index>:<bytes>"``, the
``index``-th append of this process writes only the first ``bytes``
bytes of its frame, fsyncs, and hard-exits — simulating a kill in the
middle of a WAL write.  The crash-injection suite drives this hook
from a subprocess; it costs one ``os.environ.get`` per append
otherwise.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import IO, List, Optional, Tuple

from repro.errors import WalError

#: Leading magic of a WAL file ("RePro Write-ahead Log").
WAL_MAGIC = b"RPWL"

#: Bump on incompatible layout changes; readers reject mismatches.
WAL_VERSION = 1

#: Environment variable of the torn-write fault hook.
FAULT_ENV = "REPRO_WAL_FAULT"

_WAL_HEADER = struct.Struct("<4sIQ")
_RECORD_HEADER = struct.Struct("<II")

#: Process-global append counter driving the fault hook: the hook fires
#: on the N-th append *of the process*, counted across every WAL
#: instance, so a test schedule can target one specific record.
_append_count = 0


def _encode_payload(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def encode_record(payload: dict) -> bytes:
    """Frame one delta-batch payload as a WAL record."""
    body = _encode_payload(payload)
    return _RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body


def scan_wal(path: str) -> Tuple[int, List[dict], int, bool]:
    """Read a WAL file, stopping at the first torn or corrupt record.

    Returns ``(base_version, payloads, valid_length, torn)`` where
    ``valid_length`` is the byte offset after the last intact record
    and ``torn`` reports whether anything was discarded.  A missing,
    truncated, or wrong-magic header raises
    :class:`~repro.errors.WalError` — headers are written in one
    fsynced call at creation, so a bad one is corruption, not a crash.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < _WAL_HEADER.size:
        raise WalError("WAL {}: truncated header".format(path))
    magic, version, base_version = _WAL_HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise WalError("WAL {}: bad magic {!r}".format(path, magic))
    if version != WAL_VERSION:
        raise WalError(
            "WAL {}: unsupported format version {}".format(path, version)
        )
    payloads: List[dict] = []
    cursor = _WAL_HEADER.size
    valid = cursor
    torn = False
    total = len(data)
    while cursor < total:
        if cursor + _RECORD_HEADER.size > total:
            torn = True
            break
        length, checksum = _RECORD_HEADER.unpack_from(data, cursor)
        start = cursor + _RECORD_HEADER.size
        end = start + length
        if end > total:
            torn = True
            break
        body = data[start:end]
        if zlib.crc32(body) != checksum:
            torn = True
            break
        try:
            payloads.append(json.loads(body.decode("utf-8")))
        except ValueError:
            # CRC-clean but unparsable: corruption the checksum missed;
            # treat it (and everything after) exactly like a torn tail.
            torn = True
            break
        cursor = end
        valid = cursor
    return base_version, payloads, valid, torn


class WriteAheadLog:
    """An append-only, fsync-on-append delta log.

    Use :meth:`create` for a fresh log and :meth:`open` to continue an
    existing one (truncating a torn tail first).  Appends are not
    thread-safe by themselves — the serving tier already holds the
    session lock across WAL-append-then-apply.
    """

    def __init__(
        self, path: str, base_version: int, handle: IO[bytes], records: int
    ):  # noqa: D107
        self._path = path
        self._base_version = base_version
        self._handle: Optional[IO[bytes]] = handle
        self._records = records

    @classmethod
    def create(cls, path: str, base_version: int) -> "WriteAheadLog":
        """Start a fresh WAL at ``base_version`` (header fsynced)."""
        handle = open(path, "xb")
        handle.write(_WAL_HEADER.pack(WAL_MAGIC, WAL_VERSION, base_version))
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, base_version, handle, 0)

    @classmethod
    def open(cls, path: str) -> "WriteAheadLog":
        """Reopen an existing WAL for appending.

        A torn tail record is truncated away first, so the next append
        lands on a clean frame boundary.
        """
        base_version, payloads, valid, torn = scan_wal(path)
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                os.fsync(handle.fileno())
        handle = open(path, "ab")
        return cls(path, base_version, handle, len(payloads))

    @property
    def path(self) -> str:
        """Where this log lives."""
        return self._path

    @property
    def base_version(self) -> int:
        """The database version the log starts at."""
        return self._base_version

    @property
    def records(self) -> int:
        """How many intact records the log holds."""
        return self._records

    def append(self, payload: dict) -> int:
        """Durably append one delta-batch payload; returns its index.

        The frame is written, flushed, and fsynced before returning —
        the durability point the serving tier relies on when it logs a
        batch *before* applying it.
        """
        global _append_count
        if self._handle is None:
            raise WalError("WAL {} is closed".format(self._path))
        frame = encode_record(payload)
        fault = os.environ.get(FAULT_ENV)
        if fault is not None:
            index, _, keep = fault.partition(":")
            if int(index) == _append_count:
                self._handle.write(frame[: int(keep)])
                self._handle.flush()
                os.fsync(self._handle.fileno())
                os._exit(17)
        _append_count += 1
        self._handle.write(frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._records += 1
        return self._records - 1

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<WriteAheadLog {} base={} records={}>".format(
            self._path, self._base_version, self._records
        )

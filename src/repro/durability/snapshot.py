"""Versioned binary snapshots of the serving state (``RPSN`` v1).

A snapshot captures everything a server needs to come back at the
exact database version it died at: the working database (base facts
*and* materialized plain-view rows, via
:meth:`~repro.db.instance.AnnotatedDatabase.checkpoint_state`), the
session's intern table, and the registry's materialized state.  Byte
layout (documented in ``DESIGN.md``) reuses the ``RPCP`` idiom of
:mod:`repro.db.sharding` — tagged value blobs delimited by
prefix-offset arrays, decoders slice instead of scanning:

* **file header** — ``<4sIQI>``: magic ``b"RPSN"``, format version
  ``1``, the database version, and the section count;
* **section** — ``<4sQI>`` (kind, payload length, CRC32 of the
  payload) followed by the payload.  Kinds: ``DBST`` (database
  checkpoint), ``INTB`` (intern table), ``VREG`` (registry state,
  canonical JSON — ``null`` for a bare session).

Every decode error — truncated header or section, bad magic, version
mismatch, checksum failure — raises
:class:`~repro.errors.SnapshotError`, which recovery treats as "try
the previous snapshot".  Writes go through a temp file, fsync, and an
atomic rename, so a crash mid-write never shadows a good snapshot
with a torn one.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.db.sharding import _decode_value, _encode_value
from repro.errors import SnapshotError

#: Leading magic of a snapshot file ("RePro SNapshot").
SNAPSHOT_MAGIC = b"RPSN"

#: Bump on incompatible layout changes; readers reject mismatches.
SNAPSHOT_VERSION = 1

SECTION_DATABASE = b"DBST"
SECTION_INTERN = b"INTB"
SECTION_REGISTRY = b"VREG"

_SNAPSHOT_HEADER = struct.Struct("<4sIQI")
_SECTION_HEADER = struct.Struct("<4sQI")
_RELATION_HEADER = struct.Struct("<IiQ")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Intern-table state as exported by
#: :meth:`repro.algebra.intern.InternTable.export_state`.
InternState = Tuple[List[str], List[Tuple[int, ...]]]


@dataclass
class SnapshotContent:
    """The decoded sections of one snapshot file."""

    db_version: int
    checkpoint: Dict[str, object]
    intern_state: Optional[InternState]
    registry_state: Optional[Dict[str, object]]


def _canonical_json(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


# ----------------------------------------------------------------------
# Section payloads
# ----------------------------------------------------------------------
def _encode_database(checkpoint: Dict[str, object]) -> bytes:
    supply = _canonical_json(checkpoint["supply"])
    relations: Dict[str, Dict] = checkpoint["relations"]  # type: ignore[assignment]
    arities: Dict[str, int] = checkpoint["arities"]  # type: ignore[assignment]
    chunks: List[bytes] = [
        _U32.pack(len(supply)),
        supply,
        _U64.pack(int(checkpoint["version"])),  # type: ignore[arg-type]
        _U32.pack(len(arities)),
    ]
    for relation in sorted(arities):
        rows = relations.get(relation, {})
        name = relation.encode("utf-8")
        arity = arities[relation]
        ann_offsets = array("q", [0])
        ann_blob = bytearray()
        cell_offsets = array("q", [0])
        cell_blob = bytearray()
        for row, annotation in rows.items():
            _encode_value(annotation, ann_blob)
            ann_offsets.append(len(ann_blob))
            for value in row:
                _encode_value(value, cell_blob)
                cell_offsets.append(len(cell_blob))
        chunks.append(_RELATION_HEADER.pack(len(name), arity, len(rows)))
        chunks.append(name)
        chunks.append(ann_offsets.tobytes())
        chunks.append(bytes(ann_blob))
        chunks.append(cell_offsets.tobytes())
        chunks.append(bytes(cell_blob))
    return b"".join(chunks)


def _decode_database(payload: bytes) -> Dict[str, object]:
    try:
        cursor = 0
        (supply_len,) = _U32.unpack_from(payload, cursor)
        cursor += _U32.size
        supply = json.loads(payload[cursor:cursor + supply_len].decode("utf-8"))
        cursor += supply_len
        (version,) = _U64.unpack_from(payload, cursor)
        cursor += _U64.size
        (n_relations,) = _U32.unpack_from(payload, cursor)
        cursor += _U32.size
        relations: Dict[str, Dict] = {}
        arities: Dict[str, int] = {}
        for _ in range(n_relations):
            name_len, arity, n_rows = _RELATION_HEADER.unpack_from(
                payload, cursor
            )
            cursor += _RELATION_HEADER.size
            name = payload[cursor:cursor + name_len].decode("utf-8")
            cursor += name_len
            ann_offsets = array("q")
            ann_offsets.frombytes(payload[cursor:cursor + 8 * (n_rows + 1)])
            cursor += 8 * (n_rows + 1)
            ann_blob = payload[cursor:cursor + ann_offsets[-1]]
            cursor += ann_offsets[-1]
            n_cells = n_rows * arity
            cell_offsets = array("q")
            cell_offsets.frombytes(payload[cursor:cursor + 8 * (n_cells + 1)])
            cursor += 8 * (n_cells + 1)
            cell_blob = payload[cursor:cursor + cell_offsets[-1]]
            cursor += cell_offsets[-1]
            rows: Dict[Tuple, str] = {}
            cell = 0
            for i in range(n_rows):
                row = tuple(
                    _decode_value(
                        cell_blob,
                        cell_offsets[cell + j],
                        cell_offsets[cell + j + 1],
                    )
                    for j in range(arity)
                )
                cell += arity
                rows[row] = _decode_value(
                    ann_blob, ann_offsets[i], ann_offsets[i + 1]
                )
            relations[name] = rows
            arities[name] = arity
        return {
            "relations": relations,
            "arities": arities,
            "version": version,
            "supply": supply,
        }
    except (IndexError, ValueError, struct.error) as error:
        raise SnapshotError(
            "corrupt DBST section: {}".format(error)
        ) from error


def _encode_intern(state: InternState) -> bytes:
    symbols, monomial_keys = state
    symbol_offsets = array("q", [0])
    symbol_blob = bytearray()
    for symbol in symbols:
        symbol_blob += symbol.encode("utf-8")
        symbol_offsets.append(len(symbol_blob))
    key_offsets = array("q", [0])
    key_ids = array("q")
    for key in monomial_keys:
        key_ids.extend(key)
        key_offsets.append(len(key_ids))
    return b"".join(
        [
            _U32.pack(len(symbols)),
            symbol_offsets.tobytes(),
            bytes(symbol_blob),
            _U32.pack(len(monomial_keys)),
            key_offsets.tobytes(),
            key_ids.tobytes(),
        ]
    )


def _decode_intern(payload: bytes) -> InternState:
    try:
        cursor = 0
        (n_symbols,) = _U32.unpack_from(payload, cursor)
        cursor += _U32.size
        symbol_offsets = array("q")
        symbol_offsets.frombytes(payload[cursor:cursor + 8 * (n_symbols + 1)])
        cursor += 8 * (n_symbols + 1)
        symbol_blob = payload[cursor:cursor + symbol_offsets[-1]]
        cursor += symbol_offsets[-1]
        symbols = [
            symbol_blob[symbol_offsets[i]:symbol_offsets[i + 1]].decode("utf-8")
            for i in range(n_symbols)
        ]
        (n_keys,) = _U32.unpack_from(payload, cursor)
        cursor += _U32.size
        key_offsets = array("q")
        key_offsets.frombytes(payload[cursor:cursor + 8 * (n_keys + 1)])
        cursor += 8 * (n_keys + 1)
        key_ids = array("q")
        key_ids.frombytes(payload[cursor:cursor + 8 * key_offsets[-1]])
        monomial_keys = [
            tuple(key_ids[key_offsets[i]:key_offsets[i + 1]])
            for i in range(n_keys)
        ]
        return symbols, monomial_keys
    except (IndexError, ValueError, struct.error) as error:
        raise SnapshotError(
            "corrupt INTB section: {}".format(error)
        ) from error


# ----------------------------------------------------------------------
# Whole snapshots
# ----------------------------------------------------------------------
def encode_snapshot(
    checkpoint: Dict[str, object],
    intern_state: Optional[InternState] = None,
    registry_state: Optional[Dict[str, object]] = None,
) -> bytes:
    """Serialize one snapshot (database, intern table, registry)."""
    sections = [
        (SECTION_DATABASE, _encode_database(checkpoint)),
        (SECTION_INTERN, _encode_intern(intern_state or ([], []))),
        (SECTION_REGISTRY, _canonical_json(registry_state)),
    ]
    chunks = [
        _SNAPSHOT_HEADER.pack(
            SNAPSHOT_MAGIC,
            SNAPSHOT_VERSION,
            int(checkpoint["version"]),  # type: ignore[arg-type]
            len(sections),
        )
    ]
    for kind, payload in sections:
        chunks.append(_SECTION_HEADER.pack(kind, len(payload), zlib.crc32(payload)))
        chunks.append(payload)
    return b"".join(chunks)


def decode_snapshot(data: bytes) -> SnapshotContent:
    """Inverse of :func:`encode_snapshot`; raises on any corruption."""
    if len(data) < _SNAPSHOT_HEADER.size:
        raise SnapshotError("truncated snapshot header")
    magic, version, db_version, n_sections = _SNAPSHOT_HEADER.unpack_from(
        data, 0
    )
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError("bad snapshot magic {!r}".format(magic))
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            "unsupported snapshot format version {}".format(version)
        )
    sections: Dict[bytes, bytes] = {}
    cursor = _SNAPSHOT_HEADER.size
    for _ in range(n_sections):
        if cursor + _SECTION_HEADER.size > len(data):
            raise SnapshotError("truncated section header")
        kind, length, checksum = _SECTION_HEADER.unpack_from(data, cursor)
        cursor += _SECTION_HEADER.size
        payload = data[cursor:cursor + length]
        if len(payload) != length:
            raise SnapshotError(
                "truncated {} section ({} of {} bytes)".format(
                    kind, len(payload), length
                )
            )
        if zlib.crc32(payload) != checksum:
            raise SnapshotError("checksum mismatch in {} section".format(kind))
        sections[kind] = payload
        cursor += length
    if cursor != len(data):
        raise SnapshotError(
            "{} trailing bytes after the last section".format(
                len(data) - cursor
            )
        )
    for required in (SECTION_DATABASE, SECTION_INTERN, SECTION_REGISTRY):
        if required not in sections:
            raise SnapshotError("missing {} section".format(required))
    checkpoint = _decode_database(sections[SECTION_DATABASE])
    if int(checkpoint["version"]) != db_version:  # type: ignore[arg-type]
        raise SnapshotError(
            "header db version {} disagrees with checkpoint {}".format(
                db_version, checkpoint["version"]
            )
        )
    intern_state = _decode_intern(sections[SECTION_INTERN])
    try:
        registry_state = json.loads(
            sections[SECTION_REGISTRY].decode("utf-8")
        )
    except ValueError as error:
        raise SnapshotError(
            "corrupt VREG section: {}".format(error)
        ) from error
    return SnapshotContent(
        db_version=db_version,
        checkpoint=checkpoint,
        intern_state=intern_state,
        registry_state=registry_state,
    )


def write_snapshot(path: str, data: bytes) -> None:
    """Write snapshot bytes atomically (temp file, fsync, rename)."""
    directory = os.path.dirname(path) or "."
    temp = os.path.join(
        directory, ".{}.tmp".format(os.path.basename(path))
    )
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    # Durability of the rename itself: fsync the directory entry where
    # the platform supports opening directories (POSIX does).
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_snapshot(path: str) -> SnapshotContent:
    """Load and decode one snapshot file."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise SnapshotError(
            "cannot read snapshot {}: {}".format(path, error)
        ) from error
    return decode_snapshot(data)

"""Durability: binary snapshots, a write-ahead delta log, and recovery.

The serving tier's state — the annotated database, interned
provenance, and materialized views — normally dies with the process.
This package persists it:

* :mod:`repro.durability.snapshot` — the ``RPSN`` versioned binary
  snapshot codec (database checkpoint + intern table + registry
  state);
* :mod:`repro.durability.wal` — the ``RPWL`` fsync-on-append
  write-ahead log of accepted ``/update`` batches;
* :mod:`repro.durability.store` — :class:`DurableStore`, which owns a
  data directory, rotates the WAL into fresh snapshots, and rebuilds
  the exact pre-crash state on boot.

Wire it in with ``EngineConfig(data_dir=...)`` /
``repro-prov serve --data-dir``; the on-disk formats are specified
byte-by-byte in ``DESIGN.md``.
"""

from repro.durability.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotContent,
    decode_snapshot,
    encode_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.durability.store import (
    DEFAULT_SNAPSHOT_EVERY,
    DurableStore,
    RecoveredState,
)
from repro.durability.wal import (
    FAULT_ENV,
    WAL_MAGIC,
    WAL_VERSION,
    WriteAheadLog,
    encode_record,
    scan_wal,
)

__all__ = [
    "DEFAULT_SNAPSHOT_EVERY",
    "DurableStore",
    "FAULT_ENV",
    "RecoveredState",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotContent",
    "WAL_MAGIC",
    "WAL_VERSION",
    "WriteAheadLog",
    "decode_snapshot",
    "encode_record",
    "encode_snapshot",
    "read_snapshot",
    "scan_wal",
    "write_snapshot",
]

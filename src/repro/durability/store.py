"""The durable state directory: snapshots + WAL + boot-time recovery.

:class:`DurableStore` owns one ``data_dir`` holding

* ``snapshot-<version>.rpsn`` — full-state snapshots
  (:mod:`repro.durability.snapshot`), named by the database version
  they capture, zero-padded so lexicographic order is version order;
* ``wal-<version>.rpwl`` — write-ahead logs
  (:mod:`repro.durability.wal`), named by the version they start at
  (always the version of the snapshot they extend).

The protocol the serving tier follows:

1. boot: :meth:`recover` when :meth:`has_state`, else build normally
   and :meth:`snapshot` the initial state;
2. every accepted ``/update`` batch: :meth:`log_update` *before* the
   batch is applied (under the session lock, so the log order is the
   apply order);
3. after a successful update: :meth:`should_rotate` → :meth:`snapshot`
   (rotation) once the WAL passes its configured threshold.

Recovery walks snapshots newest-first, skipping any that fail their
checksums (a crash can tear at most the newest one — rotation never
touches older generations), replays every WAL record past the chosen
snapshot (truncating a torn tail), and returns the rebuilt state at
the exact pre-crash version.  Replay re-applies deltas through the
same code paths the live server used, so a batch that failed
mid-sequence then fails again identically — byte-for-byte equivalence
with the uninterrupted history, which the crash-injection suite
asserts over the HTTP surface.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.db.instance import AnnotatedDatabase
from repro.durability.snapshot import (
    InternState,
    encode_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.durability.wal import WriteAheadLog, scan_wal
from repro.errors import DurabilityError, ReproError, SnapshotError, WalError
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.trace import current_tracer

#: Default WAL-records-per-snapshot rotation threshold.
DEFAULT_SNAPSHOT_EVERY = 512

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{20})\.rpsn$")
_WAL_RE = re.compile(r"^wal-(\d{20})\.rpwl$")


@dataclass
class RecoveredState:
    """What :meth:`DurableStore.recover` rebuilt.

    ``registry`` is ``None`` when the snapshot was taken by a bare
    session; ``version`` is the post-replay database version — exactly
    the version the process died at.
    """

    db: AnnotatedDatabase
    registry: Optional[object]
    version: int
    snapshot_version: int
    replayed: int
    skipped: int
    truncated: int
    intern_state: InternState


class DurableStore:
    """Snapshot + WAL persistence rooted at one data directory."""

    def __init__(
        self,
        data_dir: str,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        keep_snapshots: int = 2,
        metrics=NULL_REGISTRY,
    ):  # noqa: D107
        if snapshot_every < 1:
            raise DurabilityError(
                "snapshot_every must be >= 1, got {}".format(snapshot_every)
            )
        self._dir = data_dir
        self._snapshot_every = snapshot_every
        self._keep_snapshots = max(1, keep_snapshots)
        self._wal: Optional[WriteAheadLog] = None
        self._last_snapshot_version: Optional[int] = None
        self._wal_counter = metrics.counter(
            "repro_wal_records_total",
            "Delta batches fsynced to the write-ahead log",
        )
        os.makedirs(data_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Directory layout
    # ------------------------------------------------------------------
    @property
    def data_dir(self) -> str:
        """The directory this store persists into."""
        return self._dir

    def _snapshot_path(self, version: int) -> str:
        return os.path.join(self._dir, "snapshot-{:020d}.rpsn".format(version))

    def _wal_path(self, version: int) -> str:
        return os.path.join(self._dir, "wal-{:020d}.rpwl".format(version))

    def _listed(self, pattern: "re.Pattern") -> List[Tuple[int, str]]:
        found = []
        for name in os.listdir(self._dir):
            match = pattern.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self._dir, name)))
        return sorted(found)

    def snapshot_files(self) -> List[Tuple[int, str]]:
        """``(version, path)`` of every snapshot, ascending."""
        return self._listed(_SNAPSHOT_RE)

    def wal_files(self) -> List[Tuple[int, str]]:
        """``(base version, path)`` of every WAL, ascending."""
        return self._listed(_WAL_RE)

    def has_state(self) -> bool:
        """Is there anything to recover from?"""
        return bool(self.snapshot_files())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def snapshot(
        self,
        db: AnnotatedDatabase,
        registry=None,
        intern_state: Optional[InternState] = None,
    ) -> int:
        """Write a snapshot of the current state and rotate the WAL.

        ``db`` is the *working* database (the registry's, when one is
        fronted).  Returns the version the snapshot captured.  The old
        WAL is closed only after the new snapshot and WAL are durably
        on disk, so every crash window leaves a recoverable pair.
        """
        version = db.version()
        data = encode_snapshot(
            db.checkpoint_state(),
            intern_state,
            registry.materialized_state() if registry is not None else None,
        )
        with current_tracer().span(
            "snapshot.write", version=version, bytes=len(data)
        ):
            write_snapshot(self._snapshot_path(version), data)
            wal_path = self._wal_path(version)
            if self._wal is None or self._wal.path != wal_path:
                old = self._wal
                if os.path.exists(wal_path):
                    # A dead zero-record log from a snapshot at the same
                    # version (only empty update batches in between).
                    os.remove(wal_path)
                self._wal = WriteAheadLog.create(wal_path, version)
                if old is not None:
                    old.close()
        self._last_snapshot_version = version
        self._prune()
        return version

    def log_update(self, payload: dict) -> int:
        """Durably append one ``delta_to_dict`` batch; returns its index.

        Must be called *before* the batch is applied, under the same
        lock that serializes applies — the WAL order is the replay
        order.
        """
        if self._wal is None:
            raise WalError(
                "no write-ahead log is open; snapshot() or recover() first"
            )
        with current_tracer().span("wal.append", records=self._wal.records):
            index = self._wal.append(payload)
        self._wal_counter.inc()
        return index

    def should_rotate(self) -> bool:
        """Has the WAL grown past the rotation threshold?"""
        return self._wal is not None and self._wal.records >= self._snapshot_every

    def _prune(self) -> None:
        snapshots = self.snapshot_files()
        kept = snapshots[-self._keep_snapshots:]
        for _version, path in snapshots[: -self._keep_snapshots]:
            os.remove(path)
        if not kept:
            return
        oldest_kept = kept[0][0]
        for base, path in self.wal_files():
            if base < oldest_kept and (
                self._wal is None or path != self._wal.path
            ):
                os.remove(path)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self, program=None, config=None) -> RecoveredState:
        """Rebuild the serving state: latest valid snapshot + WAL replay.

        ``program``/``config`` must match what the snapshotting server
        ran with (the registry restore asserts the program).  Corrupt
        snapshots fall back to the previous generation; WAL records are
        replayed through the very maintenance paths the live server
        used, and a torn tail record is truncated.  Afterwards the
        store is positioned for appending (``log_update``) exactly
        where the dead process stopped.
        """
        snapshots = self.snapshot_files()
        if not snapshots:
            raise DurabilityError(
                "nothing to recover: no snapshot in {}".format(self._dir)
            )
        content = None
        snapshot_version = -1
        rejected: List[str] = []
        for version, path in reversed(snapshots):
            try:
                content = read_snapshot(path)
                snapshot_version = version
                break
            except SnapshotError as error:
                rejected.append("{}: {}".format(os.path.basename(path), error))
        if content is None:
            raise SnapshotError(
                "every snapshot in {} is corrupt ({})".format(
                    self._dir, "; ".join(rejected)
                )
            )
        from repro.config import resolve_engine_config

        resolved = resolve_engine_config(config, "DurableStore.recover")
        registry = None
        if content.registry_state is not None:
            if program is None:
                raise DurabilityError(
                    "snapshot {} serves a view program; pass it to "
                    "recover()".format(snapshot_version)
                )
            from repro.incremental.registry import ViewRegistry

            db = AnnotatedDatabase.from_checkpoint(
                content.checkpoint,
                track_changes=(resolved.engine == "sharded"),
            )
            registry = ViewRegistry.from_materialized(
                program, db, content.registry_state, config=resolved
            )
        else:
            if program is not None:
                raise DurabilityError(
                    "snapshot {} was taken without a view program; it "
                    "cannot back a registry server".format(snapshot_version)
                )
            db = AnnotatedDatabase.from_checkpoint(content.checkpoint)
        from repro.incremental.delta import apply_to_database
        from repro.io import delta_from_dict

        replayed = skipped = truncated = 0
        tail = [
            entry for entry in self.wal_files() if entry[0] >= snapshot_version
        ]
        with current_tracer().span(
            "recover.replay", snapshot=snapshot_version, wals=len(tail)
        ):
            for _base, path in tail:
                _version, payloads, _valid, torn = scan_wal(path)
                if torn:
                    truncated += 1
                for payload in payloads:
                    delta = delta_from_dict(payload)
                    try:
                        if registry is not None:
                            registry.apply(delta)
                        else:
                            apply_to_database(db, delta)
                    except ReproError:
                        # The live server logged this batch, then its
                        # apply failed mid-sequence; the failure is
                        # deterministic, so skipping reproduces the
                        # pre-crash state exactly.
                        skipped += 1
                    else:
                        replayed += 1
        version = registry.db_version() if registry is not None else db.version()
        if tail:
            self._wal = WriteAheadLog.open(tail[-1][1])
        else:
            # Crash between snapshot rename and WAL creation: start the
            # log the rotation never got to.
            self._wal = WriteAheadLog.create(
                self._wal_path(version), version
            )
        self._last_snapshot_version = snapshot_version
        return RecoveredState(
            db=db,
            registry=registry,
            version=version,
            snapshot_version=snapshot_version,
            replayed=replayed,
            skipped=skipped,
            truncated=truncated,
            intern_state=content.intern_state or ([], []),
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``/stats`` durability fragment."""
        return {
            "data_dir": self._dir,
            "wal_records": self._wal.records if self._wal is not None else 0,
            "last_snapshot_version": self._last_snapshot_version,
            "snapshots": len(self.snapshot_files()),
            "snapshot_every": self._snapshot_every,
        }

    def close(self) -> None:
        """Close the open WAL handle (idempotent)."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<DurableStore {} snapshot_every={}>".format(
            self._dir, self._snapshot_every
        )

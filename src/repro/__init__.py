"""repro — a reproduction of *On Provenance Minimization* (PODS 2011).

The library implements the full system of Amsterdamer, Deutch, Milo and
Tannen's paper: N[X] provenance polynomials and their terseness order,
conjunctive queries with disequalities and unions thereof, three
provenance-aware evaluation engines (set-at-a-time hash join,
backtracking, SQLite), query containment/equivalence, standard and
provenance minimization (**MinProv**), and the direct (query-free)
computation of core provenance.

Quickstart::

    from repro import AnnotatedDatabase, parse_query, evaluate, min_prov

    db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "a")]})
    query = parse_query("ans(x) :- R(x, y), R(y, x)")
    print(evaluate(query, db))           # provenance polynomials
    print(min_prov(query))               # the p-minimal equivalent

Engine selection goes through one object, :class:`repro.EngineConfig`
— ``evaluate(query, db, EngineConfig(engine="sharded", shards=4))`` —
and batches through :func:`repro.connect`, which opens a warm
:class:`repro.QuerySession`::

    from repro import EngineConfig, connect

    with connect(db, EngineConfig(engine="sharded", shards=4)) as session:
        results = session.evaluate_batch([query, query])

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-artifact reproduction index.
"""

from repro.aggregate.evaluate import aggregate_table, evaluate_aggregate
from repro.aggregate.result import AggregateResult
from repro.algebra.compile import evaluate_in_semiring, evaluate_via_algebra
from repro.algebra.monoid import AggregationMonoid, monoid_for
from repro.algebra.semimodule import SemimoduleElement
from repro.config import EngineConfig, connect
from repro.db.instance import AnnotatedDatabase
from repro.db.sharding import ShardedDatabase
from repro.db.sqlite_backend import SQLiteDatabase
from repro.explain import explain_missing, explain_tuple
from repro.views.program import evaluate_program
from repro.direct.core_polynomial import core_monomials, core_polynomial_approx
from repro.direct.pipeline import core_provenance, core_provenance_table
from repro.engine.evaluate import (
    evaluate,
    evaluate_backtracking,
    provenance,
    provenance_of_boolean,
)
from repro.engine.hashjoin import evaluate_hashjoin
from repro.engine.sharded import (
    ShardedExecutor,
    evaluate_aggregate_sharded,
    evaluate_sharded,
)
from repro.hom.containment import is_contained, is_equivalent
from repro.incremental.delta import Delta
from repro.incremental.maintain import check_consistency, maintain
from repro.incremental.registry import MaintenanceReport, ViewRegistry
from repro.hom.homomorphism import (
    count_automorphisms,
    find_homomorphism,
    has_homomorphism,
    has_surjective_homomorphism,
    is_isomorphic,
)
from repro.minimize.canonical import canonical_rewriting, possible_completions
from repro.minimize.minprov import (
    MinProvTrace,
    is_p_minimal,
    min_prov,
    min_prov_trace,
)
from repro.minimize.standard import minimize_cq, minimize_query, minimize_ucq
from repro.order.query_order import (
    bounded_le_p,
    compare_on_database,
    le_on_database,
    prove_le_p,
    provenance_equivalent,
)
from repro.query.aggregate import (
    AggregateQuery,
    AggregateRule,
    AggregateTerm,
    is_aggregate,
)
from repro.query.atoms import Atom, Disequality
from repro.query.build import atom, boolean_cq, c, cq, diseq, ucq, v
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_program, parse_query
from repro.query.printer import query_to_str
from repro.query.terms import Constant, Variable
from repro.query.ucq import UnionQuery, as_union
from repro.semiring.order import (
    Ordering,
    compare_polynomials,
    polynomial_eq,
    polynomial_le,
    polynomial_lt,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    current_tracer,
    default_registry,
    format_trace,
    tracing,
)
from repro.client import Client, Subscription
from repro.durability import DurableStore, RecoveredState, WriteAheadLog
from repro.semiring.polynomial import Monomial, Polynomial
from repro.server import ResultCache, ServerState, make_server
from repro.session import QuerySession

__version__ = "1.5.0"

__all__ = [
    # engine configuration facade (the documented way to pick engines)
    "EngineConfig",
    "connect",
    # query model
    "Variable",
    "Constant",
    "Atom",
    "Disequality",
    "ConjunctiveQuery",
    "UnionQuery",
    "as_union",
    "parse_query",
    "parse_program",
    "query_to_str",
    "atom",
    "diseq",
    "cq",
    "boolean_cq",
    "ucq",
    "v",
    "c",
    # provenance
    "Monomial",
    "Polynomial",
    "Ordering",
    "polynomial_le",
    "polynomial_lt",
    "polynomial_eq",
    "compare_polynomials",
    # databases and evaluation
    "AnnotatedDatabase",
    "SQLiteDatabase",
    "ShardedDatabase",
    "ShardedExecutor",
    "QuerySession",
    "evaluate",
    "evaluate_backtracking",
    # (evaluate_hashjoin / evaluate_sharded / evaluate_aggregate_sharded
    # remain importable, but the facade is evaluate + EngineConfig)
    "provenance",
    "provenance_of_boolean",
    # homomorphisms, containment
    "find_homomorphism",
    "has_homomorphism",
    "has_surjective_homomorphism",
    "count_automorphisms",
    "is_isomorphic",
    "is_contained",
    "is_equivalent",
    # minimization
    "minimize_cq",
    "minimize_ucq",
    "minimize_query",
    "possible_completions",
    "canonical_rewriting",
    "min_prov",
    "min_prov_trace",
    "MinProvTrace",
    "is_p_minimal",
    # query order
    "le_on_database",
    "compare_on_database",
    "bounded_le_p",
    "prove_le_p",
    "provenance_equivalent",
    # direct computation
    "core_monomials",
    "core_polynomial_approx",
    "core_provenance",
    "core_provenance_table",
    # additional engines, views and explanations
    "evaluate_via_algebra",
    "evaluate_in_semiring",
    "evaluate_program",
    "explain_tuple",
    "explain_missing",
    # incremental view maintenance
    "Delta",
    "ViewRegistry",
    "MaintenanceReport",
    "check_consistency",
    "maintain",
    # serving tier (+ the /v1 client and continuous queries)
    "ResultCache",
    "ServerState",
    "make_server",
    "Client",
    "Subscription",
    # durability (snapshots + write-ahead log)
    "DurableStore",
    "RecoveredState",
    "WriteAheadLog",
    # observability
    "MetricsRegistry",
    "Tracer",
    "current_tracer",
    "default_registry",
    "format_trace",
    "tracing",
    # aggregate provenance (semimodule annotations)
    "AggregateTerm",
    "AggregateRule",
    "AggregateQuery",
    "is_aggregate",
    "AggregationMonoid",
    "monoid_for",
    "SemimoduleElement",
    "AggregateResult",
    "evaluate_aggregate",
    "aggregate_table",
    "__version__",
]

"""Rendering annotated relations and results as text tables.

Regenerates the visual form of the paper's Tables 2-6: a relation with
its ``Provenance`` column, or an output table mapping tuples to
polynomials.  Plain-text (aligned columns) and GitHub-flavoured
markdown renderings are provided; the examples and benchmarks use them
for their printed artifacts.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from repro.db.instance import AnnotatedDatabase
from repro.semiring.polynomial import Polynomial


def _render(header: Sequence[str], rows: Sequence[Sequence[str]], markdown: bool) -> str:
    columns = len(header)
    widths = [len(h) for h in header]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(row[index]))

    def line(cells: Sequence[str]) -> str:
        padded = [cells[i].ljust(widths[i]) for i in range(columns)]
        if markdown:
            return "| " + " | ".join(padded) + " |"
        return "  ".join(padded).rstrip()

    lines: List[str] = [line(header)]
    if markdown:
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    else:
        lines.append("  ".join("-" * w for w in widths))
    lines.extend(line(row) for row in rows)
    return "\n".join(lines)


def relation_table(
    db: AnnotatedDatabase,
    relation: str,
    attribute_names: Sequence[str] = (),
    markdown: bool = False,
) -> str:
    """Render one relation like the paper's Table 2.

    >>> db = AnnotatedDatabase.from_dict({"R": {("a", "b"): "s1"}})
    >>> print(relation_table(db, "R", ("A", "B")))
    A  B  Provenance
    -  -  ----------
    a  b  s1
    """
    arity = db.arity(relation)
    if attribute_names:
        if len(attribute_names) != arity:
            raise ValueError(
                "expected {} attribute names, got {}".format(
                    arity, len(attribute_names)
                )
            )
        header = list(attribute_names)
    else:
        header = ["c{}".format(i) for i in range(arity)]
    header.append("Provenance")
    rows = [
        [str(value) for value in row] + [annotation]
        for row, annotation in sorted(db.facts(relation), key=lambda kv: repr(kv[0]))
    ]
    return _render(header, rows, markdown)


def result_table(
    results: Mapping[Tuple, Polynomial],
    attribute_names: Sequence[str] = (),
    markdown: bool = False,
) -> str:
    """Render an annotated query result like the paper's Table 3.

    >>> from repro.semiring.polynomial import Polynomial
    >>> print(result_table({("a",): Polynomial.parse("s1 + s2*s3")}, ("A",)))
    A  Provenance
    -  ----------
    a  s1 + s2*s3
    """
    arity = max((len(row) for row in results), default=0)
    if attribute_names:
        header = list(attribute_names)
    else:
        header = ["c{}".format(i) for i in range(arity)]
    header.append("Provenance")
    rows = []
    for output in sorted(results, key=repr):
        cells = [str(value) for value in output]
        cells += [""] * (len(header) - 1 - len(cells))
        cells.append(str(results[output]))
        rows.append(cells)
    return _render(header, rows, markdown)


def comparison_table(
    rows: Iterable[Tuple[str, str, str]],
    header: Tuple[str, str, str] = ("quantity", "paper", "measured"),
    markdown: bool = False,
) -> str:
    """Render a paper-vs-measured comparison (used by EXPERIMENTS runs)."""
    return _render(list(header), [list(r) for r in rows], markdown)


def database_report(db: AnnotatedDatabase, markdown: bool = False) -> str:
    """Render every relation of a database, Table-2 style."""
    sections = []
    for relation in sorted(db.relations()):
        sections.append("Relation {}".format(relation))
        sections.append(relation_table(db, relation, markdown=markdown))
        sections.append("")
    return "\n".join(sections).rstrip()

"""Evaluation of view programs with composed provenance.

A *program* maps view names to queries (CQ≠ or UCQ≠) whose bodies may
reference base relations and other views.  Evaluation proceeds in
dependency order:

1. each view is evaluated over the database-so-far;
2. its result tuples are materialized as a new relation, each tuple
   annotated with a *fresh* symbol;
3. the fresh symbol is remembered as standing for the tuple's
   provenance polynomial.

``expand_to_base`` then composes the layers: substituting each view
symbol by its polynomial (a semiring homomorphism N[V] -> N[X], by
universality) yields provenance purely over base annotations.  The
composed annotations are generally *not* abstractly tagged — two view
tuples can carry equal polynomials — which is precisely the Sec. 6
setting in which direct core computation becomes impossible while
p-minimal queries stay p-minimal (Thms. 6.1/6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate
from repro.errors import EvaluationError
from repro.query.ucq import Query, adjuncts_of
from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.polynomial import Polynomial, ProvenancePolynomialSemiring
from repro.utils.naming import NameSupply

Row = Tuple[Hashable, ...]

_NX = ProvenancePolynomialSemiring()


@dataclass(frozen=True)
class MaterializedView:
    """One evaluated view.

    ``results`` maps output tuples to their provenance over the
    *previous* layers' symbols; ``symbols`` maps each output tuple to
    the fresh annotation it carries as an input to later views.
    """

    name: str
    results: Mapping[Row, Polynomial]
    symbols: Mapping[Row, str]


@dataclass(frozen=True)
class ViewEvaluation:
    """The outcome of evaluating a whole program.

    ``views`` holds every materialized view by name; ``bindings`` maps
    every fresh view symbol to its defining polynomial (over the
    previous layers); base-relation annotations are absent from
    ``bindings`` — they stand for themselves.
    """

    views: Mapping[str, MaterializedView]
    bindings: Mapping[str, Polynomial]

    def base_provenance(self, view: str) -> Dict[Row, Polynomial]:
        """The view's provenance fully expanded to base annotations."""
        materialized = self.views[view]
        return {
            row: expand_to_base(polynomial, self.bindings)
            for row, polynomial in materialized.results.items()
        }

    def layer_symbols(self) -> Dict[str, FrozenSet[str]]:
        """Each view's fresh symbols — the invalidation currency.

        Incremental maintenance (:mod:`repro.incremental`) treats a view
        tuple as touched exactly when a monomial of its polynomial
        mentions a changed symbol; this export tells which symbols
        belong to which layer.
        """
        return {
            name: frozenset(view.symbols.values())
            for name, view in self.views.items()
        }

    def symbol_layer(self, symbol: str) -> Optional[str]:
        """The view a fresh symbol belongs to (``None`` for base)."""
        for name, symbols in self.layer_symbols().items():
            if symbol in symbols:
                return name
        return None


def dependency_order(program: Mapping[str, Query]) -> List[str]:
    """Topologically order views by body references.

    Raises :class:`~repro.errors.EvaluationError` on cyclic (recursive)
    programs — recursion is beyond UCQ≠ and out of the paper's scope.
    """
    dependencies: Dict[str, set] = {}
    for name, query in program.items():
        refs = set()
        for adjunct in adjuncts_of(query):
            refs.update(r for r in adjunct.relations() if r in program)
        dependencies[name] = refs

    ordered: List[str] = []
    done: set = set()
    visiting: set = set()

    def visit(name: str) -> None:
        if name in done:
            return
        if name in visiting:
            raise EvaluationError(
                "recursive view definition involving {!r}".format(name)
            )
        visiting.add(name)
        for dependency in sorted(dependencies[name]):
            visit(dependency)
        visiting.discard(name)
        done.add(name)
        ordered.append(name)

    for name in sorted(program):
        visit(name)
    return ordered


def evaluate_program(
    program: Mapping[str, Query],
    db: AnnotatedDatabase,
    symbol_prefix: str = "w",
) -> ViewEvaluation:
    """Evaluate a view program over an annotated database.

    Views may reference base relations of ``db`` and earlier views;
    name clashes between views and base relations are rejected.
    """
    clashes = set(program) & db.relations()
    if clashes:
        raise EvaluationError(
            "view names clash with base relations: {}".format(sorted(clashes))
        )
    supply = NameSupply(symbol_prefix, avoid=db.annotations())
    working = AnnotatedDatabase()
    for relation, row, annotation in db.all_facts():
        working.add(relation, row, annotation=annotation)

    views: Dict[str, MaterializedView] = {}
    bindings: Dict[str, Polynomial] = {}
    for name in dependency_order(program):
        query = program[name]
        results = evaluate(query, working)
        symbols: Dict[Row, str] = {}
        for row, polynomial in sorted(results.items(), key=lambda kv: repr(kv[0])):
            symbol = supply.fresh()
            symbols[row] = symbol
            bindings[symbol] = polynomial
            working.add(name, row, annotation=symbol)
        views[name] = MaterializedView(name=name, results=results, symbols=symbols)
    return ViewEvaluation(views=views, bindings=bindings)


def expand_to_base(
    polynomial: Polynomial, bindings: Mapping[str, Polynomial]
) -> Polynomial:
    """Substitute view symbols by their polynomials, recursively.

    Implements the composition homomorphism N[V] -> N[X]; symbols
    without a binding (base annotations) stand for themselves.
    """
    def valuation(symbol: str) -> Polynomial:
        bound = bindings.get(symbol)
        if bound is None:
            return Polynomial.variable(symbol)
        return expand_to_base(bound, bindings)

    return evaluate_polynomial(polynomial, _NX, valuation)


def invalidation_index(
    bindings: Mapping[str, Polynomial]
) -> Dict[str, FrozenSet[str]]:
    """Invert symbol bindings: symbol → view symbols depending on it.

    ``bindings`` is the ``ViewEvaluation.bindings`` shape (view symbol →
    defining polynomial over the previous layers).  The returned index
    answers "if this symbol changes, which view tuples must be
    reconsidered?" — transitive effects follow by chasing the index
    upward layer by layer, which is exactly what
    :class:`repro.incremental.registry.ViewRegistry` does during
    maintenance.
    """
    index: Dict[str, Set[str]] = {}
    for view_symbol, polynomial in bindings.items():
        for mentioned in polynomial.support():
            index.setdefault(mentioned, set()).add(view_symbol)
    return {symbol: frozenset(deps) for symbol, deps in index.items()}

"""Evaluation of view programs with composed provenance.

A *program* maps view names to queries (CQ≠ or UCQ≠) whose bodies may
reference base relations and other views.  Evaluation proceeds in
dependency order:

1. each view is evaluated over the database-so-far;
2. its result tuples are materialized as a new relation, each tuple
   annotated with a *fresh* symbol;
3. the fresh symbol is remembered as standing for the tuple's
   provenance polynomial.

``expand_to_base`` then composes the layers: substituting each view
symbol by its polynomial (a semiring homomorphism N[V] -> N[X], by
universality) yields provenance purely over base annotations.  The
composed annotations are generally *not* abstractly tagged — two view
tuples can carry equal polynomials — which is precisely the Sec. 6
setting in which direct core computation becomes impossible while
p-minimal queries stay p-minimal (Thms. 6.1/6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

from repro.aggregate.evaluate import evaluate_aggregate
from repro.aggregate.result import AggregateResult
from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate
from repro.errors import EvaluationError
from repro.query.aggregate import AggregateQuery, AnyQuery
from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.polynomial import Polynomial, ProvenancePolynomialSemiring
from repro.utils.naming import NameSupply

Row = Tuple[Hashable, ...]

_NX = ProvenancePolynomialSemiring()


@dataclass(frozen=True)
class MaterializedView:
    """One evaluated view.

    ``results`` maps output tuples to their provenance over the
    *previous* layers' symbols; ``symbols`` maps each output tuple to
    the fresh annotation it carries as an input to later views.
    """

    name: str
    results: Mapping[Row, Polynomial]
    symbols: Mapping[Row, str]


@dataclass(frozen=True)
class ViewEvaluation:
    """The outcome of evaluating a whole program.

    ``views`` holds every materialized view by name; ``bindings`` maps
    every fresh view symbol to its defining polynomial (over the
    previous layers); base-relation annotations are absent from
    ``bindings`` — they stand for themselves.  ``aggregates`` holds the
    aggregated K-relations of the program's aggregate views: these are
    *terminal* (no other view may reference them), so they receive no
    fresh symbols and contribute no bindings.
    """

    views: Mapping[str, MaterializedView]
    bindings: Mapping[str, Polynomial]
    aggregates: Mapping[str, Mapping[Row, AggregateResult]] = field(
        default_factory=dict
    )

    def base_provenance(self, view: str) -> Dict[Row, Polynomial]:
        """The view's provenance fully expanded to base annotations."""
        if view in self.aggregates:
            return {
                row: expand_to_base(result.provenance, self.bindings)
                for row, result in self.aggregates[view].items()
            }
        materialized = self.views[view]
        return {
            row: expand_to_base(polynomial, self.bindings)
            for row, polynomial in materialized.results.items()
        }

    def base_aggregates(self, view: str) -> Dict[Row, AggregateResult]:
        """An aggregate view with every annotation expanded to base."""
        return {
            row: result.map_polynomials(
                lambda p: expand_to_base(p, self.bindings)
            )
            for row, result in self.aggregates[view].items()
        }

    def layer_symbols(self) -> Dict[str, FrozenSet[str]]:
        """Each view's fresh symbols — the invalidation currency.

        Incremental maintenance (:mod:`repro.incremental`) treats a view
        tuple as touched exactly when a monomial of its polynomial
        mentions a changed symbol; this export tells which symbols
        belong to which layer.
        """
        return {
            name: frozenset(view.symbols.values())
            for name, view in self.views.items()
        }

    def symbol_layer(self, symbol: str) -> Optional[str]:
        """The view a fresh symbol belongs to (``None`` for base)."""
        for name, symbols in self.layer_symbols().items():
            if symbol in symbols:
                return name
        return None


def dependency_order(program: Mapping[str, AnyQuery]) -> List[str]:
    """Topologically order views by body references.

    Raises :class:`~repro.errors.EvaluationError` on cyclic (recursive)
    programs — recursion is beyond UCQ≠ and out of the paper's scope.
    """
    dependencies: Dict[str, set] = {}
    for name, query in program.items():
        dependencies[name] = {
            r for r in query.relations() if r in program
        }

    ordered: List[str] = []
    done: set = set()
    visiting: set = set()

    def visit(name: str) -> None:
        if name in done:
            return
        if name in visiting:
            raise EvaluationError(
                "recursive view definition involving {!r}".format(name)
            )
        visiting.add(name)
        for dependency in sorted(dependencies[name]):
            visit(dependency)
        visiting.discard(name)
        done.add(name)
        ordered.append(name)

    for name in sorted(program):
        visit(name)
    return ordered


def check_aggregates_terminal(program: Mapping[str, AnyQuery]) -> Set[str]:
    """The program's aggregate view names, verified to be terminal.

    Aggregate views carry semimodule annotations, which no rule body
    can consume — referencing one from another view is rejected.
    """
    aggregate_names = {
        name
        for name, query in program.items()
        if isinstance(query, AggregateQuery)
    }
    for name, query in program.items():
        used = query.relations() & aggregate_names
        if used:
            raise EvaluationError(
                "view {!r} references aggregate view(s) {}; aggregate "
                "views are terminal".format(name, sorted(used))
            )
    return aggregate_names


def evaluate_program(
    program: Mapping[str, AnyQuery],
    db: AnnotatedDatabase,
    symbol_prefix: str = "w",
) -> ViewEvaluation:
    """Evaluate a view program over an annotated database.

    Views may reference base relations of ``db`` and earlier views;
    name clashes between views and base relations are rejected.
    Aggregate views evaluate to aggregated K-relations over the
    database-so-far; being terminal, they are not materialized as
    relations for later views.
    """
    clashes = set(program) & db.relations()
    if clashes:
        raise EvaluationError(
            "view names clash with base relations: {}".format(sorted(clashes))
        )
    aggregate_names = check_aggregates_terminal(program)
    supply = NameSupply(symbol_prefix, avoid=db.annotations())
    working = AnnotatedDatabase()
    for relation, row, annotation in db.all_facts():
        working.add(relation, row, annotation=annotation)

    views: Dict[str, MaterializedView] = {}
    bindings: Dict[str, Polynomial] = {}
    aggregates: Dict[str, Dict[Row, AggregateResult]] = {}
    for name in dependency_order(program):
        query = program[name]
        if name in aggregate_names:
            aggregates[name] = evaluate_aggregate(query, working)
            continue
        results = evaluate(query, working)
        symbols: Dict[Row, str] = {}
        for row, polynomial in sorted(results.items(), key=lambda kv: repr(kv[0])):
            symbol = supply.fresh()
            symbols[row] = symbol
            bindings[symbol] = polynomial
            working.add(name, row, annotation=symbol)
        views[name] = MaterializedView(name=name, results=results, symbols=symbols)
    return ViewEvaluation(views=views, bindings=bindings, aggregates=aggregates)


def expand_to_base(
    polynomial: Polynomial, bindings: Mapping[str, Polynomial]
) -> Polynomial:
    """Substitute view symbols by their polynomials, recursively.

    Implements the composition homomorphism N[V] -> N[X]; symbols
    without a binding (base annotations) stand for themselves.
    """
    def valuation(symbol: str) -> Polynomial:
        bound = bindings.get(symbol)
        if bound is None:
            return Polynomial.variable(symbol)
        return expand_to_base(bound, bindings)

    return evaluate_polynomial(polynomial, _NX, valuation)


def invalidation_index(
    bindings: Mapping[str, Polynomial]
) -> Dict[str, FrozenSet[str]]:
    """Invert symbol bindings: symbol → view symbols depending on it.

    ``bindings`` is the ``ViewEvaluation.bindings`` shape (view symbol →
    defining polynomial over the previous layers).  The returned index
    answers "if this symbol changes, which view tuples must be
    reconsidered?" — transitive effects follow by chasing the index
    upward layer by layer, which is exactly what
    :class:`repro.incremental.registry.ViewRegistry` does during
    maintenance.
    """
    index: Dict[str, Set[str]] = {}
    for view_symbol, polynomial in bindings.items():
        for mentioned in polynomial.support():
            index.setdefault(mentioned, set()).add(view_symbol)
    return {symbol: frozenset(deps) for symbol, deps in index.items()}

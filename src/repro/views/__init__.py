"""Composed views: non-recursive Datalog with provenance composition.

Section 6 of the paper observes that input relations are not always
abstractly tagged, "for instance if they are the result of some
previous computation."  This package implements exactly that previous
computation: a program of views evaluated in dependency order, each
materialized view feeding later ones, with output provenance expanded
back to the *base* annotations by polynomial composition (the
universality of N[X]).
"""

from repro.views.program import (
    MaterializedView,
    ViewEvaluation,
    dependency_order,
    evaluate_program,
    expand_to_base,
    invalidation_index,
)

__all__ = [
    "evaluate_program",
    "ViewEvaluation",
    "MaterializedView",
    "dependency_order",
    "expand_to_base",
    "invalidation_index",
]

"""Every figure, table and construction of the paper, as fixtures.

Shared by the test suite (which asserts the paper's claims literally),
the examples and the benchmark harness (which regenerates each
artifact).  Naming follows the paper: ``figure1()`` returns the queries
of Figure 1, ``table2_database()`` the relation of Table 2, and so on.
"""

from repro.paperdata.constructions import (
    theorem_4_10_query,
    theorem_6_2_instance,
)
from repro.paperdata.databases import (
    example_5_steps_expected,
    lemma_3_6_expected,
    table2_database,
    table3_expected,
    table4_database,
    table5_database,
    table6_database,
)
from repro.paperdata.figures import (
    example_2_16_polynomials,
    example_3_2_queries,
    example_3_4_queries,
    example_4_2_query,
    figure1,
    figure2,
    figure3_qhat,
    figure3_expected_steps,
)

__all__ = [
    "figure1",
    "figure2",
    "figure3_qhat",
    "figure3_expected_steps",
    "example_2_16_polynomials",
    "example_3_2_queries",
    "example_3_4_queries",
    "example_4_2_query",
    "table2_database",
    "table3_expected",
    "table4_database",
    "table5_database",
    "table6_database",
    "lemma_3_6_expected",
    "example_5_steps_expected",
    "theorem_4_10_query",
    "theorem_6_2_instance",
]

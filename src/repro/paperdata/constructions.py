"""Parameterized constructions: Thm. 4.10 and Thm. 6.2.

``theorem_4_10_query(n)`` builds the family whose p-minimal equivalents
grow exponentially; ``theorem_6_2_instance()`` builds the
non-abstractly-tagged counterexample showing direct core computation
needs the query when annotations repeat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.instance import AnnotatedDatabase
from repro.query.build import atom, boolean_cq
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query


def theorem_4_10_query(n: int) -> ConjunctiveQuery:
    """The query ``Qn`` of Thm. 4.10.

    ``ans() :- R1(x1, y1), R1(y1, x1), ..., Rn(xn, yn), Rn(yn, xn)`` —
    size Θ(n), while any p-minimal equivalent must distinguish
    exponentially many (dis)equality cases, hence has size 2^Ω(n).
    """
    if n < 1:
        raise ValueError("n must be positive")
    atoms = []
    for i in range(1, n + 1):
        relation = "R{}".format(i)
        x, y = "x{}".format(i), "y{}".format(i)
        atoms.append(atom(relation, x, y))
        atoms.append(atom(relation, y, x))
    return boolean_cq(atoms)


@dataclass(frozen=True)
class Theorem62Instance:
    """The counterexample of Thm. 6.2.

    ``db`` annotates both ``R(a)`` and ``R(b)`` with the *same* symbol
    ``s``; ``q`` and ``q_prime`` are non-equivalent queries whose
    provenance for the tuple ``(a,)`` coincides (``s*s``), yet whose
    p-minimal equivalents yield different provenance — so no function
    of the polynomial alone can compute the core on such databases.
    """

    db: AnnotatedDatabase
    q: ConjunctiveQuery
    q_prime: ConjunctiveQuery
    output: tuple


def theorem_6_2_instance() -> Theorem62Instance:
    """Build the Thm. 6.2 counterexample."""
    db = AnnotatedDatabase.from_dict({"R": {("a",): "s"}})
    # A second tuple with the SAME annotation makes the database
    # non-abstractly-tagged; from_dict would reject the collision inside
    # one relation mapping, so add it explicitly.
    db.add("R", ("b",), annotation="s")
    q = parse_query("ans(x) :- R(x), R(y), x != y")
    q_prime = parse_query("ans(x) :- R(x), R(x)")
    return Theorem62Instance(db=db, q=q, q_prime=q_prime, output=("a",))

"""The databases of Tables 2-6 and the expected provenance of Table 3."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.db.instance import AnnotatedDatabase
from repro.semiring.polynomial import Polynomial


def table2_database() -> AnnotatedDatabase:
    """Table 2: relation ``R`` over {a, b} with annotations s1-s4."""
    return AnnotatedDatabase.from_dict(
        {
            "R": {
                ("a", "a"): "s1",
                ("a", "b"): "s2",
                ("b", "a"): "s3",
                ("b", "b"): "s4",
            }
        }
    )


def table3_expected() -> Dict[Tuple[str, ...], Polynomial]:
    """Table 3: the provenance of ``ans`` for ``Qunion`` on Table 2."""
    return {
        ("a",): Polynomial.parse("s2*s3 + s1"),
        ("b",): Polynomial.parse("s3*s2 + s4"),
    }


def table4_database() -> AnnotatedDatabase:
    """Table 4 (plus relation ``S``): the database ``D`` of Lemma 3.6."""
    return AnnotatedDatabase.from_dict(
        {
            "R": {
                ("a", "b"): "s1",
                ("b", "a"): "s2",
                ("a", "a"): "s3",
            },
            "S": {("a",): "s0"},
        }
    )


def table5_database() -> AnnotatedDatabase:
    """Table 5 (plus relation ``S``): the database ``D'`` of Lemma 3.6."""
    return AnnotatedDatabase.from_dict(
        {
            "R": {
                ("a", "b"): "s01",
                ("b", "c"): "s02",
                ("c", "a"): "s03",
                ("a", "a"): "s04",
            },
            "S": {("a",): "s0"},
        }
    )


def table6_database() -> AnnotatedDatabase:
    """Table 6: relation ``R`` of the database ``D̂`` (Examples 5.2-5.8)."""
    return AnnotatedDatabase.from_dict(
        {
            "R": {
                ("a", "a"): "s1",
                ("a", "b"): "s2",
                ("b", "a"): "s3",
                ("b", "c"): "s4",
                ("c", "a"): "s5",
            }
        }
    )


def lemma_3_6_expected() -> Dict[str, Polynomial]:
    """The four provenance polynomials computed in Lemma 3.6."""
    return {
        # On D (Table 4):
        "q_no_pmin_on_d": Polynomial.parse(
            "2*s1^2*s2^2*s3*s0 + s1*s2*s3^3*s0"
        ),
        "q_alt_on_d": Polynomial.parse("s1^2*s2^2*s3*s0 + s1*s2*s3^3*s0"),
        # On D' (Table 5):
        "q_no_pmin_on_dp": Polynomial.parse("s01*s02*s03*s04^2*s0"),
        "q_alt_on_dp": Polynomial.parse("2*s01*s02*s03*s04^2*s0"),
    }


def example_5_steps_expected() -> Dict[str, Polynomial]:
    """The provenance polynomials of Examples 5.2, 5.4 and 5.8."""
    return {
        # Example 5.2: P(Q̂, D̂) = P(Q̂_I, D̂).
        "step1": Polynomial.parse(
            "s1^3 + s2*s3*s1 + s3*s1*s2 + s1*s2*s3 + s2*s4*s5 + s4*s5*s2 + s5*s2*s4"
        ),
        # Example 5.4: the first adjunct minimized.
        "step2": Polynomial.parse("s1 + 3*s1*s2*s3 + 3*s2*s4*s5"),
        # Example 5.8: containing monomials eliminated.
        "step3": Polynomial.parse("s1 + 3*s2*s4*s5"),
    }

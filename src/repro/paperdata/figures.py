"""The queries of Figures 1-3 and the worked examples.

Each function returns freshly parsed query objects so callers can
mutate nothing shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.query.ucq import UnionQuery
from repro.semiring.polynomial import Polynomial


@dataclass(frozen=True)
class Figure1:
    """The queries of Figure 1 (Examples 2.5-2.18, Thm. 3.11)."""

    q1: ConjunctiveQuery
    q2: ConjunctiveQuery
    q_union: UnionQuery
    q_conj: ConjunctiveQuery


def figure1() -> Figure1:
    """Figure 1: ``Q1``, ``Q2``, ``Qunion = Q1 ∪ Q2`` and ``Qconj``."""
    q1 = parse_query("ans(x) :- R(x, y), R(y, x), x != y")
    q2 = parse_query("ans(x) :- R(x, x)")
    q_union = UnionQuery([q1, q2])
    q_conj = parse_query("ans(x) :- R(x, y), R(y, x)")
    return Figure1(q1=q1, q2=q2, q_union=q_union, q_conj=q_conj)


def example_2_16_polynomials() -> Tuple[Polynomial, Polynomial]:
    """Example 2.16: ``p1 < p2``."""
    p1 = Polynomial.parse("s1*s2 + s3 + s3")
    p2 = Polynomial.parse("s1*s2*s2 + s2*s3 + s3*s4 + s5")
    return p1, p2


def example_3_2_queries() -> Tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Example 3.2 (after Klug): ``Q ⊆ Q'`` without a homomorphism."""
    q = parse_query("ans() :- R(x, y), R(y, z), x != z")
    qp = parse_query("ans() :- R(x, y), x != y")
    return q, qp


def example_3_4_queries() -> Tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Example 3.4: surjectivity is essential in Thm. 3.3."""
    q = parse_query("ans() :- R(x), R(y)")
    qp = parse_query("ans() :- R(x)")
    return q, qp


def example_4_2_query() -> ConjunctiveQuery:
    """Example 4.2: the query whose ``Can(Q, {a, b})`` has 5 adjuncts."""
    return parse_query("ans(x, y) :- R(x, y), x != 'a', x != y")


@dataclass(frozen=True)
class Figure2:
    """The CQ≠ queries of Figure 2 (Thm. 3.5 / Lemmas 3.6-3.7)."""

    q_no_pmin: ConjunctiveQuery
    q_alt: ConjunctiveQuery
    q_alt2: ConjunctiveQuery
    q_alt3: ConjunctiveQuery


def figure2() -> Figure2:
    """Figure 2: the pentagon construction with one disequality.

    ``QnoPmin`` (``x1 != x2``) and ``Qalt`` (``x1 != x3``) are
    equivalent but provenance-incomparable, and no equivalent CQ≠ query
    is p-minimal (Thm. 3.5).
    """
    body = (
        "R(x1, x2), R(x2, x3), R(x3, x4), R(x4, x5), R(x5, x1), S(x1)"
    )
    q_no_pmin = parse_query("ans() :- {}, x1 != x2".format(body))
    q_alt = parse_query("ans() :- {}, x1 != x3".format(body))
    q_alt2 = parse_query("ans() :- {}, x1 != x4".format(body))
    q_alt3 = parse_query("ans() :- {}, x1 != x5".format(body))
    return Figure2(q_no_pmin=q_no_pmin, q_alt=q_alt, q_alt2=q_alt2, q_alt3=q_alt3)


def figure3_qhat() -> ConjunctiveQuery:
    """Figure 3 / Example 4.7: the triangle query ``Q̂``."""
    return parse_query("ans() :- R(x, y), R(y, z), R(z, x)")


def figure3_expected_steps() -> Dict[str, UnionQuery]:
    """The expected intermediate queries of Figure 3.

    ``QI`` is the canonical rewriting with its five adjuncts; ``QII``
    has the first adjunct minimized to ``R(v1, v1)``; ``QIII`` is
    ``Q̂min1 ∪ Q̂5``.  Adjunct variable names match the paper's
    ``v1, v2, v3``.
    """
    q_hat_1 = "ans() :- R(v1, v1), R(v1, v1), R(v1, v1)"
    q_hat_2 = "ans() :- R(v1, v2), R(v2, v1), R(v1, v1), v1 != v2"
    q_hat_3 = "ans() :- R(v1, v2), R(v2, v2), R(v2, v1), v1 != v2"
    q_hat_4 = "ans() :- R(v1, v1), R(v1, v2), R(v2, v1), v1 != v2"
    q_hat_5 = (
        "ans() :- R(v1, v2), R(v2, v3), R(v3, v1), "
        "v1 != v2, v2 != v3, v1 != v3"
    )
    q_min1 = "ans() :- R(v1, v1)"
    make = parse_query
    step1 = UnionQuery(
        [make(q_hat_1), make(q_hat_2), make(q_hat_3), make(q_hat_4), make(q_hat_5)]
    )
    step2 = UnionQuery(
        [make(q_min1), make(q_hat_2), make(q_hat_3), make(q_hat_4), make(q_hat_5)]
    )
    step3 = UnionQuery([make(q_min1), make(q_hat_5)])
    return {"QI": step1, "QII": step2, "QIII": step3}

"""Relational atoms and disequality atoms (Def. 2.1).

A relational atom is ``R(l1, ..., lk)`` with each ``li`` a variable or a
constant.  A disequality atom is ``lj != lk`` where ``lj`` is a variable
and ``lk`` is a variable or a constant (this asymmetry is the paper's
Def. 2.1; disequalities between two constants are either vacuous or
unsatisfiable and therefore rejected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Tuple

from repro.errors import QueryConstructionError, UnsatisfiableQueryError
from repro.query.terms import (
    Constant,
    Term,
    Variable,
    is_constant,
    is_variable,
    term_sort_key,
)

Substitution = Dict[Variable, Term]


@dataclass(frozen=True)
class Atom:
    """A relational atom ``relation(args...)``.

    >>> a = Atom("R", (Variable("x"), Constant("a")))
    >>> str(a)
    "R(x, 'a')"
    """

    relation: str
    args: Tuple[Term, ...]

    def __post_init__(self):
        if not self.relation or not isinstance(self.relation, str):
            raise QueryConstructionError("relation name must be a non-empty string")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        for arg in self.args:
            if not isinstance(arg, (Variable, Constant)):
                raise QueryConstructionError(
                    "atom arguments must be terms, got {!r}".format(arg)
                )

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    def variables(self) -> Iterator[Variable]:
        """Variables among the arguments, in order, with repetition."""
        return (arg for arg in self.args if is_variable(arg))

    def constants(self) -> Iterator[Constant]:
        """Constants among the arguments, in order, with repetition."""
        return (arg for arg in self.args if is_constant(arg))

    def substitute(self, substitution: Substitution) -> "Atom":
        """Apply a variable substitution to the arguments."""
        return Atom(
            self.relation,
            tuple(
                substitution.get(arg, arg) if is_variable(arg) else arg
                for arg in self.args
            ),
        )

    def __str__(self) -> str:
        return "{}({})".format(self.relation, ", ".join(str(a) for a in self.args))

    def sort_key(self):
        """Deterministic ordering for canonical presentations."""
        return (self.relation, tuple(term_sort_key(a) for a in self.args))


class Disequality:
    """A disequality atom ``left != right`` (Def. 2.1).

    At least one side must be a variable; the pair is stored in a
    canonical order so that ``x != y`` and ``y != x`` are equal objects.

    >>> Disequality(Variable("x"), Variable("y")) == Disequality(Variable("y"), Variable("x"))
    True
    """

    __slots__ = ("_pair",)

    def __init__(self, left: Term, right: Term):  # noqa: D107
        if is_constant(left) and is_constant(right):
            raise QueryConstructionError(
                "a disequality needs at least one variable (Def. 2.1): "
                "{} != {}".format(left, right)
            )
        if left == right:
            raise UnsatisfiableQueryError(
                "disequality between identical terms is unsatisfiable: "
                "{} != {}".format(left, right)
            )
        pair = tuple(sorted((left, right), key=term_sort_key))
        self._pair: Tuple[Term, Term] = pair  # variables sort before constants

    @property
    def left(self) -> Term:
        """First endpoint in canonical order (always a variable)."""
        return self._pair[0]

    @property
    def right(self) -> Term:
        """Second endpoint in canonical order."""
        return self._pair[1]

    @property
    def pair(self) -> Tuple[Term, Term]:
        """Both endpoints in canonical order."""
        return self._pair

    def terms(self) -> FrozenSet[Term]:
        """The unordered endpoint set."""
        return frozenset(self._pair)

    def variables(self) -> Tuple[Variable, ...]:
        """The endpoints that are variables."""
        return tuple(t for t in self._pair if is_variable(t))

    def substitute(self, substitution: Substitution) -> "Disequality":
        """Apply a substitution; raises if it collapses the endpoints.

        Collapsing the two sides of a disequality produces an
        unsatisfiable query, surfaced as
        :class:`~repro.errors.UnsatisfiableQueryError`.
        """
        left = substitution.get(self._pair[0], self._pair[0])
        right = substitution.get(self._pair[1], self._pair[1])
        return Disequality(left, right)

    def is_satisfied_by(self, value_of) -> bool:
        """Check the disequality under an argument valuation.

        ``value_of`` maps each endpoint term to a domain value
        (constants map to their own value).
        """
        return value_of(self._pair[0]) != value_of(self._pair[1])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Disequality):
            return NotImplemented
        return self._pair == other._pair

    def __hash__(self) -> int:
        return hash(("Disequality", self._pair))

    def __str__(self) -> str:
        return "{} != {}".format(self._pair[0], self._pair[1])

    def __repr__(self) -> str:
        return "Disequality({!r}, {!r})".format(self._pair[0], self._pair[1])

    def sort_key(self):
        """Deterministic ordering for canonical presentations."""
        return (term_sort_key(self._pair[0]), term_sort_key(self._pair[1]))

"""Terms: the variables ``V`` and constants ``C`` of Def. 2.1.

Variables are named symbols; constants wrap arbitrary hashable Python
values (the paper's domain ``C``).  Both are immutable and hashable so
they can live in atoms, substitutions and partition blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by name.

    >>> Variable("x") == Variable("x")
    True
    """

    name: str

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError("variable name must be a non-empty string")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return "Variable({!r})".format(self.name)


@dataclass(frozen=True)
class Constant:
    """A domain constant.

    Values must be hashable; strings and integers cover the paper's
    examples.  Two constants are equal exactly when their values are.

    >>> Constant("a") == Constant("a")
    True
    """

    value: Hashable

    def __post_init__(self):
        hash(self.value)  # raise early for unhashable values

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'{}'".format(self.value)
        return str(self.value)

    def __repr__(self) -> str:
        return "Constant({!r})".format(self.value)

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return _value_key(self.value) < _value_key(other.value)


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """True when ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """True when ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def term_sort_key(term: Term):
    """Deterministic ordering over mixed variables and constants."""
    if isinstance(term, Variable):
        return (0, term.name, "")
    return (1,) + _value_key(term.value)


def _value_key(value: Hashable):
    return (type(value).__name__, repr(value))

"""Unions of conjunctive queries (Def. 2.4).

A :class:`UnionQuery` is ``Q1 ∪ ... ∪ Qm`` where all adjuncts share the
same head relation and arity.  Most algorithms in the library accept
either a :class:`~repro.query.cq.ConjunctiveQuery` or a
:class:`UnionQuery`; :func:`as_union` and :func:`adjuncts_of` provide
the uniform view.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple, Union

from repro.errors import QueryConstructionError
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Variable

Query = Union[ConjunctiveQuery, "UnionQuery"]


class UnionQuery:
    """A union of conjunctive queries with disequalities (UCQ≠).

    >>> from repro.query.parser import parse_query
    >>> q = parse_query('''
    ...     ans(x) :- R(x, y), R(y, x), x != y
    ...     ans(x) :- R(x, x)
    ... ''')
    >>> len(q.adjuncts)
    2
    """

    __slots__ = ("_adjuncts", "_hash")

    def __init__(self, adjuncts: Sequence[ConjunctiveQuery]):  # noqa: D107
        self._adjuncts: Tuple[ConjunctiveQuery, ...] = tuple(adjuncts)
        if not self._adjuncts:
            raise QueryConstructionError("a union query needs at least one adjunct")
        first = self._adjuncts[0]
        for adjunct in self._adjuncts[1:]:
            if adjunct.head_relation != first.head_relation:
                raise QueryConstructionError(
                    "all adjuncts must share the head relation "
                    "({} vs {})".format(first.head_relation, adjunct.head_relation)
                )
            if adjunct.arity != first.arity:
                raise QueryConstructionError(
                    "all adjuncts must share the head arity "
                    "({} vs {})".format(first.arity, adjunct.arity)
                )
        self._hash = hash(("UnionQuery", frozenset(self._adjuncts)))

    # ------------------------------------------------------------------
    @property
    def adjuncts(self) -> Tuple[ConjunctiveQuery, ...]:
        """``Adj(Q)``: the adjuncts, in presentation order."""
        return self._adjuncts

    @property
    def head_relation(self) -> str:
        """The common head relation name."""
        return self._adjuncts[0].head_relation

    @property
    def arity(self) -> int:
        """The common head arity."""
        return self._adjuncts[0].arity

    def is_boolean(self) -> bool:
        """True when the head arity is 0."""
        return self.arity == 0

    def variables(self) -> Set[Variable]:
        """``Var(Q)``: union over the adjuncts (Sec. 2.1)."""
        result: Set[Variable] = set()
        for adjunct in self._adjuncts:
            result.update(adjunct.variables())
        return result

    def constants(self) -> Set[Constant]:
        """``Const(Q)``: union over the adjuncts (Sec. 2.1)."""
        result: Set[Constant] = set()
        for adjunct in self._adjuncts:
            result.update(adjunct.constants())
        return result

    def relations(self) -> Set[str]:
        """Names of relations used by any adjunct body."""
        result: Set[str] = set()
        for adjunct in self._adjuncts:
            result.update(adjunct.relations())
        return result

    def size(self) -> int:
        """Total number of relational atoms across adjuncts."""
        return sum(adjunct.size() for adjunct in self._adjuncts)

    def is_complete(self, constants: Iterable[Constant] = ()) -> bool:
        """Is every adjunct complete (class cUCQ≠)?"""
        return all(adjunct.is_complete(constants) for adjunct in self._adjuncts)

    def union(self, other: Query) -> "UnionQuery":
        """Union with another query (CQ or UCQ)."""
        return UnionQuery(self._adjuncts + adjuncts_of(other))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Equality as *sets* of structurally equal adjuncts."""
        if not isinstance(other, UnionQuery):
            return NotImplemented
        return frozenset(self._adjuncts) == frozenset(other._adjuncts)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        from repro.query.printer import query_to_str

        return query_to_str(self)

    def __repr__(self) -> str:
        return "<UnionQuery of {} adjuncts>".format(len(self._adjuncts))


def as_union(query: Query) -> UnionQuery:
    """View any query as a :class:`UnionQuery`."""
    if isinstance(query, UnionQuery):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionQuery([query])
    raise TypeError("expected a ConjunctiveQuery or UnionQuery, got {!r}".format(query))


def adjuncts_of(query: Query) -> Tuple[ConjunctiveQuery, ...]:
    """The adjuncts of a query (a CQ is its own single adjunct)."""
    if isinstance(query, UnionQuery):
        return query.adjuncts
    if isinstance(query, ConjunctiveQuery):
        return (query,)
    raise TypeError("expected a ConjunctiveQuery or UnionQuery, got {!r}".format(query))


def query_constants(query: Query) -> Set[Constant]:
    """``Const(Q)`` uniformly for CQ and UCQ."""
    return as_union(query).constants()

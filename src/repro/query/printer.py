"""Pretty-printing of queries in the rule syntax.

The printer emits exactly the grammar accepted by
:mod:`repro.query.parser`, so ``parse_query(query_to_str(q)) == q`` up
to disequality ordering (tests enforce the round-trip).
"""

from __future__ import annotations

from typing import List

from repro.query.aggregate import (
    AggregateQuery,
    AggregateRule,
    AnyQuery,
    head_terms_to_str,
)
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import UnionQuery, adjuncts_of


def cq_to_str(query: ConjunctiveQuery) -> str:
    """Render one conjunctive query as ``head :- body``."""
    parts: List[str] = [str(atom) for atom in query.atoms]
    parts.extend(
        str(dis) for dis in sorted(query.disequalities, key=lambda d: d.sort_key())
    )
    return "{} :- {}".format(query.head, ", ".join(parts))


def aggregate_rule_to_str(rule: AggregateRule) -> str:
    """Render one aggregate rule as ``head(u, agg(v)) :- body``."""
    parts: List[str] = [str(atom) for atom in rule.atoms]
    parts.extend(
        str(dis)
        for dis in sorted(rule.disequalities, key=lambda d: d.sort_key())
    )
    head = head_terms_to_str(rule.head_relation, rule.head_terms)
    return "{} :- {}".format(head, ", ".join(parts))


def query_to_str(query: AnyQuery, separator: str = "\n") -> str:
    """Render a CQ, UCQ or aggregate query; adjuncts/rules of a union
    are joined by ``separator`` (one per line by default, parseable back
    into the same query)."""
    if isinstance(query, AggregateQuery):
        return separator.join(
            aggregate_rule_to_str(rule) for rule in query.rules
        )
    return separator.join(cq_to_str(adjunct) for adjunct in adjuncts_of(query))


def query_to_latex(query: Query) -> str:
    """Render a query in the paper's LaTeX-ish notation.

    Only used for documentation and example output; not parseable.
    """
    lines = []
    for adjunct in adjuncts_of(query):
        body = [str(atom) for atom in adjunct.atoms]
        body.extend(
            r"{} \neq {}".format(dis.left, dis.right)
            for dis in sorted(adjunct.disequalities, key=lambda d: d.sort_key())
        )
        lines.append("{} := {}".format(adjunct.head, ", ".join(body)))
    if isinstance(query, UnionQuery) and len(lines) > 1:
        return r" \cup ".join("[{}]".format(line) for line in lines)
    return lines[0]

"""Aggregate queries: ``GROUP BY`` heads with SUM/COUNT/MIN/MAX.

An :class:`AggregateRule` is a rule whose head mixes plain terms (the
grouping attributes) with :class:`AggregateTerm` slots::

    sales(city, sum(cost)) :- Supplier(s, city), Supplies(s, part, cost)

Several rules with the same head relation and the same *signature*
(grouping/operator layout) union into an :class:`AggregateQuery`;
contributions of all adjunct rules feed the same groups, mirroring how
UCQ adjunct polynomials add up.

Each rule desugars to an *inner* conjunctive query projecting the
grouping terms followed by the aggregated variables — assignments of
the inner query are exactly the contributions to the aggregate, one
simple tensor ``monomial ⊗ value`` per assignment (evaluation lives in
:mod:`repro.aggregate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import QueryConstructionError
from repro.query.atoms import Atom, Disequality
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Term, Variable, is_variable
from repro.query.ucq import Query, UnionQuery

#: The aggregation operators understood by the query layer (the
#: corresponding monoids live in :mod:`repro.algebra.monoid`).
AGGREGATE_OPS = ("sum", "count", "min", "max")


@dataclass(frozen=True)
class AggregateTerm:
    """One aggregate slot of a head: ``sum(x)``, ``count(*)``, ...

    ``var`` is the aggregated variable; only ``count`` may omit it
    (``count(*)`` counts assignments).

    >>> str(AggregateTerm("sum", Variable("x")))
    'sum(x)'
    >>> str(AggregateTerm("count"))
    'count(*)'
    """

    op: str
    var: Optional[Variable] = None

    def __post_init__(self):
        if self.op not in AGGREGATE_OPS:
            raise QueryConstructionError(
                "unknown aggregation operator {!r}; supported: {}".format(
                    self.op, ", ".join(AGGREGATE_OPS)
                )
            )
        if self.var is None and self.op != "count":
            raise QueryConstructionError(
                "{}(*) is not defined; only count may aggregate without "
                "a variable".format(self.op)
            )
        if self.var is not None and not isinstance(self.var, Variable):
            raise QueryConstructionError(
                "aggregate arguments must be variables, got {!r}".format(
                    self.var
                )
            )

    def __str__(self) -> str:
        return "{}({})".format(self.op, self.var if self.var else "*")


HeadTerm = Union[Term, AggregateTerm]

#: One signature slot: ``None`` for a grouping position, otherwise the
#: ``(operator, carries a variable)`` pair of an aggregate position.
SignatureSlot = Optional[Tuple[str, bool]]


class AggregateRule:
    """One aggregate rule ``ans(u, agg(v), ...) :- body``.

    >>> from repro.query.build import atom
    >>> rule = AggregateRule(
    ...     "ans",
    ...     [Variable("x"), AggregateTerm("sum", Variable("y"))],
    ...     [atom("R", "x", "y")],
    ... )
    >>> str(rule)
    'ans(x, sum(y)) :- R(x, y)'
    >>> rule.inner.head.arity
    2
    """

    __slots__ = ("_head_terms", "_inner", "_hash")

    def __init__(
        self,
        head_relation: str,
        head_terms: Sequence[HeadTerm],
        atoms: Sequence[Atom],
        disequalities: Iterable[Disequality] = (),
    ):  # noqa: D107
        self._head_terms: Tuple[HeadTerm, ...] = tuple(head_terms)
        if not any(
            isinstance(term, AggregateTerm) for term in self._head_terms
        ):
            raise QueryConstructionError(
                "an aggregate rule needs at least one aggregate head term"
            )
        group_args: List[Term] = []
        aggregated: List[Variable] = []
        for term in self._head_terms:
            if isinstance(term, AggregateTerm):
                if term.var is not None:
                    aggregated.append(term.var)
            else:
                group_args.append(term)
        inner_head = Atom(head_relation, tuple(group_args) + tuple(aggregated))
        # The inner CQ enforces safety: grouping variables and aggregated
        # variables alike must occur in the rule body (Def. 2.1 lifted).
        self._inner = ConjunctiveQuery(inner_head, atoms, disequalities)
        self._hash = hash(("AggregateRule", self._head_terms, self._inner))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def head_relation(self) -> str:
        """Name of the head relation."""
        return self._inner.head_relation

    @property
    def head_terms(self) -> Tuple[HeadTerm, ...]:
        """The head slots: grouping terms and aggregate terms, in order."""
        return self._head_terms

    @property
    def inner(self) -> ConjunctiveQuery:
        """The desugared inner CQ ``ans(groups..., aggregated...)``.

        Its assignments are exactly the contributions to the aggregate.
        """
        return self._inner

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """The relational atoms of the body."""
        return self._inner.atoms

    @property
    def disequalities(self):
        """The disequality atoms of the body."""
        return self._inner.disequalities

    @property
    def arity(self) -> int:
        """Arity of the (aggregate) head."""
        return len(self._head_terms)

    @property
    def group_arity(self) -> int:
        """Number of grouping positions."""
        return sum(
            1
            for term in self._head_terms
            if not isinstance(term, AggregateTerm)
        )

    @property
    def signature(self) -> Tuple[SignatureSlot, ...]:
        """The grouping/operator layout used to match union adjuncts."""
        return tuple(
            (term.op, term.var is not None)
            if isinstance(term, AggregateTerm)
            else None
            for term in self._head_terms
        )

    @property
    def aggregate_terms(self) -> Tuple[AggregateTerm, ...]:
        """The aggregate slots, in head order."""
        return tuple(
            term
            for term in self._head_terms
            if isinstance(term, AggregateTerm)
        )

    def relations(self) -> Set[str]:
        """Names of relations used in the body."""
        return self._inner.relations()

    def variables(self) -> Set[Variable]:
        """All variables of the rule."""
        return self._inner.variables()

    def constants(self) -> Set[Constant]:
        """All constants of the rule."""
        return self._inner.constants()

    def split_inner_head(
        self, values: Sequence
    ) -> Tuple[Tuple, Tuple]:
        """Split an inner-head tuple into ``(group, contributions)``.

        ``values`` is an output tuple of :attr:`inner` (grouping values
        first, aggregated values after); the returned contributions are
        the monoid values in aggregate-slot order — ``count`` slots
        contribute ``1`` per assignment whether or not they name a
        variable.
        """
        group = tuple(values[: self.group_arity])
        aggregated = values[self.group_arity:]
        contributions: List = []
        index = 0
        for term in self._head_terms:
            if not isinstance(term, AggregateTerm):
                continue
            if term.op == "count":
                if term.var is not None:
                    index += 1
                contributions.append(1)
            else:
                contributions.append(aggregated[index])
                index += 1
        return group, tuple(contributions)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateRule):
            return NotImplemented
        return (
            self._head_terms == other._head_terms
            and self._inner == other._inner
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        from repro.query.printer import aggregate_rule_to_str

        return aggregate_rule_to_str(self)

    def __repr__(self) -> str:
        return "<AggregateRule {}>".format(self)


class AggregateQuery:
    """A union of aggregate rules feeding one grouped, aggregated head.

    >>> from repro.query.parser import parse_query
    >>> q = parse_query("ans(x, sum(y)) :- R(x, y)")
    >>> q.aggregate_ops
    ('sum',)
    >>> q.group_arity
    1
    """

    __slots__ = ("_rules", "_hash")

    def __init__(self, rules: Sequence[AggregateRule]):  # noqa: D107
        self._rules: Tuple[AggregateRule, ...] = tuple(rules)
        if not self._rules:
            raise QueryConstructionError(
                "an aggregate query needs at least one rule"
            )
        first = self._rules[0]
        for rule in self._rules[1:]:
            if rule.head_relation != first.head_relation:
                raise QueryConstructionError(
                    "all aggregate rules must share the head relation "
                    "({} vs {})".format(
                        first.head_relation, rule.head_relation
                    )
                )
            if rule.signature != first.signature:
                raise QueryConstructionError(
                    "all aggregate rules must share the head signature "
                    "({} vs {})".format(first.signature, rule.signature)
                )
        self._hash = hash(("AggregateQuery", frozenset(self._rules)))

    # ------------------------------------------------------------------
    @property
    def rules(self) -> Tuple[AggregateRule, ...]:
        """The adjunct rules, in presentation order."""
        return self._rules

    @property
    def head_relation(self) -> str:
        """The common head relation name."""
        return self._rules[0].head_relation

    @property
    def signature(self) -> Tuple[SignatureSlot, ...]:
        """The common grouping/operator layout."""
        return self._rules[0].signature

    @property
    def arity(self) -> int:
        """Arity of the head (grouping plus aggregate slots)."""
        return self._rules[0].arity

    @property
    def group_arity(self) -> int:
        """Number of grouping positions."""
        return self._rules[0].group_arity

    @property
    def aggregate_ops(self) -> Tuple[str, ...]:
        """The operators of the aggregate slots, in head order."""
        return tuple(
            slot[0] for slot in self.signature if slot is not None
        )

    def relations(self) -> Set[str]:
        """Names of relations used by any rule body."""
        result: Set[str] = set()
        for rule in self._rules:
            result.update(rule.relations())
        return result

    def variables(self) -> Set[Variable]:
        """Union of the rules' variables."""
        result: Set[Variable] = set()
        for rule in self._rules:
            result.update(rule.variables())
        return result

    def constants(self) -> Set[Constant]:
        """Union of the rules' constants."""
        result: Set[Constant] = set()
        for rule in self._rules:
            result.update(rule.constants())
        return result

    def inner_query(self) -> Query:
        """The rules' inner CQs as one plain query (CQ or UCQ).

        Useful for reusing UCQ machinery — SQL compilation, delta
        evaluation — on the contribution-producing part.
        """
        if len(self._rules) == 1:
            return self._rules[0].inner
        return UnionQuery([rule.inner for rule in self._rules])

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Equality as *sets* of structurally equal rules."""
        if not isinstance(other, AggregateQuery):
            return NotImplemented
        return frozenset(self._rules) == frozenset(other._rules)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        from repro.query.printer import query_to_str

        return query_to_str(self)

    def __repr__(self) -> str:
        return "<AggregateQuery of {} rules>".format(len(self._rules))


#: Any evaluable query: plain (CQ/UCQ) or aggregate.
AnyQuery = Union[Query, AggregateQuery]


def is_aggregate(query: object) -> bool:
    """True for :class:`AggregateQuery` instances.

    >>> from repro.query.parser import parse_query
    >>> is_aggregate(parse_query("ans(count(*)) :- R(x, y)"))
    True
    >>> is_aggregate(parse_query("ans(x) :- R(x, y)"))
    False
    """
    return isinstance(query, AggregateQuery)


def head_terms_to_str(head_relation: str, head_terms: Sequence[HeadTerm]) -> str:
    """Render an aggregate head, e.g. ``ans(x, sum(y))``."""
    rendered = []
    for term in head_terms:
        if isinstance(term, AggregateTerm):
            rendered.append(str(term))
        elif is_variable(term):
            rendered.append(term.name)
        else:
            rendered.append(str(term))
    return "{}({})".format(head_relation, ", ".join(rendered))

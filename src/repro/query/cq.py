"""Rule-based conjunctive queries with disequalities (Def. 2.1).

A :class:`ConjunctiveQuery` is

``ans(u0) :- R1(u1), ..., Rn(un), E1, ..., Em``

with relational atoms ``Ri(ui)`` and disequality atoms ``Ej``.  The
class enforces the well-formedness rules of Def. 2.1: every head
variable and every disequality variable occurs in some relational atom.

The *order* of the relational atoms is semantically irrelevant but is
preserved: the paper presents provenance monomials factor-by-factor in
atom order (Note at the end of Sec. 2.4), and this library reproduces
its examples literally.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import QueryConstructionError
from repro.query.atoms import Atom, Disequality, Substitution
from repro.query.terms import (
    Constant,
    Term,
    Variable,
    is_constant,
    is_variable,
)
from repro.utils.naming import NameSupply

DEFAULT_HEAD_RELATION = "ans"


class ConjunctiveQuery:
    """A conjunctive query with disequalities (class CQ≠ / CQ).

    >>> from repro.query.build import atom, cq, diseq
    >>> q = cq(["x"], [atom("R", "x", "y"), atom("R", "y", "x")], [diseq("x", "y")])
    >>> str(q)
    'ans(x) :- R(x, y), R(y, x), x != y'
    """

    __slots__ = ("_head", "_atoms", "_disequalities", "_hash")

    def __init__(
        self,
        head: Atom,
        atoms: Sequence[Atom],
        disequalities: Iterable[Disequality] = (),
    ):  # noqa: D107
        self._head = head
        self._atoms: Tuple[Atom, ...] = tuple(atoms)
        self._disequalities: FrozenSet[Disequality] = frozenset(disequalities)
        self._validate()
        self._hash = hash(
            (self._head, frozenset(self._atom_multiset()), self._disequalities)
        )

    def _validate(self) -> None:
        if not self._atoms:
            raise QueryConstructionError(
                "a conjunctive query needs at least one relational atom"
            )
        body_vars = self.body_variables()
        for head_var in self._head.variables():
            if head_var not in body_vars:
                raise QueryConstructionError(
                    "distinguished variable {} does not occur in the body".format(
                        head_var
                    )
                )
        for dis in self._disequalities:
            for var in dis.variables():
                if var not in body_vars:
                    raise QueryConstructionError(
                        "disequality variable {} does not occur in a relational "
                        "atom".format(var)
                    )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def head(self) -> Atom:
        """The rule head ``ans(u0)``."""
        return self._head

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """The relational atoms, in presentation order."""
        return self._atoms

    @property
    def disequalities(self) -> FrozenSet[Disequality]:
        """The disequality atoms."""
        return self._disequalities

    @property
    def head_relation(self) -> str:
        """Name of the head relation."""
        return self._head.relation

    @property
    def arity(self) -> int:
        """Arity of the head."""
        return self._head.arity

    def is_boolean(self) -> bool:
        """True when the head has arity 0 (Def. 2.1)."""
        return self._head.arity == 0

    def has_disequalities(self) -> bool:
        """True when the query is in CQ≠ proper (not plain CQ)."""
        return bool(self._disequalities)

    def body_variables(self) -> Set[Variable]:
        """Variables occurring in relational atoms."""
        result: Set[Variable] = set()
        for atom in self._atoms:
            result.update(atom.variables())
        return result

    def variables(self) -> Set[Variable]:
        """``Var(Q)``: all variables of the query (Def. 2.1)."""
        result = self.body_variables()
        result.update(self._head.variables())
        for dis in self._disequalities:
            result.update(dis.variables())
        return result

    def constants(self) -> Set[Constant]:
        """``Const(Q)``: all constants of the query.

        Includes constants in the head and in disequalities, so that a
        canonical rewriting (Def. 4.1) always covers them.
        """
        result: Set[Constant] = set()
        for atom in self._atoms:
            result.update(atom.constants())
        result.update(self._head.constants())
        for dis in self._disequalities:
            for term in dis.pair:
                if is_constant(term):
                    result.add(term)
        return result

    def arguments(self) -> Set[Term]:
        """``Var(Q) ∪ Const(Q)``."""
        args: Set[Term] = set(self.variables())
        args.update(self.constants())
        return args

    def relations(self) -> Set[str]:
        """Names of relations used in the body."""
        return {atom.relation for atom in self._atoms}

    def size(self) -> int:
        """Number of relational atoms (the length minimized by
        "standard" minimization [Chandra-Merlin])."""
        return len(self._atoms)

    def _atom_multiset(self) -> List[Tuple[Atom, int]]:
        counts: Dict[Atom, int] = {}
        for atom in self._atoms:
            counts[atom] = counts.get(atom, 0) + 1
        return sorted(counts.items(), key=lambda pair: pair[0].sort_key())

    def duplicate_atom_indices(self) -> List[int]:
        """Indices of atoms that repeat an earlier identical atom.

        Lemma 3.13: a complete query is (p-)minimal iff this is empty.
        """
        seen: Set[Atom] = set()
        duplicates: List[int] = []
        for index, atom in enumerate(self._atoms):
            if atom in seen:
                duplicates.append(index)
            else:
                seen.add(atom)
        return duplicates

    # ------------------------------------------------------------------
    # Completeness (Def. 2.2)
    # ------------------------------------------------------------------
    def is_complete(self, constants: Optional[Iterable[Constant]] = None) -> bool:
        """Is the query *complete* (Def. 2.2)?

        A query is complete when it disequates every pair of distinct
        variables and every variable/constant pair.  Passing
        ``constants`` checks completeness with respect to a superset of
        ``Const(Q)`` (used by Lemma 4.9 and MinProv step III).
        """
        consts = set(self.constants())
        if constants is not None:
            consts.update(constants)
        variables = sorted(self.variables())
        for i, x in enumerate(variables):
            for y in variables[i + 1:]:
                if Disequality(x, y) not in self._disequalities:
                    return False
            for c in consts:
                if Disequality(x, c) not in self._disequalities:
                    return False
        return True

    def completion_of(self, constants: Iterable[Constant] = ()) -> "ConjunctiveQuery":
        """Add every missing disequality (make the query complete).

        This does **not** preserve equivalence in general — it selects
        the single "all arguments distinct" case.  It is a building
        block of the canonical rewriting, not a rewriting by itself.
        """
        consts = set(self.constants()) | set(constants)
        disequalities = set(self._disequalities)
        variables = sorted(self.variables())
        for i, x in enumerate(variables):
            for y in variables[i + 1:]:
                disequalities.add(Disequality(x, y))
            for c in consts:
                disequalities.add(Disequality(x, c))
        return ConjunctiveQuery(self._head, self._atoms, disequalities)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def substitute(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a variable substitution to head, body and disequalities.

        Raises :class:`~repro.errors.UnsatisfiableQueryError` when the
        substitution collapses the endpoints of a disequality.
        """
        return ConjunctiveQuery(
            self._head.substitute(substitution),
            [atom.substitute(substitution) for atom in self._atoms],
            [dis.substitute(substitution) for dis in self._disequalities],
        )

    def with_atoms(self, atoms: Sequence[Atom]) -> "ConjunctiveQuery":
        """Same head and disequalities, different relational atoms.

        Disequalities whose variables disappear from the body are
        dropped (they would violate Def. 2.1); the head must stay safe.
        """
        remaining_vars: Set[Variable] = set()
        for atom in atoms:
            remaining_vars.update(atom.variables())
        kept = [
            dis
            for dis in self._disequalities
            if all(var in remaining_vars for var in dis.variables())
        ]
        return ConjunctiveQuery(self._head, atoms, kept)

    def without_atom(self, index: int) -> "ConjunctiveQuery":
        """Remove the relational atom at ``index``."""
        atoms = self._atoms[:index] + self._atoms[index + 1:]
        return self.with_atoms(atoms)

    def deduplicate_atoms(self) -> "ConjunctiveQuery":
        """Remove repeated identical atoms (Lemma 3.13 minimization)."""
        seen: Set[Atom] = set()
        atoms: List[Atom] = []
        for atom in self._atoms:
            if atom not in seen:
                seen.add(atom)
                atoms.append(atom)
        return ConjunctiveQuery(self._head, atoms, self._disequalities)

    def rename_apart(self, avoid: Iterable[str]) -> "ConjunctiveQuery":
        """Rename variables so none collides with names in ``avoid``."""
        avoid_set = set(avoid)
        supply = NameSupply("w", avoid_set | {v.name for v in self.variables()})
        substitution: Substitution = {}
        for var in sorted(self.variables()):
            if var.name in avoid_set:
                substitution[var] = Variable(supply.fresh())
        if not substitution:
            return self
        return self.substitute(substitution)

    def canonical_variable_order(self) -> List[Variable]:
        """Variables in order of first occurrence (head, then body)."""
        ordered: List[Variable] = []
        seen: Set[Variable] = set()
        for term in self._head.args:
            if is_variable(term) and term not in seen:
                seen.add(term)
                ordered.append(term)
        for atom in self._atoms:
            for term in atom.args:
                if is_variable(term) and term not in seen:
                    seen.add(term)
                    ordered.append(term)
        for var in sorted(self.variables()):
            if var not in seen:
                seen.add(var)
                ordered.append(var)
        return ordered

    def canonical_rename(self, prefix: str = "x") -> "ConjunctiveQuery":
        """Rename variables to ``prefix1, prefix2, ...`` by first
        occurrence; used for presentation and as a cheap pre-normalizer
        before isomorphism checks."""
        substitution: Substitution = {}
        for index, var in enumerate(self.canonical_variable_order(), start=1):
            substitution[var] = Variable("{}{}".format(prefix, index))
        return self.substitute(substitution)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Structural equality up to atom order (not up to renaming).

        Use :func:`repro.hom.homomorphism.is_isomorphic` for equality up
        to variable renaming.
        """
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self._head == other._head
            and self._atom_multiset() == other._atom_multiset()
            and self._disequalities == other._disequalities
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        from repro.query.printer import query_to_str

        return query_to_str(self)

    def __repr__(self) -> str:
        return "<ConjunctiveQuery {}>".format(self)

"""Concise programmatic construction of queries.

In these helpers a plain Python string denotes a *variable*; constants
are written explicitly with :func:`c` (or by passing a
:class:`~repro.query.terms.Constant`).  This matches the paper's habit
of using ``x, y, z`` for variables and quoting constants.

>>> q = cq(["x"], [atom("R", "x", "y"), atom("S", "y", c("a"))], [diseq("x", "y")])
>>> str(q)
"ans(x) :- R(x, y), S(y, 'a'), x != y"
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.query.atoms import Atom, Disequality
from repro.query.cq import DEFAULT_HEAD_RELATION, ConjunctiveQuery
from repro.query.terms import Constant, Term, Variable
from repro.query.ucq import Query, UnionQuery, adjuncts_of

TermLike = Union[str, Term]


def v(name: str) -> Variable:
    """A variable."""
    return Variable(name)


def c(value) -> Constant:
    """A constant."""
    return Constant(value)


def term(value: TermLike) -> Term:
    """Coerce: strings become variables, terms pass through."""
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str):
        return Variable(value)
    raise TypeError(
        "cannot coerce {!r} to a term; use c(...) for constants".format(value)
    )


def atom(relation: str, *args: TermLike) -> Atom:
    """A relational atom; string arguments are variables."""
    return Atom(relation, tuple(term(a) for a in args))


def diseq(left: TermLike, right: TermLike) -> Disequality:
    """A disequality atom; string arguments are variables."""
    return Disequality(term(left), term(right))


def cq(
    head_args: Sequence[TermLike],
    atoms: Sequence[Atom],
    disequalities: Iterable[Disequality] = (),
    head_relation: str = DEFAULT_HEAD_RELATION,
) -> ConjunctiveQuery:
    """A conjunctive query ``head_relation(head_args) :- atoms, diseqs``."""
    head = Atom(head_relation, tuple(term(a) for a in head_args))
    return ConjunctiveQuery(head, atoms, disequalities)


def boolean_cq(
    atoms: Sequence[Atom],
    disequalities: Iterable[Disequality] = (),
    head_relation: str = DEFAULT_HEAD_RELATION,
) -> ConjunctiveQuery:
    """A boolean conjunctive query (head of arity 0)."""
    return cq((), atoms, disequalities, head_relation)


def ucq(*queries: Query) -> UnionQuery:
    """The union of the given queries (each a CQ or UCQ)."""
    adjuncts = []
    for query in queries:
        adjuncts.extend(adjuncts_of(query))
    return UnionQuery(adjuncts)

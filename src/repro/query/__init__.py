"""The query languages of the paper: CQ, CQ≠, cCQ≠, UCQ, UCQ≠.

* :mod:`repro.query.terms` — variables and constants;
* :mod:`repro.query.atoms` — relational atoms and disequality atoms;
* :mod:`repro.query.cq` — rule-based conjunctive queries (Def. 2.1),
  completeness (Def. 2.2);
* :mod:`repro.query.ucq` — unions of conjunctive queries (Def. 2.4);
* :mod:`repro.query.aggregate` — ``GROUP BY`` heads with
  ``sum``/``count``/``min``/``max`` slots (semimodule-annotated
  evaluation lives in :mod:`repro.aggregate`);
* :mod:`repro.query.parser` / :mod:`repro.query.printer` — the textual
  rule syntax ``ans(x, y) :- R(x, y), S(y, 'c'), x != y``;
* :mod:`repro.query.build` — a concise programmatic construction API.
"""

from repro.query.aggregate import (
    AggregateQuery,
    AggregateRule,
    AggregateTerm,
    is_aggregate,
)
from repro.query.atoms import Atom, Disequality
from repro.query.build import atom, cq, diseq, ucq
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_program, parse_query
from repro.query.printer import query_to_str
from repro.query.terms import Constant, Term, Variable
from repro.query.ucq import UnionQuery, adjuncts_of, as_union

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "Atom",
    "Disequality",
    "ConjunctiveQuery",
    "UnionQuery",
    "AggregateTerm",
    "AggregateRule",
    "AggregateQuery",
    "is_aggregate",
    "as_union",
    "adjuncts_of",
    "parse_query",
    "parse_program",
    "query_to_str",
    "atom",
    "diseq",
    "cq",
    "ucq",
]

"""Parser for the rule-based query syntax.

Grammar (one rule per line; ``:-`` and the paper's ``:=`` both accepted;
a trailing period is optional)::

    rule      :=  head ( ":-" | ":=" ) body
    head      :=  NAME "(" headterms? ")"
    headterms :=  headterm ("," headterm)*
    headterm  :=  term
               |  AGGOP "(" NAME ")"             -- sum/count/min/max
               |  "count" "(" "*"? ")"          -- assignment counting
    body      :=  item ("," item)*
    item      :=  NAME "(" terms? ")"            -- relational atom
               |  term ("!=" | "<>") term        -- disequality atom
    term      :=  NAME                           -- variable
               |  "'" chars "'" | '"' chars '"'  -- string constant
               |  INTEGER                        -- integer constant

Rules that share a head relation are collected into a
:class:`~repro.query.ucq.UnionQuery` (Def. 2.4); rules whose heads
carry aggregate terms form an
:class:`~repro.query.aggregate.AggregateQuery` instead (heads must
agree on the grouping/operator layout, and aggregate rules cannot mix
with plain rules for the same head relation).

>>> q = parse_query("ans(x, y) :- R(x, y), S(y, 'c'), x != y, y != 'c'")
>>> sorted(v.name for v in q.variables())
['x', 'y']
>>> agg = parse_query("sales(city, sum(cost)) :- S(city, cost)")
>>> agg.aggregate_ops
('sum',)
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.query.aggregate import (
    AGGREGATE_OPS,
    AggregateQuery,
    AggregateRule,
    AggregateTerm,
    AnyQuery,
    HeadTerm,
)
from repro.query.atoms import Atom, Disequality
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Term, Variable
from repro.query.ucq import UnionQuery

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*|%[^\n]*)
  | (?P<ARROW>:-|:=)
  | (?P<NEQ>!=|<>|≠)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<PERIOD>\.)
  | (?P<STAR>\*)
  | (?P<STRING>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<NUMBER>-?\d+)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

Token = Tuple[str, str, int]  # (kind, text, position)


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                "unexpected character {!r}".format(text[position]), position
            )
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append((kind, match.group(), position))
        position = match.end()
    tokens.append(("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token[0] != kind:
            raise ParseError(
                "expected {} but found {!r}".format(kind, token[1] or "end of input"),
                token[2],
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[Token]:
        if self._peek()[0] == kind:
            return self._advance()
        return None

    # -- grammar -----------------------------------------------------------
    def parse_rules(self) -> List[Union[ConjunctiveQuery, AggregateRule]]:
        rules: List[Union[ConjunctiveQuery, AggregateRule]] = []
        while self._peek()[0] != "EOF":
            rules.append(self._rule())
            self._accept("PERIOD")
        if not rules:
            raise ParseError("no rules found", 0)
        return rules

    def _rule(self) -> Union[ConjunctiveQuery, AggregateRule]:
        head_relation, head_terms = self._head()
        self._expect("ARROW")
        atoms: List[Atom] = []
        disequalities: List[Disequality] = []
        while True:
            item = self._body_item()
            if isinstance(item, Atom):
                atoms.append(item)
            else:
                disequalities.append(item)
            if not self._accept("COMMA"):
                break
        if any(isinstance(term, AggregateTerm) for term in head_terms):
            return AggregateRule(head_relation, head_terms, atoms, disequalities)
        head = Atom(head_relation, tuple(head_terms))
        return ConjunctiveQuery(head, atoms, disequalities)

    def _head(self) -> Tuple[str, List[HeadTerm]]:
        name = self._expect("NAME")[1]
        self._expect("LPAREN")
        terms: List[HeadTerm] = []
        if self._peek()[0] != "RPAREN":
            terms.append(self._head_term())
            while self._accept("COMMA"):
                terms.append(self._head_term())
        self._expect("RPAREN")
        return name, terms

    def _head_term(self) -> HeadTerm:
        token = self._peek()
        if (
            token[0] == "NAME"
            and self._tokens[self._index + 1][0] == "LPAREN"
        ):
            op = self._advance()[1].lower()
            if op not in AGGREGATE_OPS:
                raise ParseError(
                    "unknown aggregation operator {!r} (supported: "
                    "{})".format(token[1], ", ".join(AGGREGATE_OPS)),
                    token[2],
                )
            self._expect("LPAREN")
            var: Optional[Variable] = None
            if self._accept("STAR") or self._peek()[0] == "RPAREN":
                if op != "count":
                    raise ParseError(
                        "only count may aggregate without a variable; "
                        "{}(*) is not defined".format(op),
                        token[2],
                    )
            else:
                argument = self._peek()
                term = self._term()
                if not isinstance(term, Variable):
                    raise ParseError(
                        "aggregate arguments must be variables, got "
                        "{!r}".format(argument[1]),
                        argument[2],
                    )
                var = term
            self._expect("RPAREN")
            return AggregateTerm(op, var)
        return self._term()

    def _body_item(self) -> Union[Atom, Disequality]:
        token = self._peek()
        if token[0] == "NAME" and self._tokens[self._index + 1][0] == "LPAREN":
            return self._atom()
        left = self._term()
        self._expect("NEQ")
        right = self._term()
        return Disequality(left, right)

    def _atom(self) -> Atom:
        name = self._expect("NAME")[1]
        self._expect("LPAREN")
        args: List[Term] = []
        if self._peek()[0] != "RPAREN":
            args.append(self._term())
            while self._accept("COMMA"):
                args.append(self._term())
        self._expect("RPAREN")
        return Atom(name, tuple(args))

    def _term(self) -> Term:
        token = self._peek()
        if token[0] == "NAME":
            self._advance()
            return Variable(token[1])
        if token[0] == "STRING":
            self._advance()
            raw = token[1][1:-1]
            return Constant(raw.replace("\\'", "'").replace('\\"', '"'))
        if token[0] == "NUMBER":
            self._advance()
            return Constant(int(token[1]))
        raise ParseError(
            "expected a term but found {!r}".format(token[1] or "end of input"),
            token[2],
        )


def parse_rules(text: str) -> List[Union[ConjunctiveQuery, AggregateRule]]:
    """Parse every rule in ``text``; aggregate heads yield
    :class:`~repro.query.aggregate.AggregateRule` entries."""
    return _Parser(text).parse_rules()


def _assemble(
    name: str, rules: List[Union[ConjunctiveQuery, AggregateRule]]
) -> AnyQuery:
    aggregate = [rule for rule in rules if isinstance(rule, AggregateRule)]
    if aggregate:
        if len(aggregate) != len(rules):
            raise ParseError(
                "rules for {!r} mix aggregate and non-aggregate heads; "
                "a head relation is one or the other".format(name),
                0,
            )
        return AggregateQuery(aggregate)
    if len(rules) == 1:
        return rules[0]
    return UnionQuery(rules)


def parse_query(text: str) -> AnyQuery:
    """Parse ``text`` into a CQ (one rule), a UCQ (several rules) or an
    :class:`~repro.query.aggregate.AggregateQuery` (aggregate heads).

    All rules must share the same head relation; use
    :func:`parse_program` for texts defining several queries.
    """
    rules = parse_rules(text)
    return _assemble(rules[0].head_relation, rules)


def parse_program(text: str) -> Dict[str, AnyQuery]:
    """Parse a multi-query program, grouping rules by head relation.

    Returns ``{head_relation: query}`` where each query is a CQ when a
    single plain rule defines the relation, a UCQ for several plain
    rules, and an :class:`~repro.query.aggregate.AggregateQuery` when
    the head carries aggregate terms.
    """
    grouped: Dict[str, List[Union[ConjunctiveQuery, AggregateRule]]] = {}
    for rule in parse_rules(text):
        grouped.setdefault(rule.head_relation, []).append(rule)
    return {
        name: _assemble(name, rules) for name, rules in grouped.items()
    }

"""Parser for the rule-based query syntax.

Grammar (one rule per line; ``:-`` and the paper's ``:=`` both accepted;
a trailing period is optional)::

    rule      :=  head ( ":-" | ":=" ) body
    head      :=  NAME "(" terms? ")"
    body      :=  item ("," item)*
    item      :=  NAME "(" terms? ")"            -- relational atom
               |  term ("!=" | "<>") term        -- disequality atom
    term      :=  NAME                           -- variable
               |  "'" chars "'" | '"' chars '"'  -- string constant
               |  INTEGER                        -- integer constant

Rules that share a head relation are collected into a
:class:`~repro.query.ucq.UnionQuery` (Def. 2.4).

>>> q = parse_query("ans(x, y) :- R(x, y), S(y, 'c'), x != y, y != 'c'")
>>> sorted(v.name for v in q.variables())
['x', 'y']
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.query.atoms import Atom, Disequality
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Term, Variable
from repro.query.ucq import Query, UnionQuery

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*|%[^\n]*)
  | (?P<ARROW>:-|:=)
  | (?P<NEQ>!=|<>|≠)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<PERIOD>\.)
  | (?P<STRING>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<NUMBER>-?\d+)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

Token = Tuple[str, str, int]  # (kind, text, position)


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                "unexpected character {!r}".format(text[position]), position
            )
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append((kind, match.group(), position))
        position = match.end()
    tokens.append(("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token[0] != kind:
            raise ParseError(
                "expected {} but found {!r}".format(kind, token[1] or "end of input"),
                token[2],
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[Token]:
        if self._peek()[0] == kind:
            return self._advance()
        return None

    # -- grammar -----------------------------------------------------------
    def parse_rules(self) -> List[ConjunctiveQuery]:
        rules: List[ConjunctiveQuery] = []
        while self._peek()[0] != "EOF":
            rules.append(self._rule())
            self._accept("PERIOD")
        if not rules:
            raise ParseError("no rules found", 0)
        return rules

    def _rule(self) -> ConjunctiveQuery:
        head = self._atom()
        self._expect("ARROW")
        atoms: List[Atom] = []
        disequalities: List[Disequality] = []
        while True:
            item = self._body_item()
            if isinstance(item, Atom):
                atoms.append(item)
            else:
                disequalities.append(item)
            if not self._accept("COMMA"):
                break
        return ConjunctiveQuery(head, atoms, disequalities)

    def _body_item(self) -> Union[Atom, Disequality]:
        token = self._peek()
        if token[0] == "NAME" and self._tokens[self._index + 1][0] == "LPAREN":
            return self._atom()
        left = self._term()
        self._expect("NEQ")
        right = self._term()
        return Disequality(left, right)

    def _atom(self) -> Atom:
        name = self._expect("NAME")[1]
        self._expect("LPAREN")
        args: List[Term] = []
        if self._peek()[0] != "RPAREN":
            args.append(self._term())
            while self._accept("COMMA"):
                args.append(self._term())
        self._expect("RPAREN")
        return Atom(name, tuple(args))

    def _term(self) -> Term:
        token = self._peek()
        if token[0] == "NAME":
            self._advance()
            return Variable(token[1])
        if token[0] == "STRING":
            self._advance()
            raw = token[1][1:-1]
            return Constant(raw.replace("\\'", "'").replace('\\"', '"'))
        if token[0] == "NUMBER":
            self._advance()
            return Constant(int(token[1]))
        raise ParseError(
            "expected a term but found {!r}".format(token[1] or "end of input"),
            token[2],
        )


def parse_rules(text: str) -> List[ConjunctiveQuery]:
    """Parse every rule in ``text`` as a list of conjunctive queries."""
    return _Parser(text).parse_rules()


def parse_query(text: str) -> Query:
    """Parse ``text`` into a CQ (one rule) or UCQ (several rules).

    All rules must share the same head relation; use
    :func:`parse_program` for texts defining several queries.
    """
    rules = parse_rules(text)
    if len(rules) == 1:
        return rules[0]
    return UnionQuery(rules)


def parse_program(text: str) -> Dict[str, Query]:
    """Parse a multi-query program, grouping rules by head relation.

    Returns ``{head_relation: query}`` where each query is a CQ when a
    single rule defines the relation and a UCQ otherwise.
    """
    grouped: Dict[str, List[ConjunctiveQuery]] = {}
    for rule in parse_rules(text):
        grouped.setdefault(rule.head_relation, []).append(rule)
    program: Dict[str, Query] = {}
    for name, rules in grouped.items():
        program[name] = rules[0] if len(rules) == 1 else UnionQuery(rules)
    return program

"""The Viterbi semiring ``([0, 1], max, *, 0, 1)``.

Specializing a provenance polynomial with per-tuple confidence scores
computes the confidence of the *best* derivation.  The Viterbi semiring
is absorptive (``max(a, a*b) = a`` for ``b <= 1``), so best-derivation
confidence is preserved by core provenance.
"""

from __future__ import annotations

from repro.semiring.base import Semiring


class ViterbiSemiring(Semiring[float]):
    """Max-times algebra over the unit interval."""

    idempotent_add = True
    absorptive = True

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return max(a, b)

    def mul(self, a: float, b: float) -> float:
        if not (0.0 <= a <= 1.0 and 0.0 <= b <= 1.0):
            raise ValueError("Viterbi scores must lie in [0, 1]")
        return a * b

"""The tropical (min-plus) semiring ``(R ∪ {∞}, min, +, ∞, 0)``.

Specializing a provenance polynomial with per-tuple *costs* computes the
cost of the cheapest derivation of an output tuple.  With nonnegative
costs the tropical semiring is absorptive, so the cheapest derivation
computed from the core provenance equals the one computed from the full
provenance.
"""

from __future__ import annotations

from repro.semiring.base import Semiring

INFINITY = float("inf")


class TropicalSemiring(Semiring[float]):
    """Min-plus algebra over ``R≥0 ∪ {∞}``.

    Absorptivity (``min(a, a + b) == a``) requires ``b >= 0``; the
    library treats tuple costs as nonnegative, which :meth:`mul`
    enforces.
    """

    idempotent_add = True
    absorptive = True

    @property
    def zero(self) -> float:
        return INFINITY

    @property
    def one(self) -> float:
        return 0.0

    def add(self, a: float, b: float) -> float:
        return min(a, b)

    def mul(self, a: float, b: float) -> float:
        if a < 0 or b < 0:
            raise ValueError("tropical costs must be nonnegative")
        return a + b

"""Specializing provenance polynomials into arbitrary semirings.

``N[X]`` is the universal commutative semiring over ``X``: any valuation
``X -> K`` extends uniquely to a semiring homomorphism ``N[X] -> K``.
This function is that homomorphism, and is the bridge between recorded
provenance and the downstream analysis tools of the paper's
introduction (trust, costs, clearances, counts, ...).
"""

from __future__ import annotations

from typing import Callable, Mapping, TypeVar, Union

from repro.semiring.base import Semiring
from repro.semiring.polynomial import Polynomial

V = TypeVar("V")
Valuation = Union[Mapping[str, V], Callable[[str], V]]


def evaluate_polynomial(
    polynomial: Polynomial,
    semiring: Semiring[V],
    valuation: Valuation,
) -> V:
    """Evaluate ``polynomial`` in ``semiring`` under ``valuation``.

    ``valuation`` maps each annotation symbol to a semiring value; it may
    be a mapping or a callable.  A missing symbol raises ``KeyError`` —
    silently defaulting would corrupt analyses.

    >>> from repro.semiring.polynomial import Polynomial
    >>> from repro.semiring.boolean import BooleanSemiring
    >>> p = Polynomial.parse("s1*s2 + s3")
    >>> evaluate_polynomial(p, BooleanSemiring(), {"s1": True, "s2": False, "s3": True})
    True
    """
    if callable(valuation):
        lookup = valuation
    else:
        mapping = valuation

        def lookup(symbol: str) -> V:
            return mapping[symbol]

    total = semiring.zero
    for monomial, coefficient in polynomial.terms.items():
        product = semiring.one
        for symbol in monomial.symbols:
            product = semiring.mul(product, lookup(symbol))
        total = semiring.add(total, semiring.times(coefficient, product))
    return total

"""The provenance semiring ``N[X]``: monomials and polynomials.

A :class:`Monomial` is a finite multiset of annotation symbols (strings);
``s1 * s1 * s2`` has the factor multiset ``{s1: 2, s2: 1}``.  A
:class:`Polynomial` maps monomials to positive natural coefficients.

The paper works with polynomials *in expanded form* — coefficients and
exponents written out as repeated monomials and repeated factors — so
that monomials correspond one-to-one with assignments (see the Note at
the end of Sec. 2.4).  :meth:`Polynomial.expanded` provides that view;
``str()`` shows the compact form with coefficients and exponents.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple, Union

from repro.semiring.base import Semiring
from repro.utils.multiset import FrozenMultiset

SymbolLike = Union[str, "Monomial"]


class Monomial:
    """A product of annotation symbols, e.g. ``s1*s1*s2``.

    Immutable and hashable.  The empty monomial is the multiplicative
    unit ``1``.

    >>> m = Monomial(["s1", "s2", "s1"])
    >>> str(m)
    's1^2*s2'
    >>> m.degree
    3
    """

    __slots__ = ("_factors",)

    def __init__(self, symbols: Iterable[str] = ()):  # noqa: D107
        factors = tuple(symbols)
        for symbol in factors:
            if not isinstance(symbol, str):
                raise TypeError(
                    "monomial factors must be symbol strings, got {!r}".format(symbol)
                )
        self._factors = FrozenMultiset(factors)

    # -- constructors ---------------------------------------------------
    @classmethod
    def one(cls) -> "Monomial":
        """The empty monomial (multiplicative unit)."""
        return cls(())

    @classmethod
    def from_multiset(cls, factors: FrozenMultiset) -> "Monomial":
        """Wrap an existing factor multiset."""
        monomial = cls.__new__(cls)
        monomial._factors = factors
        return monomial

    # -- structure ------------------------------------------------------
    @property
    def factors(self) -> FrozenMultiset:
        """The factor multiset."""
        return self._factors

    @property
    def degree(self) -> int:
        """Total degree (number of factors with multiplicity)."""
        return len(self._factors)

    @property
    def symbols(self) -> Tuple[str, ...]:
        """All factors with repetition, sorted."""
        return self._factors.items

    def exponent(self, symbol: str) -> int:
        """Multiplicity of ``symbol`` in this monomial."""
        return self._factors.count(symbol)

    def support(self) -> "Monomial":
        """Each symbol exactly once (Cor. 5.6, step 1)."""
        return Monomial.from_multiset(self._factors.support())

    def is_linear(self) -> bool:
        """True when no symbol occurs more than once."""
        return self._factors == self._factors.support()

    # -- order (Def. 2.15) ----------------------------------------------
    def __le__(self, other: "Monomial") -> bool:
        """Monomial containment ``m <= m'`` (Def. 2.15)."""
        return self._factors <= other._factors

    def __lt__(self, other: "Monomial") -> bool:
        return self._factors < other._factors

    def __ge__(self, other: "Monomial") -> bool:
        return other <= self

    def __gt__(self, other: "Monomial") -> bool:
        return other < self

    # -- algebra ----------------------------------------------------------
    def __mul__(self, other: SymbolLike) -> "Monomial":
        if isinstance(other, str):
            other = Monomial([other])
        if not isinstance(other, Monomial):
            return NotImplemented
        return Monomial.from_multiset(self._factors + other._factors)

    # -- protocol ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self._factors == other._factors

    def __hash__(self) -> int:
        return hash(("Monomial", self._factors))

    def __iter__(self) -> Iterator[str]:
        return iter(self._factors)

    def __str__(self) -> str:
        if self.degree == 0:
            return "1"
        parts = []
        for symbol in self._factors.distinct():
            exponent = self.exponent(symbol)
            parts.append(symbol if exponent == 1 else "{}^{}".format(symbol, exponent))
        return "*".join(parts)

    def expanded_str(self) -> str:
        """Factors written out one by one (``s1*s1*s2``)."""
        if self.degree == 0:
            return "1"
        return "*".join(self.symbols)

    def __repr__(self) -> str:
        return "Monomial({!r})".format(list(self.symbols))


class Polynomial:
    """An element of ``N[X]``: monomials with positive coefficients.

    >>> p = Polynomial.from_terms([(Monomial(["s1"]), 2), (Monomial(["s2", "s3"]), 1)])
    >>> str(p)
    '2*s1 + s2*s3'
    >>> p.monomial_count()
    3
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, int] = ()):  # noqa: D107
        cleaned: Dict[Monomial, int] = {}
        for monomial, coefficient in dict(terms).items():
            if not isinstance(monomial, Monomial):
                raise TypeError("polynomial keys must be Monomial instances")
            if not isinstance(coefficient, int):
                raise TypeError("coefficients must be natural numbers")
            if coefficient < 0:
                raise ValueError("coefficients must be nonnegative")
            if coefficient > 0:
                cleaned[monomial] = coefficient
        self._terms = cleaned

    # -- constructors ---------------------------------------------------
    @classmethod
    def _from_clean(cls, terms: Dict[Monomial, int]) -> "Polynomial":
        """Adopt an already-validated term dictionary without copying.

        The decode hot path (:meth:`repro.algebra.intern.InternTable.
        polynomial`) builds millions of result polynomials whose terms
        are positive by construction; re-validating each through
        ``__init__`` dominates the merge stage.  ``terms`` must map
        :class:`Monomial` keys to positive ints and must not be mutated
        by the caller afterwards.
        """
        polynomial = cls.__new__(cls)
        polynomial._terms = terms
        return polynomial

    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial (annotation of absent tuples)."""
        return cls({})

    @classmethod
    def one(cls) -> "Polynomial":
        """The unit polynomial."""
        return cls({Monomial.one(): 1})

    @classmethod
    def variable(cls, symbol: str) -> "Polynomial":
        """The polynomial consisting of a single annotation symbol."""
        return cls({Monomial([symbol]): 1})

    @classmethod
    def from_monomials(cls, monomials: Iterable[Monomial]) -> "Polynomial":
        """Sum of monomial occurrences (duplicates add up)."""
        terms: Dict[Monomial, int] = {}
        for monomial in monomials:
            terms[monomial] = terms.get(monomial, 0) + 1
        return cls(terms)

    @classmethod
    def from_terms(cls, terms: Iterable[Tuple[Monomial, int]]) -> "Polynomial":
        """Sum of ``(monomial, coefficient)`` pairs."""
        accumulated: Dict[Monomial, int] = {}
        for monomial, coefficient in terms:
            accumulated[monomial] = accumulated.get(monomial, 0) + coefficient
        return cls(accumulated)

    @classmethod
    def parse(cls, text: str) -> "Polynomial":
        """Parse ``"2*s1^2*s2 + s3"`` into a polynomial.

        The grammar is: terms separated by ``+``; each term is factors
        separated by ``*``; a factor is a natural number (coefficient),
        or ``symbol`` or ``symbol^exponent``.

        >>> str(Polynomial.parse("s1*s1 + 2*s3"))
        's1^2 + 2*s3'
        """
        text = text.strip()
        if not text or text == "0":
            return cls.zero()
        terms: Dict[Monomial, int] = {}
        for chunk in text.split("+"):
            chunk = chunk.strip()
            if not chunk:
                raise ValueError("empty term in polynomial text")
            coefficient = 1
            symbols: List[str] = []
            for factor in chunk.split("*"):
                factor = factor.strip()
                if not factor:
                    raise ValueError("empty factor in polynomial text")
                if factor.isdigit():
                    coefficient *= int(factor)
                    continue
                if "^" in factor:
                    symbol, _, exponent_text = factor.partition("^")
                    symbols.extend([symbol.strip()] * int(exponent_text))
                else:
                    symbols.append(factor)
            monomial = Monomial(symbols)
            terms[monomial] = terms.get(monomial, 0) + coefficient
        return cls(terms)

    # -- structure ------------------------------------------------------
    @property
    def terms(self) -> Dict[Monomial, int]:
        """A fresh ``{monomial: coefficient}`` dictionary."""
        return dict(self._terms)

    def coefficient(self, monomial: Monomial) -> int:
        """Coefficient of ``monomial`` (0 when absent)."""
        return self._terms.get(monomial, 0)

    def monomials(self) -> List[Monomial]:
        """Distinct monomials, in deterministic order."""
        return sorted(self._terms.keys(), key=lambda m: m.symbols)

    def monomial_count(self) -> int:
        """Number of monomial *occurrences* (sum of coefficients).

        This equals the number of assignments that produced the
        annotated tuple (Sec. 2.4's isomorphism between assignments and
        expanded monomials).
        """
        return sum(self._terms.values())

    def expanded(self) -> List[Monomial]:
        """Monomial occurrences with repetition (the paper's expanded
        form, in which coefficients are written as repeated monomials)."""
        occurrences: List[Monomial] = []
        for monomial in self.monomials():
            occurrences.extend([monomial] * self._terms[monomial])
        return occurrences

    def support(self) -> frozenset:
        """All annotation symbols occurring anywhere in the polynomial."""
        symbols = set()
        for monomial in self._terms:
            symbols.update(monomial.symbols)
        return frozenset(symbols)

    def degree(self) -> int:
        """Maximum monomial degree (0 for the zero polynomial)."""
        return max((m.degree for m in self._terms), default=0)

    def is_zero(self) -> bool:
        """True when this is the zero polynomial."""
        return not self._terms

    # -- algebra ----------------------------------------------------------
    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        terms = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            terms[monomial] = terms.get(monomial, 0) + coefficient
        return Polynomial(terms)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        terms: Dict[Monomial, int] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                product = m1 * m2
                terms[product] = terms.get(product, 0) + c1 * c2
        return Polynomial(terms)

    def scale(self, n: int) -> "Polynomial":
        """Multiply every coefficient by the natural number ``n``."""
        if n < 0:
            raise ValueError("scale factor must be nonnegative")
        return Polynomial({m: c * n for m, c in self._terms.items()})

    def derivative(self, symbol: str) -> "Polynomial":
        """The formal partial derivative ``∂p/∂symbol``.

        For bag semantics this is the sensitivity of the output
        multiplicity to the multiplicity of the input tuple annotated
        ``symbol`` (used by :mod:`repro.apps.causality`).

        >>> str(Polynomial.parse("s1^2*s2 + 3*s1 + s3").derivative("s1"))
        '3 + 2*s1*s2'
        """
        terms: Dict[Monomial, int] = {}
        for monomial, coefficient in self._terms.items():
            exponent = monomial.exponent(symbol)
            if exponent == 0:
                continue
            remaining = list(monomial.symbols)
            remaining.remove(symbol)
            reduced = Monomial(remaining)
            terms[reduced] = terms.get(reduced, 0) + coefficient * exponent
        return Polynomial(terms)

    def map_symbols(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Rename annotation symbols (used by Sec. 6's re-tagging)."""
        terms: Dict[Monomial, int] = {}
        for monomial, coefficient in self._terms.items():
            renamed = Monomial([mapping.get(s, s) for s in monomial.symbols])
            terms[renamed] = terms.get(renamed, 0) + coefficient
        return Polynomial(terms)

    # -- protocol ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for monomial in self.monomials():
            coefficient = self._terms[monomial]
            if monomial.degree == 0:
                parts.append(str(coefficient))
            elif coefficient == 1:
                parts.append(str(monomial))
            else:
                parts.append("{}*{}".format(coefficient, monomial))
        return " + ".join(parts)

    def expanded_str(self) -> str:
        """Expanded form: every occurrence written out."""
        occurrences = self.expanded()
        if not occurrences:
            return "0"
        return " + ".join(m.expanded_str() for m in occurrences)

    def __repr__(self) -> str:
        return "Polynomial.parse({!r})".format(str(self))


class ProvenancePolynomialSemiring(Semiring[Polynomial]):
    """``N[X]`` packaged as a :class:`~repro.semiring.base.Semiring`.

    This is the *universal* commutative semiring over ``X`` (Green et
    al. 2007): any valuation of the symbols into another commutative
    semiring factors uniquely through it — see
    :func:`repro.semiring.evaluate.evaluate_polynomial`.
    """

    idempotent_add = False
    absorptive = False

    @property
    def zero(self) -> Polynomial:
        return Polynomial.zero()

    @property
    def one(self) -> Polynomial:
        return Polynomial.one()

    def add(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a + b

    def mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a * b

"""Commutative semirings and the N[X] provenance polynomials.

The paper builds on the provenance-semiring framework of Green,
Karvounarakis and Tannen (PODS 2007): every input tuple carries an
annotation, relational operators combine annotations with ``+`` (union /
alternative derivations) and ``*`` (join / joint use), and the annotation
of an output tuple is a polynomial in ``N[X]``.

This package provides:

* :class:`~repro.semiring.polynomial.Monomial` and
  :class:`~repro.semiring.polynomial.Polynomial` — ``N[X]`` itself,
  the most general provenance semiring;
* the terseness order of Def. 2.15
  (:mod:`repro.semiring.order`);
* a generic :class:`~repro.semiring.base.Semiring` interface with the
  classic instances (Boolean, counting, tropical, Why(X), Trio,
  lineage, security, Viterbi);
* specialization of provenance polynomials into any commutative semiring
  (:mod:`repro.semiring.evaluate`), which is how provenance feeds the
  "advanced data management tools" of the paper's introduction.
"""

from repro.semiring.base import Semiring
from repro.semiring.boolean import BooleanSemiring
from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.lineage import LineageSemiring
from repro.semiring.natural import NaturalSemiring
from repro.semiring.order import (
    Ordering,
    compare_polynomials,
    monomial_le,
    polynomial_eq,
    polynomial_le,
    polynomial_lt,
)
from repro.semiring.polynomial import Monomial, Polynomial
from repro.semiring.posbool import PosBoolSemiring, posbool_of
from repro.semiring.security import SecuritySemiring
from repro.semiring.trio import TrioSemiring
from repro.semiring.tropical import TropicalSemiring
from repro.semiring.viterbi import ViterbiSemiring
from repro.semiring.whyprov import WhySemiring

__all__ = [
    "Semiring",
    "Monomial",
    "Polynomial",
    "Ordering",
    "monomial_le",
    "polynomial_le",
    "polynomial_lt",
    "polynomial_eq",
    "compare_polynomials",
    "evaluate_polynomial",
    "BooleanSemiring",
    "NaturalSemiring",
    "TropicalSemiring",
    "WhySemiring",
    "TrioSemiring",
    "LineageSemiring",
    "SecuritySemiring",
    "ViterbiSemiring",
    "PosBoolSemiring",
    "posbool_of",
]

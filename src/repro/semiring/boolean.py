"""The Boolean semiring ``({False, True}, or, and, False, True)``.

Specializing a provenance polynomial into this semiring answers
*trust assessment* questions: given which input tuples are trusted, is
the output tuple derivable from trusted tuples only?  The Boolean
semiring is absorptive, so trust answers computed from the *core*
provenance coincide with those computed from the full provenance.
"""

from __future__ import annotations

from repro.semiring.base import Semiring


class BooleanSemiring(Semiring[bool]):
    """Two-valued logic; absorptive (``a + a*b = a``)."""

    idempotent_add = True
    absorptive = True

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b

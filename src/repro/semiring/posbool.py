"""PosBool(X): positive Boolean expressions in minimal DNF.

PosBool(X) is the free *distributive lattice* over X — equivalently,
N[X] quotiented by idempotence of both operations and absorption
(``a + a*b = a``).  Elements are represented canonically as antichains
of witness sets (minimal DNF): no witness contains another.

PosBool is the most informative *absorptive* provenance model; the
supports of the paper's core monomials are exactly the PosBool image
of the provenance polynomial (tested in the suite).  That is the
algebraic reason every absorptive analysis (trust, cost, clearance)
may be fed the core instead of the full provenance.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.semiring.base import Semiring
from repro.semiring.polynomial import Polynomial

Witness = FrozenSet[str]
PosBoolValue = FrozenSet[Witness]


def _minimize(witnesses: Iterable[Witness]) -> PosBoolValue:
    """Keep only inclusion-minimal witnesses (absorption law)."""
    witnesses = set(witnesses)
    return frozenset(
        w for w in witnesses if not any(other < w for other in witnesses)
    )


class PosBoolSemiring(Semiring[PosBoolValue]):
    """Minimal-DNF positive Boolean expressions.

    >>> s = PosBoolSemiring()
    >>> x, y = s.variable("x"), s.variable("y")
    >>> s.add(x, s.mul(x, y)) == x          # absorption
    True
    """

    idempotent_add = True
    absorptive = True

    @property
    def zero(self) -> PosBoolValue:
        return frozenset()

    @property
    def one(self) -> PosBoolValue:
        return frozenset({frozenset()})

    def add(self, a: PosBoolValue, b: PosBoolValue) -> PosBoolValue:
        return _minimize(a | b)

    def mul(self, a: PosBoolValue, b: PosBoolValue) -> PosBoolValue:
        return _minimize(w1 | w2 for w1 in a for w2 in b)

    @staticmethod
    def variable(symbol: str) -> PosBoolValue:
        """The PosBool value of an input tuple annotated ``symbol``."""
        return frozenset({frozenset({symbol})})


def posbool_of(polynomial: Polynomial) -> PosBoolValue:
    """Project an N[X] polynomial onto PosBool(X).

    The result is the antichain of minimal witness sets — identical to
    the supports of :func:`repro.direct.core_polynomial.core_monomials`
    (tested), which is why the core suffices for absorptive analyses.
    """
    return _minimize(frozenset(m.symbols) for m in polynomial.terms)

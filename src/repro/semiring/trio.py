"""Trio-style lineage: polynomials without exponents.

Trio provenance (Benjelloun et al., VLDB J. 2008) is, per Green
(ICDT 2009), the quotient of N[X] in which multiplication is made
idempotent on variables — i.e. polynomials whose monomials are *sets*
of symbols, with natural coefficients retained.

The paper contrasts core provenance with Trio: Trio drops exponents but
keeps containing monomials, while the core also drops containing
monomials and normalizes coefficients to automorphism counts.
"""

from __future__ import annotations

from repro.semiring.base import Semiring
from repro.semiring.polynomial import Polynomial


class TrioSemiring(Semiring[Polynomial]):
    """Polynomials whose monomials carry no exponents.

    Values are ordinary :class:`~repro.semiring.polynomial.Polynomial`
    objects that are kept in *support form* (every monomial linear);
    multiplication re-normalizes.
    """

    idempotent_add = False
    absorptive = False

    @property
    def zero(self) -> Polynomial:
        return Polynomial.zero()

    @property
    def one(self) -> Polynomial:
        return Polynomial.one()

    def add(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return self.normalize(a + b)

    def mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return self.normalize(a * b)

    @staticmethod
    def normalize(polynomial: Polynomial) -> Polynomial:
        """Collapse every monomial to its support (drop exponents)."""
        return Polynomial.from_terms(
            (monomial.support(), coefficient)
            for monomial, coefficient in polynomial.terms.items()
        )

    @staticmethod
    def variable(symbol: str) -> Polynomial:
        """The Trio value of an input tuple annotated ``symbol``."""
        return Polynomial.variable(symbol)


def trio_of(polynomial: Polynomial) -> Polynomial:
    """Project an N[X] provenance polynomial onto Trio lineage."""
    return TrioSemiring.normalize(polynomial)

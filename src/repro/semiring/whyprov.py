"""Why-provenance: the semiring of sets of witness sets.

Why(X) (Buneman, Khanna, Tan, ICDT 2001) annotates a tuple with the set
of its *witnesses* — each witness being the set of input tuples jointly
used by one derivation.  As shown by Green (ICDT 2009), Why(X) is the
quotient of N[X] that forgets both coefficients and exponents.

Elements are frozensets of frozensets of symbols.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.semiring.base import Semiring

Witness = FrozenSet[str]
WhyValue = FrozenSet[Witness]


class WhySemiring(Semiring[WhyValue]):
    """Sets of witness sets with union and pairwise union."""

    idempotent_add = True
    absorptive = False

    @property
    def zero(self) -> WhyValue:
        return frozenset()

    @property
    def one(self) -> WhyValue:
        return frozenset({frozenset()})

    def add(self, a: WhyValue, b: WhyValue) -> WhyValue:
        return a | b

    def mul(self, a: WhyValue, b: WhyValue) -> WhyValue:
        return frozenset(w1 | w2 for w1 in a for w2 in b)

    @staticmethod
    def variable(symbol: str) -> WhyValue:
        """The Why-value of an input tuple annotated ``symbol``."""
        return frozenset({frozenset({symbol})})

    @staticmethod
    def minimal_witnesses(value: WhyValue) -> WhyValue:
        """Drop witnesses that strictly contain another witness.

        The result is the *minimal witness basis* (MinWhy); this is the
        Why-provenance shadow of the core-provenance transform of
        Cor. 5.6 and is compared against it in tests.
        """
        return frozenset(
            w
            for w in value
            if not any(other < w for other in value)
        )

"""The access-control (security clearance) semiring.

Levels are totally ordered from most permissive to most restricted,
e.g. ``PUBLIC < CONFIDENTIAL < SECRET < TOP_SECRET < NEVER``.  A joint
use of tuples requires the *maximum* of their clearances; alternative
derivations allow the *minimum*.  The semiring is absorptive, so the
clearance needed to see an output tuple can be computed from its core
provenance alone.
"""

from __future__ import annotations

import enum

from repro.semiring.base import Semiring


class Clearance(enum.IntEnum):
    """Security levels; larger value = more restricted."""

    PUBLIC = 0
    CONFIDENTIAL = 1
    SECRET = 2
    TOP_SECRET = 3
    NEVER = 4


class SecuritySemiring(Semiring[Clearance]):
    """``(Clearance, min, max, NEVER, PUBLIC)``."""

    idempotent_add = True
    absorptive = True

    @property
    def zero(self) -> Clearance:
        return Clearance.NEVER

    @property
    def one(self) -> Clearance:
        return Clearance.PUBLIC

    def add(self, a: Clearance, b: Clearance) -> Clearance:
        return min(a, b)

    def mul(self, a: Clearance, b: Clearance) -> Clearance:
        return max(a, b)

"""The abstract commutative-semiring interface.

A commutative semiring ``(K, +, *, 0, 1)`` has an associative,
commutative ``+`` with unit ``0``, an associative, commutative ``*`` with
unit ``1`` distributing over ``+``, and ``0`` annihilating ``*``.

Two structural properties matter for core provenance:

``idempotent_add``
    ``a + a = a``.  In idempotent semirings the coefficients of a
    provenance polynomial are irrelevant.

``absorptive``
    ``a + a*b = a``.  In absorptive semirings any monomial that contains
    another contributes nothing, so evaluating the *core* provenance
    (which drops containing monomials, Cor. 5.6) gives exactly the same
    value as evaluating the full provenance.  This is the formal basis of
    the paper's "compact input to data management tools" claim, and is
    verified by property tests and by ``benchmarks/bench_applications``.
"""

from __future__ import annotations

import abc
from typing import Generic, TypeVar

V = TypeVar("V")


class Semiring(abc.ABC, Generic[V]):
    """A commutative semiring over values of type ``V``."""

    #: ``a + a == a`` holds for all elements.
    idempotent_add: bool = False
    #: ``a + a * b == a`` holds for all elements (implies idempotent_add).
    absorptive: bool = False

    @property
    @abc.abstractmethod
    def zero(self) -> V:
        """The additive unit (annotation of absent tuples)."""

    @property
    @abc.abstractmethod
    def one(self) -> V:
        """The multiplicative unit (annotation of unconditionally
        present tuples)."""

    @abc.abstractmethod
    def add(self, a: V, b: V) -> V:
        """Semiring addition (alternative derivations / union)."""

    @abc.abstractmethod
    def mul(self, a: V, b: V) -> V:
        """Semiring multiplication (joint use / join)."""

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------
    def times(self, n: int, a: V) -> V:
        """``n``-fold sum ``a + a + ... + a`` (``n >= 0``).

        Polynomial coefficients are natural numbers; specializing a
        polynomial into this semiring maps the coefficient ``n`` through
        this operation.  Idempotent semirings short-circuit.
        """
        if n < 0:
            raise ValueError("coefficient must be nonnegative")
        if n == 0:
            return self.zero
        if self.idempotent_add:
            return a
        result = a
        for _ in range(n - 1):
            result = self.add(result, a)
        return result

    def power(self, a: V, n: int) -> V:
        """``n``-fold product ``a * a * ... * a`` (``n >= 0``)."""
        if n < 0:
            raise ValueError("exponent must be nonnegative")
        result = self.one
        for _ in range(n):
            result = self.mul(result, a)
        return result

    def sum(self, values) -> V:
        """Fold :meth:`add` over an iterable (``zero`` when empty)."""
        result = self.zero
        for value in values:
            result = self.add(result, value)
        return result

    def product(self, values) -> V:
        """Fold :meth:`mul` over an iterable (``one`` when empty)."""
        result = self.one
        for value in values:
            result = self.mul(result, value)
        return result

    def __repr__(self) -> str:
        return type(self).__name__ + "()"

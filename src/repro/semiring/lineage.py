"""Flat lineage: the semiring of sets of contributing tuples.

Lineage (Cui, Widom) annotates an output tuple with the flat *set* of
all input tuples that participate in any derivation.  It is the
coarsest of the provenance models discussed in the paper's related-work
section: both addition and multiplication are set union.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.semiring.base import Semiring
from repro.semiring.polynomial import Polynomial

LineageValue = FrozenSet[str]

_EMPTY: LineageValue = frozenset()


class LineageSemiring(Semiring[LineageValue]):
    """Sets of symbols; both operations are union.

    Note the subtlety that makes flat lineage only a *near*-semiring:
    the annihilation law ``0 * a = 0`` fails if zero is modelled as the
    empty set and multiplication as plain union.  Following common
    practice we use a distinguished bottom element for zero.
    """

    idempotent_add = True
    # Not absorptive: add is union, so ``a + a*b`` *grows* to ``a ∪ b``
    # instead of collapsing to ``a`` — flat lineage deliberately keeps
    # every contributing tuple.
    absorptive = False

    #: Distinguished zero (no derivation at all).
    ZERO: LineageValue = frozenset({"⊥"})

    @property
    def zero(self) -> LineageValue:
        return self.ZERO

    @property
    def one(self) -> LineageValue:
        return _EMPTY

    def add(self, a: LineageValue, b: LineageValue) -> LineageValue:
        if a == self.ZERO:
            return b
        if b == self.ZERO:
            return a
        return a | b

    def mul(self, a: LineageValue, b: LineageValue) -> LineageValue:
        if a == self.ZERO or b == self.ZERO:
            return self.ZERO
        return a | b

    @staticmethod
    def variable(symbol: str) -> LineageValue:
        """The lineage value of an input tuple annotated ``symbol``."""
        return frozenset({symbol})


def lineage_of(polynomial: Polynomial) -> LineageValue:
    """Project an N[X] provenance polynomial onto flat lineage."""
    if polynomial.is_zero():
        return LineageSemiring.ZERO
    return frozenset(polynomial.support())

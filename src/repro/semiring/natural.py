"""The counting semiring ``(N, +, *, 0, 1)``.

Specializing a provenance polynomial with all symbols set to their tuple
multiplicities computes bag-semantics result multiplicities.  The
counting semiring is *not* absorptive: replacing full provenance by core
provenance changes counts — this is exercised (and documented) by the
application benchmarks.
"""

from __future__ import annotations

from repro.semiring.base import Semiring


class NaturalSemiring(Semiring[int]):
    """Natural numbers with ordinary addition and multiplication."""

    idempotent_add = False
    absorptive = False

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

"""The terseness order on provenance polynomials (Def. 2.15).

``m <= m'`` for monomials means an injective mapping of the factors of
``m`` onto equal factors of ``m'`` exists — i.e. multiset inclusion.

``p <= p'`` for polynomials means an injective mapping of the monomial
*occurrences* of ``p`` to monomial occurrences of ``p'`` exists such that
every occurrence maps to a containing monomial.  Deciding this is a
bipartite matching problem, solved exactly with Hopcroft-Karp
(:mod:`repro.utils.matching`).

Example 2.16 of the paper:

>>> from repro.semiring.polynomial import Polynomial
>>> p1 = Polynomial.parse("s1*s2 + s3 + s3")
>>> p2 = Polynomial.parse("s1*s2*s2 + s2*s3 + s3*s4 + s5")
>>> polynomial_lt(p1, p2)
True
"""

from __future__ import annotations

import enum
from typing import List

from repro.semiring.polynomial import Monomial, Polynomial
from repro.utils.matching import maximum_matching_size


class Ordering(enum.Enum):
    """Outcome of comparing two polynomials under Def. 2.15."""

    EQUAL = "equal"
    LESS = "less"
    GREATER = "greater"
    INCOMPARABLE = "incomparable"


def monomial_le(m1: Monomial, m2: Monomial) -> bool:
    """``m1 <= m2``: multiset inclusion of factors (Def. 2.15)."""
    return m1 <= m2


def polynomial_le(p1: Polynomial, p2: Polynomial) -> bool:
    """``p1 <= p2``: an injective containment-respecting mapping of
    monomial occurrences exists (Def. 2.15).

    Decided by maximum bipartite matching between the expanded monomial
    occurrences of ``p1`` (left) and of ``p2`` (right), with an edge
    whenever the left monomial is contained in the right one.
    """
    left: List[Monomial] = p1.expanded()
    right: List[Monomial] = p2.expanded()
    if len(left) > len(right):
        return False
    adjacency = []
    for m1 in left:
        adjacency.append([j for j, m2 in enumerate(right) if m1 <= m2])
    return maximum_matching_size(adjacency, len(right)) == len(left)


def polynomial_eq(p1: Polynomial, p2: Polynomial) -> bool:
    """``p1 = p2`` in the sense of Def. 2.15 (both directions hold).

    For finite multisets of monomials under containment this coincides
    with polynomial identity; tests verify the coincidence on random
    polynomials.
    """
    return polynomial_le(p1, p2) and polynomial_le(p2, p1)


def polynomial_lt(p1: Polynomial, p2: Polynomial) -> bool:
    """``p1 < p2``: ``p1 <= p2`` holds but ``p1 = p2`` does not."""
    return polynomial_le(p1, p2) and not polynomial_le(p2, p1)


def compare_polynomials(p1: Polynomial, p2: Polynomial) -> Ordering:
    """Full four-way comparison under the terseness order.

    Note that — unlike comparison by query length — two provenance
    polynomials may be :attr:`Ordering.INCOMPARABLE` (see Lemma 3.6 and
    the `bench_figure2_tables45` benchmark).
    """
    le = polynomial_le(p1, p2)
    ge = polynomial_le(p2, p1)
    if le and ge:
        return Ordering.EQUAL
    if le:
        return Ordering.LESS
    if ge:
        return Ordering.GREATER
    return Ordering.INCOMPARABLE

"""Comparing equivalent queries by provenance (Def. 2.17).

``Q <=_P Q'`` holds when for *every* abstractly-tagged database ``D``
and every output tuple ``t``, ``P(t, Q, D) <= P(t, Q', D)`` under the
polynomial order of Def. 2.15.

Exactly deciding ``<=_P`` is not attempted in general; the library
offers the paper's tools instead:

* :func:`le_on_database` — the comparison on one database;
* :func:`bounded_le_p` — exhaustive search over all databases up to a
  size bound; finds every counterexample the paper exhibits
  (Tables 4/5, Example 2.18) and provides evidence otherwise;
* :func:`surjective_hom_witnesses_le` — the *sufficient* condition of
  Thm. 3.3;
* :func:`provenance_equivalent` — an exact decision for ``≡_P`` via
  canonical rewritings (two case-partitioned complete unions have equal
  provenance everywhere iff their adjunct multisets agree up to
  isomorphism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate
from repro.hom.homomorphism import has_surjective_homomorphism, is_isomorphic
from repro.minimize.canonical import possible_completions
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import Query, adjuncts_of, as_union
from repro.semiring.order import Ordering, polynomial_le
from repro.semiring.polynomial import Polynomial


def le_on_database(q1: Query, q2: Query, db: AnnotatedDatabase) -> bool:
    """``P(t, q1, db) <= P(t, q2, db)`` for every output tuple ``t``."""
    results1 = evaluate(q1, db)
    results2 = evaluate(q2, db)
    for output in set(results1) | set(results2):
        p1 = results1.get(output, Polynomial.zero())
        p2 = results2.get(output, Polynomial.zero())
        if not polynomial_le(p1, p2):
            return False
    return True


def compare_on_database(q1: Query, q2: Query, db: AnnotatedDatabase) -> Ordering:
    """Four-way comparison of the two queries' provenance on ``db``."""
    le = le_on_database(q1, q2, db)
    ge = le_on_database(q2, q1, db)
    if le and ge:
        return Ordering.EQUAL
    if le:
        return Ordering.LESS
    if ge:
        return Ordering.GREATER
    return Ordering.INCOMPARABLE


@dataclass(frozen=True)
class BoundedComparison:
    """Outcome of a bounded ``<=_P`` search.

    ``holds`` is the verdict over every database checked;
    ``counterexample`` is the first violating database (``None`` when
    the relation held everywhere); ``databases_checked`` is the number
    of databases examined.
    """

    holds: bool
    counterexample: Optional[AnnotatedDatabase]
    databases_checked: int


def bounded_le_p(
    q1: Query,
    q2: Query,
    domain: Sequence = ("a", "b"),
    max_facts: Optional[int] = None,
) -> BoundedComparison:
    """Check ``q1 <=_P q2`` over *all* abstractly-tagged databases with
    the given active domain (optionally capped in size).

    Sound for refutation — a returned counterexample is definitive.
    A positive verdict is evidence, not proof: ``<=_P`` quantifies over
    all databases.  Every separation claimed by the paper is witnessed
    within ``domain`` sizes 2-3.
    """
    from repro.db.generators import all_databases

    relations = {}
    for query in (q1, q2):
        for adjunct in adjuncts_of(query):
            for atom in adjunct.atoms:
                relations[atom.relation] = atom.arity

    checked = 0
    for db in all_databases(relations, domain, max_facts=max_facts):
        checked += 1
        if not le_on_database(q1, q2, db):
            return BoundedComparison(False, db, checked)
    return BoundedComparison(True, None, checked)


def surjective_hom_witnesses_le(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Thm. 3.3 sufficient condition for ``q1 <=_P q2``.

    A homomorphism ``q2 -> q1`` surjective on relational atoms, between
    equivalent queries, guarantees ``q1 <=_P q2``.  (Equivalence itself
    is not checked here.)
    """
    return has_surjective_homomorphism(q2, q1)


def prove_le_p(q1: Query, q2: Query) -> bool:
    """Symbolically *prove* ``q1 <=_P q2`` (no databases involved).

    The method mechanizes the Thm. 3.3 argument case-wise:

    1. rewrite both queries canonically over their joint constants
       (provenance preserved, Thm. 4.4);
    2. build a bipartite graph between the adjunct instances — an edge
       from a ``q1`` instance ``A`` to a ``q2`` instance ``B`` whenever
       a homomorphism ``B -> A`` *surjective on relational atoms*
       exists (then every assignment of ``A`` maps to an assignment of
       ``B`` with the same head and a containing monomial, injectively
       — the Thm. 3.3 proof);
    3. succeed iff a matching saturates every ``q1`` instance.

    Returns ``True`` only with a proof in hand; ``False`` means "not
    provable by this method", not a refutation (use
    :func:`bounded_le_p` to hunt for counterexamples).  The method
    proves every positive ``<=_P`` claim made in the paper, including
    ``MinProv(Q) <=_P Q'`` for equivalent ``Q'`` (Prop. 4.8) — see the
    tests.
    """
    from repro.hom.homomorphism import find_homomorphism
    from repro.utils.matching import maximum_matching_size

    union1 = as_union(q1)
    union2 = as_union(q2)
    constants = union1.constants() | union2.constants()
    left: List[ConjunctiveQuery] = []
    for adjunct in union1.adjuncts:
        left.extend(possible_completions(adjunct, constants))
    right: List[ConjunctiveQuery] = []
    for adjunct in union2.adjuncts:
        right.extend(possible_completions(adjunct, constants))

    adjacency = []
    for target in left:
        edges = []
        for index, source in enumerate(right):
            if find_homomorphism(source, target, surjective=True) is not None:
                edges.append(index)
        adjacency.append(edges)
    return maximum_matching_size(adjacency, len(right)) == len(left)


def provenance_equivalent(q1: Query, q2: Query) -> bool:
    """Exactly decide ``q1 ≡_P q2`` (equal provenance on every
    abstractly-tagged database).

    Both queries are canonically rewritten over the union of their
    constants (provenance preserved, Thm. 4.4).  Canonical adjuncts
    partition the assignment space by equality "case" (Lemma 4.5), and
    within a case the monomials are determined by the adjunct up to
    isomorphism; hence the two rewritings agree on every database iff
    their adjunct multisets agree up to isomorphism.
    """
    union1 = as_union(q1)
    union2 = as_union(q2)
    constants = union1.constants() | union2.constants()
    adjuncts1: List[ConjunctiveQuery] = []
    for adjunct in union1.adjuncts:
        adjuncts1.extend(possible_completions(adjunct, constants))
    adjuncts2: List[ConjunctiveQuery] = []
    for adjunct in union2.adjuncts:
        adjuncts2.extend(possible_completions(adjunct, constants))
    if len(adjuncts1) != len(adjuncts2):
        return False
    remaining = list(adjuncts2)
    for adjunct in adjuncts1:
        found = None
        for index, candidate in enumerate(remaining):
            if is_isomorphic(adjunct, candidate):
                found = index
                break
        if found is None:
            return False
        del remaining[found]
    return True

"""The provenance order on queries (Defs. 2.17, 2.19).

``Q <=_P Q'`` quantifies over *all* abstractly-tagged databases, so it
cannot be decided by evaluation alone.  This package provides

* per-database comparison,
* bounded counterexample search over small databases (sound for
  refutation, evidence for confirmation),
* the sufficient condition of Thm. 3.3 (surjective homomorphism), and
* an exact decision procedure for provenance *equivalence* via
  canonical rewritings.
"""

from repro.order.query_order import (
    bounded_le_p,
    compare_on_database,
    le_on_database,
    prove_le_p,
    provenance_equivalent,
    surjective_hom_witnesses_le,
)

__all__ = [
    "le_on_database",
    "compare_on_database",
    "bounded_le_p",
    "prove_le_p",
    "surjective_hom_witnesses_le",
    "provenance_equivalent",
]

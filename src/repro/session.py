"""Batched query sessions: amortize work across queries on one database.

A :class:`QuerySession` serves many queries against one database
version and shares every reusable artifact between them:

* **one pinned intern table** — captured from
  :func:`~repro.algebra.intern.shared_intern` at construction and used
  for every evaluation and every decode until the session closes.  The
  shared table's swap-on-growth
  (:data:`~repro.algebra.intern.MAX_SHARED_ENTRIES`) can replace the
  global table *mid-batch*; without pinning, annotations memoized
  earlier in the batch would be decoded against a different table's
  ids — the stale-monomial-id hazard the swap regression test forces;
* **one plan cache** — every query of the batch compiles against the
  same :class:`~repro.engine.plan_cache.PlanCache`;
* **one shard partitioning and worker pool** — with
  ``engine="sharded"``, a warm
  :class:`~repro.engine.sharded.ShardedExecutor` whose payload ships to
  workers once per database epoch;
* **per-adjunct result memoization** — queries are grouped by their
  cached plans: a batch evaluates each distinct conjunctive adjunct
  (or aggregate query) once, however many submitted queries share it,
  and the memo persists across batches until the database changes.

Sessions track the database version: mutate the database and the next
evaluation transparently refreshes (clears memos, re-syncs the shard
partitioning through the change log, re-ships worker payloads).  The
incremental :class:`~repro.incremental.registry.ViewRegistry` keeps a
session for exactly this — its refresh loop re-partitions per delta,
not per database size.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.algebra.columnar import decode_polynomials
from repro.algebra.intern import InternTable, shared_intern
from repro.config import EngineConfig, resolve_engine_config
from repro.db.instance import AnnotatedDatabase
from repro.engine.hashjoin import HeadTuple, _execute, plan_for
from repro.engine.plan_cache import PlanCache
from repro.engine.sharded import ShardedExecutor
from repro.errors import EvaluationError
from repro.obs.trace import current_tracer
from repro.query.aggregate import AggregateQuery, AnyQuery
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import adjuncts_of
from repro.semiring.polynomial import Polynomial

#: Engines a session can batch over.
SESSION_ENGINES = ("sharded", "hashjoin")


class QuerySession:
    """Batched evaluation against one (versioned) annotated database.

    >>> db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "c")]})
    >>> from repro.config import EngineConfig
    >>> from repro.query.parser import parse_query
    >>> chain = parse_query("ans(x, z) :- R(x, y), R(y, z)")
    >>> ends = parse_query("ans(x) :- R(x, y)")
    >>> config = EngineConfig(engine="sharded", shards=2, workers=2,
    ...                       mode="thread")
    >>> with QuerySession(db, config) as session:
    ...     results = session.evaluate_batch([chain, ends, chain])
    >>> [sorted(map(str, r.values())) for r in results]
    [['s1*s2'], ['s1', 's2'], ['s1*s2']]
    """

    def __init__(
        self,
        db: AnnotatedDatabase,
        config: Optional[EngineConfig] = None,
        engine: Optional[str] = None,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        broadcast_threshold: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
    ):  # noqa: D107
        config = resolve_engine_config(
            config,
            "QuerySession",
            default=EngineConfig(engine="sharded"),
            engine=engine,
            shards=shards,
            workers=workers,
            mode=mode,
            broadcast_threshold=broadcast_threshold,
        )
        if config.engine not in SESSION_ENGINES:
            raise EvaluationError(
                "unknown session engine {!r}; supported: {}".format(
                    config.engine, ", ".join(SESSION_ENGINES)
                )
            )
        self._db = db
        self._config = config
        self._engine = config.engine
        # Pinned for the session's lifetime: every interned annotation
        # this session memoizes decodes against this very table, no
        # matter how often the process-wide shared table swaps.
        self._intern = shared_intern()
        self._cache = PlanCache() if plan_cache is None else plan_cache
        self._executor: Optional[ShardedExecutor] = None
        if config.engine == "sharded":
            self._executor = ShardedExecutor(
                db,
                shards=config.shards,
                workers=config.workers,
                mode=config.mode,
                broadcast_threshold=config.broadcast_threshold,
                columnar=config.columnar,
            )
        self._version = db.version()
        # Reentrant so a writer can bundle a database mutation with the
        # refresh it triggers while queries stay out; see :attr:`lock`.
        self._lock = threading.RLock()
        self._adjunct_memo: Dict[ConjunctiveQuery, Dict] = {}
        self._aggregate_memo: Dict[AggregateQuery, Dict] = {}
        self._queries_served = 0
        self._memo_hits = 0
        self._refreshes = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The session's evaluation engine (``sharded`` or ``hashjoin``)."""
        return self._engine

    @property
    def config(self) -> EngineConfig:
        """The resolved :class:`~repro.config.EngineConfig` in effect."""
        return self._config

    @property
    def intern_table(self) -> InternTable:
        """The intern table pinned at construction."""
        return self._intern

    @property
    def plan_cache(self) -> PlanCache:
        """The session-wide plan cache."""
        return self._cache

    @property
    def executor(self) -> Optional[ShardedExecutor]:
        """The warm sharded executor (``None`` for hashjoin sessions)."""
        return self._executor

    @property
    def lock(self) -> "threading.RLock":
        """The session's reentrant evaluation lock.

        :meth:`run_batch` acquires it around every evaluation;
        concurrent *writers* (the serving tier's ``/update`` path)
        acquire it around database mutations so no evaluation observes
        a half-applied batch.  Single-threaded callers never need it.
        """
        return self._lock

    def db_version(self) -> int:
        """The database's current version counter (a cheap probe).

        The serving tier keys its result cache on this: reading it does
        not synchronize with in-flight evaluations, which is fine —
        cache keys are validated against the version an evaluation
        actually ran at (see :meth:`run_batch`).
        """
        return self._db.version()

    def run_batch(self, queries: Sequence[AnyQuery]) -> Tuple[List, int]:
        """Lock-guarded :meth:`evaluate_batch` for concurrent callers.

        Returns ``(results, version)`` where ``version`` is the
        database version the batch actually evaluated at — under
        concurrency an update may land between a caller's version probe
        and the evaluation, and the caller must not file the results
        under the stale version.
        """
        with self._lock:
            results = self.evaluate_batch(queries)
            return results, self._version

    def refresh(self) -> None:
        """Drop memoized results and re-sync with the database.

        Called automatically when an evaluation notices a new database
        version; call it explicitly to force re-execution (benchmarks
        timing steady-state evaluation do).  The shard partitioning is
        updated from the change log — warm, not rebuilt — and the plan
        cache and pinned intern table survive untouched.
        """
        self._adjunct_memo.clear()
        self._aggregate_memo.clear()
        if self._executor is not None:
            self._executor.refresh()
        self._version = self._db.version()
        self._refreshes += 1

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self._closed = True
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _sync(self) -> None:
        if self._closed:
            raise EvaluationError("query session is closed")
        if self._db.version() != self._version:
            self.refresh()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, query: AnyQuery) -> Dict[HeadTuple, Polynomial]:
        """Evaluate one CQ≠/UCQ≠ (see :meth:`evaluate_batch`)."""
        if isinstance(query, AggregateQuery):
            raise EvaluationError(
                "aggregate queries produce semimodule annotations; use "
                "QuerySession.evaluate_aggregate"
            )
        return self.evaluate_batch([query])[0]

    def evaluate_aggregate(self, query: AggregateQuery):
        """Evaluate one aggregate query (see :meth:`evaluate_batch`)."""
        if not isinstance(query, AggregateQuery):
            raise EvaluationError(
                "evaluate_aggregate expects an aggregate query; use "
                "QuerySession.evaluate for plain UCQ"
            )
        return self.evaluate_batch([query])[0]

    def evaluate_batch(self, queries: Sequence[AnyQuery]) -> List:
        """Evaluate many queries, amortizing work across the batch.

        Queries may mix plain UCQ≠ (returning polynomial tables) and
        aggregate queries (returning semimodule tables); results align
        with the input order.  The batch is grouped by cached plan:
        each distinct conjunctive adjunct is evaluated once — its
        shards run once — and every query sharing it reuses the
        interned annotations, decoded through the pinned intern table.
        """
        self._sync()
        queries = list(queries)
        self._queries_served += len(queries)

        plain_adjuncts: List[ConjunctiveQuery] = []
        for query in queries:
            if not isinstance(query, AggregateQuery):
                plain_adjuncts.extend(adjuncts_of(query))
        missing = [
            adjunct
            for adjunct in dict.fromkeys(plain_adjuncts)
            if adjunct not in self._adjunct_memo
        ]
        self._memo_hits += len(set(plain_adjuncts) - set(missing))
        if missing:
            self._adjunct_memo.update(self._evaluate_adjuncts(missing))

        results: List = []
        for query in queries:
            if isinstance(query, AggregateQuery):
                results.append(self._aggregate_result(query))
            else:
                adjuncts = list(adjuncts_of(query))
                with current_tracer().span("merge") as span:
                    decoded = decode_polynomials(
                        [self._adjunct_memo[a] for a in adjuncts],
                        self._intern,
                    )
                    span.set(adjuncts=len(adjuncts), tuples=len(decoded))
                    results.append(decoded)
        return results

    def _evaluate_adjuncts(self, adjuncts: List[ConjunctiveQuery]) -> Dict:
        if self._executor is not None:
            return self._executor.evaluate_adjuncts(
                adjuncts, self._intern, self._cache
            )
        executed: Dict = {}
        for adjunct in adjuncts:
            plan = plan_for(adjunct, self._db, self._cache)
            with current_tracer().span("join", engine="hashjoin"):
                executed[adjunct] = _execute(plan, self._db, self._intern)
        return executed

    def _aggregate_result(self, query: AggregateQuery):
        memoized = self._aggregate_memo.get(query)
        if memoized is not None:
            self._memo_hits += 1
            return memoized
        if self._executor is not None:
            result = self._executor.evaluate_aggregate(query, self._cache)
        else:
            from repro.engine.hashjoin import evaluate_aggregate_hashjoin

            result = evaluate_aggregate_hashjoin(
                query, self._db, self._cache, self._intern
            )
        self._aggregate_memo[query] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Union[int, Dict[str, int]]]:
        """Counters for tests, benchmarks and tuning."""
        counters: Dict[str, Union[int, Dict[str, int]]] = {
            "queries": self._queries_served,
            "memo_hits": self._memo_hits,
            "memoized_adjuncts": len(self._adjunct_memo),
            "memoized_aggregates": len(self._aggregate_memo),
            "refreshes": self._refreshes,
            "plan_cache": self._cache.stats(),
        }
        if self._executor is not None:
            counters["sharding"] = self._executor.sharded_db.stats()
        return counters

    def __repr__(self) -> str:
        return "<QuerySession engine={} {} queries, {} memo hits>".format(
            self._engine, self._queries_served, self._memo_hits
        )

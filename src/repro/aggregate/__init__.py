"""Provenance for aggregate queries: the semimodule annotation layer.

The paper's headline construction, end to end:

* :mod:`repro.query.aggregate` — ``GROUP BY`` heads with
  ``sum``/``count``/``min``/``max`` slots (parsed from the rule syntax);
* :mod:`repro.algebra.monoid` / :mod:`repro.algebra.semimodule` — the
  aggregation monoids ``M`` and the tensor product ``N[X] ⊗ M`` whose
  elements annotate aggregated values symbolically;
* :mod:`repro.aggregate.result` — aggregated K-relations
  (group → existence provenance + semimodule values);
* :mod:`repro.aggregate.evaluate` — in-memory evaluation (the SQLite
  engine's counterpart lives on
  :meth:`repro.db.sqlite_backend.SQLiteDatabase.evaluate_aggregate`);
* the application hooks — deletion, trust and probability read concrete
  aggregates off the cached annotation with no re-evaluation.

Quickstart::

    from repro import AnnotatedDatabase, parse_query
    from repro.aggregate import evaluate_aggregate, aggregate_after_deletion

    db = AnnotatedDatabase.from_rows({"S": [("nyc", 5), ("nyc", 2)]})
    q = parse_query("sales(city, sum(cost)) :- S(city, cost)")
    row = evaluate_aggregate(q, db)[("nyc",)]
    print(row)                                    # ⟨s1 + s2⟩ sum[s2⊗2 + s1⊗5]
    print(aggregate_after_deletion(row.aggregates[0], ["s1"]))   # 2
"""

from repro.aggregate.evaluate import aggregate_table, evaluate_aggregate
from repro.aggregate.result import AggregateAccumulator, AggregateResult
from repro.algebra.monoid import (
    ABSENT,
    MONOIDS,
    AggregationMonoid,
    CountMonoid,
    MaxMonoid,
    MinMonoid,
    SumMonoid,
    monoid_for,
)
from repro.algebra.semimodule import SemimoduleElement
from repro.apps.deletion import (
    aggregate_after_deletion,
    delete_from_aggregate,
    propagate_deletion_aggregates,
)
from repro.apps.probability import aggregate_distribution, expected_aggregate
from repro.apps.trust import trusted_aggregate_value
from repro.query.aggregate import (
    AGGREGATE_OPS,
    AggregateQuery,
    AggregateRule,
    AggregateTerm,
    is_aggregate,
)

__all__ = [
    # query layer
    "AGGREGATE_OPS",
    "AggregateTerm",
    "AggregateRule",
    "AggregateQuery",
    "is_aggregate",
    # algebra
    "ABSENT",
    "MONOIDS",
    "AggregationMonoid",
    "SumMonoid",
    "CountMonoid",
    "MinMonoid",
    "MaxMonoid",
    "monoid_for",
    "SemimoduleElement",
    # evaluation
    "AggregateResult",
    "AggregateAccumulator",
    "evaluate_aggregate",
    "aggregate_table",
    # applications
    "delete_from_aggregate",
    "aggregate_after_deletion",
    "propagate_deletion_aggregates",
    "trusted_aggregate_value",
    "expected_aggregate",
    "aggregate_distribution",
]

"""In-memory evaluation of aggregate queries to semimodule annotations.

Lifts the backtracking engine (Def. 2.6 assignments) to aggregation:
every assignment of a rule's inner CQ contributes one simple tensor
``monomial ⊗ value`` to its group, and the group's existence provenance
collects the same monomials — so specializing the annotated result
under any valuation agrees with evaluating the plain aggregate on the
specialized database (the property tests assert exactly this).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple, Union

from repro.aggregate.result import AggregateAccumulator, AggregateResult
from repro.algebra.monoid import monoid_for
from repro.config import EngineConfig, resolve_engine_config
from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import assignments
from repro.errors import EvaluationError
from repro.query.aggregate import AggregateQuery
from repro.semiring.polynomial import Polynomial

Row = Tuple[Hashable, ...]


def evaluate_aggregate(
    query: AggregateQuery,
    db: AnnotatedDatabase,
    config: Union[EngineConfig, str, None] = None,
    engine: Optional[str] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
) -> Dict[Row, AggregateResult]:
    """Evaluate an aggregate query, returning ``{group: result}``.

    ``config`` is an :class:`~repro.config.EngineConfig` (or a bare
    engine name); the ``engine=``/``shards=``/``workers=`` keywords are
    deprecated shims over it.  The default ``hashjoin`` engine computes
    each rule's contributions set-at-a-time
    (:mod:`repro.engine.hashjoin`); ``backtrack`` enumerates
    assignments one at a time; ``sharded`` splits each rule's hash-join
    plan across shards and merges the per-shard accumulator states
    through the semimodule layer (:mod:`repro.engine.sharded`).  All
    fold through the shared accumulator shape and produce
    tensor-identical results.

    >>> from repro.query.parser import parse_query
    >>> db = AnnotatedDatabase.from_rows({"S": [("nyc", 5), ("nyc", 2)]})
    >>> q = parse_query("sales(city, sum(cost)) :- S(city, cost)")
    >>> print(evaluate_aggregate(q, db)[("nyc",)])
    ⟨s1 + s2⟩ sum[s2⊗2 + s1⊗5]
    """
    config = resolve_engine_config(
        config,
        "evaluate_aggregate",
        engine=engine,
        shards=shards,
        workers=workers,
    )
    if config.engine == "hashjoin":
        from repro.engine.hashjoin import evaluate_aggregate_hashjoin

        return evaluate_aggregate_hashjoin(query, db)
    if config.engine == "sharded":
        from repro.engine.sharded import evaluate_aggregate_sharded

        return evaluate_aggregate_sharded(
            query,
            db,
            shards=config.shards,
            workers=config.workers,
            mode=config.mode,
            broadcast_threshold=config.broadcast_threshold,
            columnar=config.columnar,
        )
    if config.engine != "backtrack":
        raise EvaluationError(
            "unknown aggregate engine {!r}; supported: hashjoin, "
            "backtrack, sharded".format(config.engine)
        )
    accumulator = AggregateAccumulator(query)
    for rule in query.rules:
        for assignment in assignments(rule.inner, db):
            accumulator.add(
                rule,
                assignment.head_tuple(),
                Polynomial({assignment.monomial(db): 1}),
            )
    return accumulator.results()


def aggregate_table(
    query: AggregateQuery, db: AnnotatedDatabase
) -> Dict[Row, Tuple]:
    """Plain (annotation-free) aggregate evaluation, bag semantics.

    The direct reference implementation: fold monoid values straight
    from the assignments, no provenance recorded.  Used as the oracle
    the semimodule specialization is checked against.

    >>> from repro.query.parser import parse_query
    >>> db = AnnotatedDatabase.from_rows({"S": [("nyc", 5), ("nyc", 2)]})
    >>> q = parse_query("sales(city, sum(cost)) :- S(city, cost)")
    >>> aggregate_table(q, db)
    {('nyc',): (7,)}
    """
    monoids = tuple(monoid_for(op) for op in query.aggregate_ops)
    groups: Dict[Row, list] = {}
    for rule in query.rules:
        for assignment in assignments(rule.inner, db):
            group, contributions = rule.split_inner_head(
                assignment.head_tuple()
            )
            folded = groups.get(group)
            if folded is None:
                folded = [monoid.identity for monoid in monoids]
                groups[group] = folded
            for index, (monoid, value) in enumerate(
                zip(monoids, contributions)
            ):
                monoid.validate(value)
                folded[index] = monoid.combine(folded[index], value)
    return {group: tuple(values) for group, values in groups.items()}

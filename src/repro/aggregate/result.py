"""Aggregated K-relations: the result shape of aggregate queries.

An aggregate query maps each *group* (the tuple of grouping values) to
an :class:`AggregateResult` carrying

* ``provenance`` — the plain ``N[X]`` polynomial of the group's
  existence (one monomial per contributing assignment, exactly as for
  UCQ results), and
* ``aggregates`` — one :class:`~repro.algebra.semimodule.SemimoduleElement`
  per aggregate head slot, the symbolic value in ``N[X] ⊗ M``.

The :class:`AggregateAccumulator` folds per-assignment contributions
into this shape; both evaluation engines and the incremental registry
feed it, which is what keeps them in exact agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.algebra.monoid import AggregationMonoid, monoid_for
from repro.algebra.semimodule import SemimoduleElement
from repro.query.aggregate import AggregateQuery, AggregateRule
from repro.semiring.evaluate import Valuation, evaluate_polynomial
from repro.semiring.natural import NaturalSemiring
from repro.semiring.polynomial import Polynomial

_NAT = NaturalSemiring()

Row = Tuple[Hashable, ...]


@dataclass(frozen=True)
class AggregateResult:
    """One group's annotated aggregate row.

    >>> from repro.algebra.monoid import monoid_for
    >>> r = AggregateResult(
    ...     Polynomial.parse("s1 + s2"),
    ...     (SemimoduleElement(monoid_for("sum"),
    ...                        {3: Polynomial.parse("s1 + s2")}),),
    ... )
    >>> r.specialize({"s1": 1, "s2": 0})
    (3,)
    >>> r.specialize({"s1": 0, "s2": 0}) is None
    True
    """

    provenance: Polynomial
    aggregates: Tuple[SemimoduleElement, ...]

    def specialize(self, valuation: Valuation) -> Optional[Tuple]:
        """Concrete aggregate values under a valuation ``X → N``.

        Returns ``None`` when the group itself has no surviving
        derivation (its provenance evaluates to zero) — the group is
        absent from the specialized result, not present with identity
        values.
        """
        if evaluate_polynomial(self.provenance, _NAT, valuation) == 0:
            return None
        return tuple(
            element.specialize(valuation) for element in self.aggregates
        )

    def map_polynomials(self, transform) -> "AggregateResult":
        """Rewrite every annotation polynomial (renaming, expansion)."""
        return AggregateResult(
            transform(self.provenance),
            tuple(
                element.map_polynomials(transform)
                for element in self.aggregates
            ),
        )

    def support(self) -> frozenset:
        """All annotation symbols of the row (provenance side)."""
        symbols = set(self.provenance.support())
        for element in self.aggregates:
            symbols.update(element.support())
        return frozenset(symbols)

    def __str__(self) -> str:
        values = " ".join(str(element) for element in self.aggregates)
        return "⟨{}⟩ {}".format(self.provenance, values)


class AggregateAccumulator:
    """Folds per-assignment contributions into aggregated results.

    Feed it ``(rule, inner_head_tuple, annotation polynomial)`` triples —
    one per assignment of the rule's inner CQ (or one per inner output
    tuple with its whole delta polynomial, during incremental
    maintenance); :meth:`results` returns the aggregated K-relation.
    """

    def __init__(self, query: AggregateQuery):  # noqa: D107
        self._monoids: Tuple[AggregationMonoid, ...] = tuple(
            monoid_for(op) for op in query.aggregate_ops
        )
        self._provenance: Dict[Row, Polynomial] = {}
        self._elements: Dict[Row, list] = {}

    def add(
        self,
        rule: AggregateRule,
        inner_head: Sequence[Hashable],
        annotation: Polynomial,
    ) -> None:
        """Fold one contribution (or one delta of contributions) in."""
        group, contributions = rule.split_inner_head(inner_head)
        previous = self._provenance.get(group)
        self._provenance[group] = (
            annotation if previous is None else previous + annotation
        )
        elements = self._elements.get(group)
        if elements is None:
            elements = [
                SemimoduleElement.zero(monoid) for monoid in self._monoids
            ]
            self._elements[group] = elements
        for index, (monoid, value) in enumerate(
            zip(self._monoids, contributions)
        ):
            elements[index] = elements[index] + SemimoduleElement.tensor(
                annotation, value, monoid
            )

    def results(self) -> Dict[Row, AggregateResult]:
        """The accumulated aggregated K-relation."""
        return {
            group: AggregateResult(
                self._provenance[group], tuple(self._elements[group])
            )
            for group in self._provenance
        }


def merge_aggregate_results(
    partials: Sequence[Dict[Row, AggregateResult]],
) -> Dict[Row, AggregateResult]:
    """Union per-shard accumulator states into one aggregated K-relation.

    The shard-parallel engine folds each shard's contributions into a
    private :class:`AggregateAccumulator`; this merges the resulting
    states through the monoid/semimodule layer: group provenances add
    in ``N[X]`` and each aggregate slot adds in ``N[X] ⊗ M``.  Both
    additions are commutative and keep the value-grouped normal form
    canonical, so any shard order (and any split of contributions
    across shards) produces exactly the serial engines' tables.
    Compaction (:meth:`SemimoduleElement.condense`) stays on demand,
    after merging, as everywhere else.

    >>> from repro.query.parser import parse_query
    >>> query = parse_query("agg(sum(v)) :- S(x, v)")
    >>> rule = query.rules[0]
    >>> halves = []
    >>> for symbol, value in (("s1", 5), ("s2", 2)):
    ...     accumulator = AggregateAccumulator(query)
    ...     accumulator.add(rule, (value,), Polynomial.parse(symbol))
    ...     halves.append(accumulator.results())
    >>> print(merge_aggregate_results(halves)[()])
    ⟨s1 + s2⟩ sum[s2⊗2 + s1⊗5]
    """
    merged: Dict[Row, AggregateResult] = {}
    for partial in partials:
        for group, result in partial.items():
            previous = merged.get(group)
            if previous is None:
                merged[group] = result
            else:
                merged[group] = AggregateResult(
                    previous.provenance + result.provenance,
                    tuple(
                        a + b
                        for a, b in zip(previous.aggregates, result.aggregates)
                    ),
                )
    return merged

"""JSON-over-HTTP serving of provenance queries.

The serving tier fronts a long-lived
:class:`~repro.session.QuerySession` (and, when a view program is
given, a :class:`~repro.incremental.registry.ViewRegistry`) with one of
two interchangeable front ends behind
:func:`~repro.server.app.make_server`:

* :class:`~repro.server.aio.AsyncProvenanceServer` — the asyncio event
  loop tier (``server_mode="async"``): every connection is a suspended
  coroutine, deadlines bound every read, a pending-request gate sheds
  load with 503s, and large bodies stream chunked;
* :class:`~repro.server.app.ProvenanceServer` — the classic
  one-thread-per-connection :class:`http.server.ThreadingHTTPServer`
  fallback (``server_mode="threaded"``).

Shared underneath either:

* :class:`~repro.server.app.ServerState` — the state behind all
  requests: the session, the optional registry, and the version-keyed
  result cache;
* :class:`~repro.server.cache.ResultCache` /
  :class:`~repro.server.cache.AsyncResultCache` — results keyed by
  ``(canonical query text, db version, engine options)`` with LRU
  bounds and single-flight deduplication (events for threads, awaitable
  futures for the loop).

Responses are byte-identical across the two modes — the differential
suite asserts it.  The whole surface is additionally mounted under
``/v1/`` (legacy paths answer identically with a ``Deprecation``
header), and both tiers serve continuous queries via
:class:`~repro.server.subscriptions.SubscriptionHub`:
``POST /v1/subscribe`` + ``GET /v1/changefeed/<id>`` (SSE on the async
tier, long-poll on the threaded tier).
"""

from repro.server.app import (
    ProvenanceServer,
    ServerState,
    canonical_json,
    encode_results,
    make_server,
)
from repro.server.cache import AsyncResultCache, ResultCache
from repro.server.subscriptions import (
    ChangefeedEvent,
    Subscription,
    SubscriptionHub,
)

__all__ = [
    "AsyncProvenanceServer",
    "AsyncResultCache",
    "ChangefeedEvent",
    "ProvenanceServer",
    "ResultCache",
    "ServerState",
    "Subscription",
    "SubscriptionHub",
    "canonical_json",
    "encode_results",
    "make_server",
]


def __getattr__(name):
    # AsyncProvenanceServer is imported lazily: repro.server.aio imports
    # this package's modules, and eager import would cycle.
    if name == "AsyncProvenanceServer":
        from repro.server.aio import AsyncProvenanceServer

        return AsyncProvenanceServer
    raise AttributeError(name)

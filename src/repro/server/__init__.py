"""JSON-over-HTTP serving of provenance queries.

The serving tier fronts a long-lived
:class:`~repro.session.QuerySession` (and, when a view program is
given, a :class:`~repro.incremental.registry.ViewRegistry`) with a
stdlib :class:`http.server.ThreadingHTTPServer`:

* :class:`~repro.server.app.ServerState` — the shared state behind all
  request threads: the session, the optional registry, and the
  version-keyed :class:`~repro.server.cache.ResultCache`;
* :class:`~repro.server.cache.ResultCache` — results keyed by
  ``(canonical query text, db version, engine options)`` with LRU
  bounds and single-flight deduplication;
* :func:`~repro.server.app.make_server` — binds a
  :class:`~repro.server.app.ProvenanceServer` ready for
  ``serve_forever()`` (the CLI ``serve`` subcommand does exactly this).
"""

from repro.server.app import (
    ProvenanceServer,
    ServerState,
    canonical_json,
    encode_results,
    make_server,
)
from repro.server.cache import ResultCache

__all__ = [
    "ProvenanceServer",
    "ResultCache",
    "ServerState",
    "canonical_json",
    "encode_results",
    "make_server",
]

"""Continuous queries: the changefeed fan-out hub.

:class:`SubscriptionHub` turns the registry's per-apply
:class:`~repro.incremental.registry.MaintenanceReport` into pushed
changefeed events.  The serving tier registers :meth:`publish` as a
registry observer, so it runs under the session lock on every
``/update`` — reports arrive in version order with no gaps, which is
what makes the cursor contract below sound.

Design points:

* **encode once, fan out cheap** — each touched view's delta is
  serialized to one immutable :class:`ChangefeedEvent` (payload dict +
  canonical JSON bytes + SSE frame) shared by every subscriber's ring,
  so fan-out cost is an append per subscriber, not an encode;
* **bounded replay rings** — every subscription keeps its last
  ``ring_size`` events.  A consumer that resumes with a cursor still
  covered by the ring replays exactly the missed events; one that fell
  off the ring is told to ``reset`` (the serving tier then sends the
  full materialized table read under the session lock);
* **monotone cursors** — an event's cursor is the db version after the
  apply that produced it.  Versions are strictly increasing but not
  dense (every base *and* view mutation bumps the counter), so clients
  must treat cursors as opaque watermarks, never arithmetic;
* **two waiting disciplines** — the threaded tier long-polls via the
  hub's condition variable; the async tier parks a coroutine and
  registers a waker that trampolines into its event loop.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.io import changefeed_event_to_dict
from repro.server.app import canonical_json

#: Default bound on concurrently live subscriptions per server.
DEFAULT_MAX_SUBSCRIPTIONS = 1024

#: Default per-subscription replay ring length (events, not versions).
DEFAULT_RING_SIZE = 256


class SubscriptionError(ReproError):
    """A subscription-surface rejection with an HTTP status + code."""

    status = 400
    code = "bad_request"


class UnknownViewError(SubscriptionError):
    """Subscribing to a view the registry does not serve."""

    status = 404
    code = "unknown_view"


class UnknownSubscriptionError(SubscriptionError):
    """A changefeed request for a subscription id that does not exist."""

    status = 404
    code = "unknown_subscription"


class SubscriptionLimitError(SubscriptionError):
    """The server's ``max_subscriptions`` bound was reached."""

    status = 429
    code = "subscription_limit"


class ChangefeedEvent:
    """One immutable, pre-encoded changefeed event.

    Built once per (view, version) and shared across every
    subscriber's ring; ``body`` is the long-poll JSON line and ``sse``
    the Server-Sent-Events frame carrying the same bytes.
    """

    __slots__ = ("cursor", "view", "kind", "payload", "body")

    def __init__(self, cursor: int, view: str, kind: str, payload: dict):  # noqa: D107
        self.cursor = cursor
        self.view = view
        self.kind = kind
        self.payload = payload
        self.body = canonical_json(payload)

    def sse(self) -> bytes:
        """The event as one SSE frame (canonical JSON is one line)."""
        return b"event: %s\nid: %d\ndata: %s\n\n" % (
            self.kind.encode("ascii"),
            self.cursor,
            self.body.strip(),
        )

    def __repr__(self) -> str:
        return "<ChangefeedEvent {} {}@{}>".format(
            self.kind, self.view, self.cursor
        )


class Subscription:
    """One standing query: a view name plus a bounded replay ring.

    All mutation happens under the owning hub's lock.  ``base_cursor``
    is the watermark below which events have been evicted from the
    ring: a resume cursor ``c >= base_cursor`` replays exactly the
    events with cursor ``> c``; anything older needs a ``reset``.
    """

    __slots__ = (
        "id",
        "view",
        "aggregate",
        "created_cursor",
        "base_cursor",
        "last_cursor",
        "ring",
        "wakers",
    )

    def __init__(
        self, sub_id: str, view: str, aggregate: bool, cursor: int, ring_size: int
    ):  # noqa: D107
        self.id = sub_id
        self.view = view
        self.aggregate = aggregate
        self.created_cursor = cursor
        self.base_cursor = cursor
        self.last_cursor = cursor
        self.ring: deque = deque(maxlen=ring_size)
        self.wakers: List[Callable[[], None]] = []

    def describe(self) -> dict:
        """The JSON fragment ``/v1/subscribe`` and ``/stats`` expose."""
        return {
            "subscription": self.id,
            "view": self.view,
            "aggregate": self.aggregate,
            "cursor": self.last_cursor,
        }


class SubscriptionHub:
    """Thread-safe registry of subscriptions with encode-once fan-out."""

    def __init__(
        self,
        max_subscriptions: int = DEFAULT_MAX_SUBSCRIPTIONS,
        ring_size: int = DEFAULT_RING_SIZE,
        metrics=None,
    ):  # noqa: D107
        if max_subscriptions < 1:
            raise ValueError("max_subscriptions must be positive")
        if ring_size < 1:
            raise ValueError("ring_size must be positive")
        self.max_subscriptions = max_subscriptions
        self.ring_size = ring_size
        self._cond = threading.Condition()
        self._subscriptions: Dict[str, Subscription] = {}
        self._by_view: Dict[str, set] = {}
        self._serial = 0
        self._closed = False
        self._published = 0
        self._delivered = 0
        self._resets = 0
        self._evictions = 0
        if metrics is None:
            from repro.obs.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self._gauge = metrics.gauge(
            "repro_changefeed_subscriptions",
            "Live changefeed subscriptions",
        )
        self._fanout_latency = metrics.histogram(
            "repro_changefeed_fanout_seconds",
            "Time to encode one maintenance report and append it to "
            "every subscriber ring",
        )
        self._event_counter = metrics.counter(
            "repro_changefeed_events_total",
            "Changefeed events appended to subscriber rings, by kind",
            ("kind",),
        )
        self._eviction_counter = metrics.counter(
            "repro_changefeed_evictions_total",
            "Changefeed consumers dropped for not draining their stream",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def subscribe(self, view: str, aggregate: bool, cursor: int) -> Subscription:
        """Register one subscription on a maintained view."""
        with self._cond:
            if self._closed:
                raise SubscriptionError("the server is shutting down")
            if len(self._subscriptions) >= self.max_subscriptions:
                raise SubscriptionLimitError(
                    "subscription limit reached ({} live); raise "
                    "--max-subscriptions or drop one".format(
                        len(self._subscriptions)
                    )
                )
            self._serial += 1
            sub = Subscription(
                "sub-{:08d}".format(self._serial),
                view,
                aggregate,
                cursor,
                self.ring_size,
            )
            self._subscriptions[sub.id] = sub
            self._by_view.setdefault(view, set()).add(sub.id)
            self._gauge.set(len(self._subscriptions))
            return sub

    def unsubscribe(self, sub_id: str) -> bool:
        """Drop one subscription; ``False`` when it was not live."""
        with self._cond:
            sub = self._subscriptions.pop(sub_id, None)
            if sub is None:
                return False
            bucket = self._by_view.get(sub.view)
            if bucket is not None:
                bucket.discard(sub_id)
                if not bucket:
                    del self._by_view[sub.view]
            self._gauge.set(len(self._subscriptions))
            wakers = list(sub.wakers)
            sub.wakers.clear()
            self._cond.notify_all()
        for waker in wakers:
            waker()  # parked streams notice the subscription died
        return True

    def alive(self, sub: Subscription) -> bool:
        """Is ``sub`` still registered (not unsubscribed/evicted)?"""
        return sub.id in self._subscriptions

    def get(self, sub_id: str) -> Subscription:
        """Look one subscription up (:class:`UnknownSubscriptionError`)."""
        sub = self._subscriptions.get(sub_id)
        if sub is None:
            raise UnknownSubscriptionError(
                "no subscription {!r} (it may have been dropped)".format(
                    sub_id
                )
            )
        return sub

    def close(self) -> None:
        """Wake every waiter and refuse new subscriptions (idempotent)."""
        with self._cond:
            self._closed = True
            wakers = [
                waker
                for sub in self._subscriptions.values()
                for waker in sub.wakers
            ]
            self._cond.notify_all()
        for waker in wakers:
            waker()

    @property
    def closed(self) -> bool:
        """Has :meth:`close` run?"""
        return self._closed

    def __len__(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    # Fan-out (registered as a registry observer; runs under the
    # serving session lock, so reports arrive in version order)
    # ------------------------------------------------------------------
    def publish(self, version: int, report) -> None:
        """Encode one maintenance report and append it to every ring."""
        if not self._subscriptions:
            return
        started = perf_counter()
        appended = 0
        with self._cond:
            for view, change in report.changes.items():
                if change.is_empty():
                    continue
                targets = self._by_view.get(view)
                if not targets:
                    continue
                event: Optional[ChangefeedEvent] = None
                for sub_id in targets:
                    sub = self._subscriptions[sub_id]
                    if event is None:
                        # Encode once per (view, version), share across
                        # every subscriber ring.
                        event = ChangefeedEvent(
                            version,
                            view,
                            "delta",
                            changefeed_event_to_dict(
                                version, view, sub.aggregate, change=change
                            ),
                        )
                    if len(sub.ring) == sub.ring.maxlen:
                        # The deque is about to evict its oldest event:
                        # move the replay watermark past it first.
                        sub.base_cursor = sub.ring[0].cursor
                    sub.ring.append(event)
                    sub.last_cursor = version
                    appended += 1
            if appended:
                self._published += 1
                self._event_counter.inc(appended, kind="delta")
                wakers = [
                    waker
                    for sub in self._subscriptions.values()
                    for waker in sub.wakers
                ]
                self._cond.notify_all()
        if appended:
            for waker in wakers:
                waker()
            self._fanout_latency.observe(perf_counter() - started)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def events_after(
        self, sub: Subscription, cursor: int
    ) -> Tuple[List[ChangefeedEvent], bool]:
        """Ring events past ``cursor``: ``(events, needs_reset)``.

        ``needs_reset`` means the ring no longer covers ``cursor`` —
        the consumer must take a full snapshot (the serving tier builds
        the ``reset`` event) before following deltas again.
        """
        with self._cond:
            if cursor < sub.base_cursor:
                return [], True
            return [e for e in sub.ring if e.cursor > cursor], False

    def wait_events(
        self, sub: Subscription, cursor: int, timeout: float
    ) -> Tuple[List[ChangefeedEvent], bool]:
        """Block up to ``timeout`` seconds for events past ``cursor``.

        The threaded tier's long-poll primitive.  Returns as soon as
        the ring holds a qualifying event, the cursor falls off the
        ring, the subscription dies, or the hub closes — whichever
        comes first (an expired timeout returns ``([], False)``).
        """

        def ready() -> bool:
            return (
                self._closed
                or sub.id not in self._subscriptions
                or cursor < sub.base_cursor
                or (bool(sub.ring) and sub.ring[-1].cursor > cursor)
            )

        with self._cond:
            self._cond.wait_for(ready, timeout=timeout)
            if cursor < sub.base_cursor:
                return [], True
            return [e for e in sub.ring if e.cursor > cursor], False

    def add_waker(self, sub: Subscription, waker: Callable[[], None]) -> None:
        """Attach a wake callback fired on publish/unsubscribe/close.

        The async tier's parked SSE coroutines register a
        ``call_soon_threadsafe`` trampoline here so an update on a
        handler thread wakes the right event loop without polling.
        """
        with self._cond:
            sub.wakers.append(waker)

    def remove_waker(self, sub: Subscription, waker: Callable[[], None]) -> None:
        """Detach a wake callback (missing ones ignored)."""
        with self._cond:
            try:
                sub.wakers.remove(waker)
            except ValueError:
                pass

    def record_delivered(self, count: int) -> None:
        """Count events actually written to a consumer."""
        with self._cond:
            self._delivered += count

    def record_reset(self) -> None:
        """Count one reset event sent to a lagging consumer."""
        with self._cond:
            self._resets += 1
        self._event_counter.inc(kind="reset")

    def record_eviction(self) -> None:
        """Count one consumer dropped for not draining its stream."""
        with self._cond:
            self._evictions += 1
        self._eviction_counter.inc()

    def stats(self) -> dict:
        """Cheap counters for ``/stats``."""
        with self._cond:
            return {
                "active": len(self._subscriptions),
                "max": self.max_subscriptions,
                "ring_size": self.ring_size,
                "published_batches": self._published,
                "delivered_events": self._delivered,
                "resets": self._resets,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:
        return "<SubscriptionHub {}/{} subscriptions>".format(
            len(self._subscriptions), self.max_subscriptions
        )

"""The asyncio serving tier: one event loop, 10k+ connections.

:class:`AsyncProvenanceServer` serves the exact endpoint surface of the
threaded :class:`~repro.server.app.ProvenanceServer` — same routes,
same error contract, byte-identical bodies (the differential suite
asserts it) — but holds every open connection as one suspended
coroutine instead of one blocked thread:

* **accept/parse** is non-blocking HTTP/1.1 with keep-alive on asyncio
  streams, with idle/header/body deadlines so a stalled client costs a
  timer, never a worker;
* **the result cache** is the loop-confined
  :class:`~repro.server.cache.AsyncResultCache`: a miss parks every
  concurrent duplicate on one :class:`asyncio.Future` while a single
  leader computes;
* **engine work** — the blocking :meth:`ServerState.compute_query_entry`
  /`compute_batch_entries`/`apply_update`/`read_view` calls, which take
  the session lock and drive the sharded pool — is dispatched off-loop
  via ``run_in_executor`` with a copied :mod:`contextvars` context, so
  tracing spans and cache-outcome reporting behave exactly as on the
  threaded tier;
* **backpressure** is a bounded pending-request gate: when
  ``max_pending`` engine-bound requests are already admitted, new ones
  get an immediate ``503`` with ``Retry-After`` (``/stats`` and
  ``/metrics`` stay exempt so operators can always look);
* **large bodies** (big provenance polynomials) stream out chunked,
  with a ``drain()`` await between chunks so one slow reader never
  buffers unboundedly.

The blocking facade matches socketserver's — ``server_address`` is
available right after construction, ``serve_forever()`` blocks,
``shutdown()`` is thread-safe and waits for the loop to exit, and
``close()`` releases everything — so the CLI and tests drive either
tier through the same five calls.
"""

from __future__ import annotations

import asyncio
import contextvars
import logging
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from email.utils import formatdate
from functools import partial
from http.client import responses
from time import perf_counter
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import ReproError
from repro.obs.metrics import EXPOSITION_CONTENT_TYPE
from repro.obs.trace import tracing
from repro.server.app import DEFAULT_REQUEST_TIMEOUT, ServerState, canonical_json
from repro.server.cache import AsyncResultCache, last_outcome, reset_outcome
from repro.server.handlers import (
    _GET_PATHS,
    _POST_PATHS,
    MAX_BODY_BYTES,
    _flag,
    endpoint_label,
    error_body,
    parse_json_body,
    split_api_version,
)
from repro.server.subscriptions import SubscriptionError

#: Keep-alive idle deadline (seconds): how long a connection may sit
#: between requests before the server closes it.
DEFAULT_IDLE_TIMEOUT = 60.0

#: Engine-bound requests admitted concurrently before 503s start.
DEFAULT_MAX_PENDING = 256

#: Response bodies at least this large are streamed chunked.
DEFAULT_STREAM_THRESHOLD = 1 << 20

#: How long graceful shutdown waits for in-flight requests to finish.
DEFAULT_DRAIN_TIMEOUT = 5.0

#: Idle SSE streams emit a comment frame this often: it keeps
#: intermediaries from timing the stream out and doubles as a
#: dead-client probe (the drain after it notices a vanished reader).
SSE_HEARTBEAT = 15.0

#: Write-buffer high-water mark while streaming SSE frames.  Kept small
#: on purpose: a subscriber that stops reading makes ``drain()`` block
#: almost immediately, so the eviction deadline (``request_timeout``)
#: measures the *client's* sloth, not how long it takes to fill a
#: multi-megabyte buffer.
_SSE_WINDOW = 64 * 1024

_MAX_LINE = 65536
_MAX_HEADERS = 100
_CHUNK = 256 * 1024

#: Write-buffer high-water mark while streaming a chunked body.  Against
#: asyncio's default 64 KiB limit every chunk write would block until
#: the client drained the buffer to 16 KiB, turning the stream into
#: per-chunk lockstep (~10x slower on a fast reader); 2 MiB keeps a
#: fast reader at memory speed while still bounding what one slow
#: reader can pin.
_STREAM_WINDOW = 2 << 20

_LOGGER = logging.getLogger("repro.server")


class _ProtocolError(Exception):
    """An HTTP-level rejection: status, message, and always-close."""

    def __init__(self, status: int, message: str):  # noqa: D107
        super().__init__(message)
        self.status = status
        self.message = message


class _Backpressure(Exception):
    """Raised when the bounded engine-work queue is full (→ 503)."""


class _Request:
    """One parsed request head (+ body, filled in by dispatch).

    ``path`` is the *effective* path — the ``/v1`` mount already
    stripped (``v1`` records whether it was present, ``raw_path`` what
    the client sent) — so routing and metrics labels are shared
    verbatim with the threaded tier.
    """

    __slots__ = (
        "method",
        "path",
        "raw_path",
        "v1",
        "query_string",
        "headers",
        "version_11",
        "close",
    )

    def __init__(self, method, path, query_string, headers, version_11, close):  # noqa: D107
        self.method = method
        self.raw_path = path
        self.v1, self.path = split_api_version(path)
        self.query_string = query_string
        self.headers = headers
        self.version_11 = version_11
        self.close = close


class _ConnFlags:
    """Per-connection drain bookkeeping: is a request mid-flight?"""

    __slots__ = ("busy",)

    def __init__(self):  # noqa: D107
        self.busy = False


class AsyncProvenanceServer:
    """An asyncio HTTP front end over one :class:`ServerState`.

    Construction binds the listening socket synchronously (``port=0``
    picks a free port, ``server_address`` is immediately readable);
    the event loop itself is created inside :meth:`serve_forever`, so
    the caller chooses the serving thread exactly as with the threaded
    server.
    """

    def __init__(
        self,
        address,
        state: ServerState,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        max_pending: int = DEFAULT_MAX_PENDING,
        stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        executor_workers: Optional[int] = None,
    ):  # noqa: D107
        self.state = state
        self._request_timeout = request_timeout
        self._idle_timeout = idle_timeout
        self._max_pending = max_pending
        self._stream_threshold = stream_threshold
        self._drain_timeout = drain_timeout
        self._socket = socket.create_server(address, backlog=1024)
        self.server_address = self._socket.getsockname()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers or min(32, (os.cpu_count() or 1) + 4),
            thread_name_prefix="repro-aio",
        )
        # The loop-confined cache replaces the state's threaded one so
        # /stats reports the cache actually serving.
        self._cache = AsyncResultCache(state.cache.capacity)
        state.attach_cache(self._cache)
        self._connections: Dict[object, _ConnFlags] = {}
        self._pending = 0
        self._stopping = False
        self._closed = False
        self._loop = None
        self._stop_event: Optional[asyncio.Event] = None
        self._aio_server = None
        self._shutdown_requested = threading.Event()
        # Set means "no loop is running": shutdown() before (or after)
        # serve_forever() returns immediately instead of hanging.
        self._done = threading.Event()
        self._done.set()
        self._pending_gauge = state.metrics.gauge(
            "repro_server_pending_requests",
            "Engine-bound requests admitted past the backpressure gate",
        )
        self._conn_gauge = state.metrics.gauge(
            "repro_server_open_connections",
            "Open client connections on the async tier",
        )
        self._rejected = state.metrics.counter(
            "repro_server_backpressure_total",
            "Requests rejected with 503 because max_pending was reached",
        )

    # ------------------------------------------------------------------
    # The socketserver-shaped blocking facade
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        self._done.clear()
        loop = asyncio.new_event_loop()
        try:
            loop.run_until_complete(self._main())
        except KeyboardInterrupt:
            # Foreground CLI serving: cancel whatever is still running
            # so the loop can close cleanly, then let the CLI's handler
            # run close().
            self._stopping = True
            tasks = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            raise
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()
                self._loop = None
                self._stop_event = None
                self._done.set()

    def shutdown(self) -> None:
        """Stop serving and wait for the loop to drain and exit.

        Thread-safe, like ``socketserver.BaseServer.shutdown``: new
        connections stop being accepted, idle keep-alive connections
        are closed, in-flight requests get ``drain_timeout`` seconds to
        finish, and then :meth:`serve_forever` returns.
        """
        self._shutdown_requested.set()
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # loop already closed
                pass
        self._done.wait()

    def close(self) -> None:
        """Release the socket, executor and serving state (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._done.is_set():
            self.shutdown()
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._executor.shutdown(wait=True)
        self.state.close()

    def __enter__(self) -> "AsyncProvenanceServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<AsyncProvenanceServer on {}:{}>".format(*self.server_address[:2])

    # ------------------------------------------------------------------
    # Event-loop internals
    # ------------------------------------------------------------------
    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        # Created here, not in __init__: asyncio.Event binds the running
        # loop at creation time on Python 3.9.
        self._stop_event = asyncio.Event()
        self._loop = loop
        if self._shutdown_requested.is_set():
            return
        server = await asyncio.start_server(
            self._handle_connection, sock=self._socket
        )
        self._aio_server = server
        try:
            await self._stop_event.wait()
        finally:
            self._stopping = True
            server.close()
            await self._drain()
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - defensive
                pass

    async def _drain(self) -> None:
        """Graceful shutdown: drop idle connections, wait out busy ones."""
        connections = dict(self._connections)
        for task, flags in connections.items():
            if not flags.busy:
                task.cancel()
        pending = [task for task in connections if not task.done()]
        if pending:
            _done, pending = await asyncio.wait(
                pending, timeout=self._drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)

    async def _handle_connection(self, reader, writer) -> None:
        if self._stopping:
            writer.close()
            return
        task = asyncio.current_task()
        flags = _ConnFlags()
        self._connections[task] = flags
        self._conn_gauge.set(len(self._connections))
        try:
            while not self._stopping:
                try:
                    request = await self._read_head(reader)
                except _ProtocolError as error:
                    # Pre-request protocol garbage: respond (uncounted,
                    # matching the threaded tier's send_error paths) and
                    # drop the connection.
                    await self._write_response(
                        writer,
                        None,
                        error.status,
                        canonical_json({"error": error.message}),
                        "application/json",
                        {},
                        True,
                    )
                    break
                if request is None:
                    break  # EOF or idle keep-alive expiry
                flags.busy = True
                try:
                    keep = await self._dispatch(reader, writer, request)
                finally:
                    flags.busy = False
                if not keep:
                    break
        except asyncio.CancelledError:
            pass  # shutdown cancelled this connection
        except (ConnectionError, OSError):
            pass  # client vanished mid-read/write
        finally:
            self._connections.pop(task, None)
            self._conn_gauge.set(len(self._connections))
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_head(self, reader) -> Optional[_Request]:
        """Read and parse one request line + headers (idle deadline).

        ``None`` means "close quietly": EOF, the keep-alive idle
        deadline expired, or the client vanished mid-headers.
        """
        try:
            line = await asyncio.wait_for(reader.readline(), self._idle_timeout)
        except (asyncio.TimeoutError, ConnectionError):
            return None
        if not line:
            return None
        if len(line) > _MAX_LINE:
            raise _ProtocolError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _ProtocolError(
                400, "malformed request line {!r}".format(line.decode("latin-1"))
            )
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise _ProtocolError(
                505, "unsupported protocol version {!r}".format(version)
            )
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                line = await asyncio.wait_for(
                    reader.readline(), self._request_timeout
                )
            except asyncio.TimeoutError:
                raise _ProtocolError(408, "timed out reading request headers")
            except ConnectionError:
                return None
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return None  # EOF mid-headers
            if len(line) > _MAX_LINE:
                raise _ProtocolError(431, "header line too long")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _ProtocolError(
                    400, "malformed header line {!r}".format(line.decode("latin-1"))
                )
            headers[name.strip().lower()] = value.strip()
        else:
            raise _ProtocolError(431, "too many request headers")
        split = urlsplit(target)
        version_11 = version == "HTTP/1.1"
        connection = headers.get("connection", "").lower()
        if "close" in connection:
            close = True
        elif version_11:
            close = False
        else:
            close = "keep-alive" not in connection
        return _Request(method, split.path, split.query, headers, version_11, close)

    async def _read_body(self, reader, request: _Request) -> bytes:
        """Drain the request body (body deadline; same 400s as threaded)."""
        header = request.headers.get("content-length") or "0"
        try:
            length = int(header)
            if length < 0:
                raise ValueError(header)
        except ValueError:
            raise _ProtocolError(
                400, "invalid Content-Length header {!r}".format(header)
            )
        if length > MAX_BODY_BYTES:
            raise _ProtocolError(
                400, "request body exceeds {} bytes".format(MAX_BODY_BYTES)
            )
        if length == 0:
            return b""
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), self._request_timeout
            )
        except asyncio.TimeoutError:
            # The promised body never (fully) arrived: the liveness fix
            # the threaded tier mirrors with its socket timeout.
            raise _ProtocolError(408, "timed out reading the request body")

    async def _dispatch(self, reader, writer, request: _Request) -> bool:
        """Run one request end to end; ``True`` to keep the connection.

        Accounting mirrors the threaded handler: ``request_started`` /
        ``request_finished`` always pair (the in-flight counter cannot
        leak past a crashing route), the metrics observation lands
        before the response bytes go out, and body-level protocol
        errors are counted while request-line garbage is not.
        """
        state = self.state
        started = perf_counter()
        reset_outcome()
        close = request.close
        state.request_started()
        try:
            try:
                raw = await self._read_body(reader, request)
                if (
                    request.method == "GET"
                    and request.v1
                    and request.path.startswith("/changefeed/")
                ):
                    # The SSE stream writes its own head and frames; it
                    # never fits the (status, body) tuple shape below.
                    # Resolution errors (unknown subscription, bad
                    # cursor, no registry) raise out of _resolve and
                    # land in the ordinary error machinery.
                    subscription, cursor = self._resolve_changefeed(request)
                    return await self._stream_changefeed(
                        writer, request, started, subscription, cursor
                    )
                status, body, ctype, extra, must_close = await self._route(
                    request, raw
                )
            except _ProtocolError as error:
                # The body is undrained in every _ProtocolError case, so
                # the socket must never be reused.
                status, body, ctype, extra, must_close = (
                    error.status,
                    error_body(error.status, error.message, request.v1),
                    "application/json",
                    {},
                    True,
                )
            except _Backpressure:
                # The body is drained, so load shedding keeps the
                # connection alive; Retry-After tells well-behaved
                # clients when to come back.
                self._rejected.inc()
                status, body, ctype, extra, must_close = (
                    503,
                    error_body(
                        503,
                        "server is at capacity; retry shortly",
                        request.v1,
                    ),
                    "application/json",
                    {"Retry-After": "1"},
                    False,
                )
            except SubscriptionError as error:
                status, body, ctype, extra, must_close = (
                    error.status,
                    error_body(
                        error.status, str(error), request.v1, error.code
                    ),
                    "application/json",
                    {},
                    False,
                )
            except ReproError as error:
                status, body, ctype, extra, must_close = (
                    400,
                    error_body(400, str(error), request.v1),
                    "application/json",
                    {},
                    False,
                )
            except asyncio.IncompleteReadError:
                return False  # client hung up mid-body
            except ConnectionError:
                return False
            except Exception as error:  # pragma: no cover - defensive
                status, body, ctype, extra, must_close = (
                    500,
                    error_body(
                        500,
                        "{}: {}".format(type(error).__name__, error),
                        request.v1,
                    ),
                    "application/json",
                    {},
                    False,
                )
            close = close or must_close
            if not request.v1:
                extra = dict(extra)
                extra["Deprecation"] = "true"
                extra["Link"] = '</v1{}>; rel="successor-version"'.format(
                    request.path
                )
            # Observe BEFORE the body bytes go out: a client that reads
            # the response and immediately scrapes /metrics must find
            # this request already counted.
            duration = perf_counter() - started
            state.observe_request(
                endpoint_label(request.path), request.method, status, duration
            )
            outcome = last_outcome()
            _LOGGER.info(
                "%s %s -> %d %.2fms%s",
                request.method,
                request.raw_path,
                status,
                duration * 1e3,
                " cache={}".format(outcome) if outcome else "",
            )
            sent = await self._write_response(
                writer, request, status, body, ctype, extra, close
            )
            return sent and not close
        finally:
            state.request_finished()

    async def _write_response(
        self, writer, request, status, body, content_type, extra, close
    ) -> bool:
        version_11 = request.version_11 if request is not None else True
        chunked = version_11 and len(body) >= self._stream_threshold
        head = [
            "HTTP/1.1 {} {}".format(status, responses.get(status, "Unknown")),
            "Server: repro-prov",
            "Date: {}".format(formatdate(usegmt=True)),
            "Content-Type: {}".format(content_type),
        ]
        if chunked:
            head.append("Transfer-Encoding: chunked")
        else:
            head.append("Content-Length: {}".format(len(body)))
        for name, value in extra.items():
            head.append("{}: {}".format(name, value))
        if close:
            head.append("Connection: close")
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            if chunked:
                # Stream large polynomials in slices with a drain()
                # between them: one slow reader backpressures its own
                # connection (never the loop or the heap), bounded by
                # the widened write window (see _STREAM_WINDOW).
                writer.transport.set_write_buffer_limits(high=_STREAM_WINDOW)
                for offset in range(0, len(body), _CHUNK):
                    chunk = body[offset:offset + _CHUNK]
                    writer.write(
                        b"%x\r\n" % len(chunk) + chunk + b"\r\n"
                    )
                    await asyncio.wait_for(
                        writer.drain(), self._request_timeout
                    )
                writer.write(b"0\r\n\r\n")
            else:
                writer.write(body)
            await asyncio.wait_for(writer.drain(), self._request_timeout)
            return True
        except (ConnectionError, asyncio.TimeoutError):
            return False

    # ------------------------------------------------------------------
    # Routing (mirrors handlers.py, route for route)
    # ------------------------------------------------------------------
    @staticmethod
    def _ok(body: bytes) -> Tuple:
        return (200, body, "application/json", {}, False)

    @staticmethod
    def _err(
        request: _Request, status: int, message: str, code: str = None
    ) -> Tuple:
        return (
            status,
            error_body(status, message, request.v1, code),
            "application/json",
            {},
            False,
        )

    async def _route(self, request: _Request, raw: bytes) -> Tuple:
        state = self.state
        path = request.path
        if request.method == "POST":
            if path == "/subscribe" and request.v1:
                return await self._route_post(request, raw)
            if path.startswith("/changefeed/") and request.v1:
                return self._err(
                    request, 405, "{} only accepts GET or DELETE".format(path)
                )
            if path in _POST_PATHS:
                return await self._route_post(request, raw)
            if path in _GET_PATHS or path.startswith("/views/"):
                return self._err(
                    request, 405, "{} only accepts GET".format(path)
                )
            return self._err(request, 404, "unknown path {}".format(path))
        if request.method == "GET":
            if path == "/stats":
                return self._ok(canonical_json(state.stats()))
            if path == "/metrics":
                if not state.metrics_enabled:
                    return self._err(
                        request, 404, "metrics are disabled on this server"
                    )
                return (
                    200,
                    state.render_metrics().encode("utf-8"),
                    EXPOSITION_CONTENT_TYPE,
                    {},
                    False,
                )
            if path == "/trace" or path.startswith("/views/"):
                return await self._route_get(request, raw)
            if path == "/subscribe" and request.v1:
                return self._err(request, 405, "/subscribe only accepts POST")
            if path in _POST_PATHS:
                return self._err(
                    request, 405, "{} only accepts POST".format(path)
                )
            return self._err(request, 404, "unknown path {}".format(path))
        if request.method == "DELETE":
            if path.startswith("/changefeed/") and request.v1:
                sub_id = unquote(path[len("/changefeed/"):])
                return self._ok(
                    await self._offload(state.unsubscribe, sub_id)
                )
            known = (
                path in _POST_PATHS
                or path in _GET_PATHS
                or path.startswith("/views/")
                or (path == "/subscribe" and request.v1)
            )
            if known:
                return self._err(
                    request, 405, "{} does not accept DELETE".format(path)
                )
            return self._err(request, 404, "unknown path {}".format(path))
        return self._err(
            request, 501, "unsupported method {}".format(request.method)
        )

    async def _route_post(self, request: _Request, raw: bytes) -> Tuple:
        state = self.state
        path = request.path
        if path == "/subscribe":
            payload = parse_json_body(raw)
            return self._ok(await self._offload(state.subscribe, payload))
        if path == "/query":
            payload = parse_json_body(raw)
            if not isinstance(payload, dict) or not isinstance(
                payload.get("query"), str
            ):
                raise ReproError(
                    "POST /query expects {\"query\": \"<rule text>\"}"
                )
            if _flag(parse_qs(request.query_string), "trace"):
                return self._ok(await self._serve_traced(payload["query"]))
            entry = await self._serve_query(payload["query"])
            return self._ok(entry.body)
        if path == "/batch":
            payload = parse_json_body(raw)
            texts = payload.get("queries") if isinstance(payload, dict) else None
            if not isinstance(texts, list) or not all(
                isinstance(text, str) for text in texts
            ):
                raise ReproError(
                    "POST /batch expects {\"queries\": [\"<rule text>\", ...]}"
                )
            return self._ok(await self._serve_batch(texts))
        payload = parse_json_body(raw)  # /update
        return self._ok(await self._offload(state.apply_update, payload))

    async def _route_get(self, request: _Request, raw: bytes) -> Tuple:
        state = self.state
        query = parse_qs(request.query_string)
        if request.path == "/trace":
            texts = query.get("query")
            if not texts:
                raise ReproError(
                    "GET /trace expects ?query=<url-encoded rule text>"
                )
            return self._ok(await self._serve_traced(texts[-1]))
        name = unquote(request.path[len("/views/"):])
        try:
            return self._ok(
                await self._offload(state.read_view, name, _flag(query, "base"))
            )
        except ReproError as error:
            return self._err(request, 404, str(error))

    # ------------------------------------------------------------------
    # Changefeeds: SSE streaming (this tier's native push transport)
    # ------------------------------------------------------------------
    def _resolve_changefeed(self, request: _Request):
        """Validate a ``GET /v1/changefeed/<id>`` before streaming.

        Runs on the loop *before* any response bytes go out, so lookup
        failures still travel the ordinary JSON error path (404 with
        the v1 envelope) instead of dying mid-stream.
        """
        state = self.state
        hub = state._require_hub()
        sub_id = unquote(request.path[len("/changefeed/"):])
        subscription = hub.get(sub_id)
        cursor = subscription.created_cursor
        values = parse_qs(request.query_string).get("cursor")
        if values:
            try:
                cursor = int(values[-1])
            except ValueError:
                raise ReproError("cursor must be an integer")
        return subscription, cursor

    async def _stream_changefeed(
        self, writer, request: _Request, started, subscription, cursor
    ) -> bool:
        """Stream one changefeed as Server-Sent Events until it dies.

        The loop alternates two states: *pushing* (ring events past the
        cursor go out as ``event:``/``id:``/``data:`` frames, each
        followed by a ``drain()`` with the request deadline — a
        consumer that cannot keep up is evicted, not buffered) and
        *parked* (no qualifying events; the coroutine suspends on an
        :class:`asyncio.Event` that a ``call_soon_threadsafe``
        trampoline sets from the publishing thread, with a heartbeat
        comment every :data:`SSE_HEARTBEAT` seconds).  While parked the
        connection reports itself idle so graceful shutdown cancels it
        instead of waiting out the drain deadline.  A cursor that fell
        off the replay ring is answered with one ``reset`` event
        carrying the full table; building it reads under the session
        lock, so it runs on the executor — ungated, because resets are
        bounded by the subscriber count, and shedding one here would
        strand the consumer forever.
        """
        state = self.state
        hub = state.hub
        loop = asyncio.get_running_loop()
        wake = asyncio.Event()

        def waker() -> None:
            loop.call_soon_threadsafe(wake.set)

        duration = perf_counter() - started
        state.observe_request(
            endpoint_label(request.path), request.method, 200, duration
        )
        _LOGGER.info(
            "%s %s -> 200 %.2fms (sse stream opens)",
            request.method,
            request.raw_path,
            duration * 1e3,
        )
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Server: repro-prov\r\n"
            "Date: {}\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n".format(formatdate(usegmt=True))
        )
        flags = self._connections.get(asyncio.current_task())
        hub.add_waker(subscription, waker)
        try:
            writer.write(head.encode("latin-1"))
            writer.transport.set_write_buffer_limits(high=_SSE_WINDOW)
            await asyncio.wait_for(writer.drain(), self._request_timeout)
            while True:
                wake.clear()
                events, needs_reset = hub.events_after(subscription, cursor)
                if needs_reset:
                    context = contextvars.copy_context()
                    events = [
                        await loop.run_in_executor(
                            self._executor,
                            partial(
                                context.run,
                                state.build_reset_event,
                                subscription,
                            ),
                        )
                    ]
                if events:
                    hub.record_delivered(len(events))
                    for event in events:
                        writer.write(event.sse())
                        try:
                            await asyncio.wait_for(
                                writer.drain(), self._request_timeout
                            )
                        except asyncio.TimeoutError:
                            hub.record_eviction()
                            hub.unsubscribe(subscription.id)
                            return False
                        cursor = event.cursor
                    continue
                if (
                    self._stopping
                    or hub.closed
                    or not hub.alive(subscription)
                ):
                    return False
                if flags is not None:
                    flags.busy = False  # parked: let shutdown cancel us
                try:
                    await asyncio.wait_for(wake.wait(), SSE_HEARTBEAT)
                except asyncio.TimeoutError:
                    writer.write(b": keep-alive\n\n")
                    try:
                        await asyncio.wait_for(
                            writer.drain(), self._request_timeout
                        )
                    except asyncio.TimeoutError:
                        hub.record_eviction()
                        hub.unsubscribe(subscription.id)
                        return False
                finally:
                    if flags is not None:
                        flags.busy = True
        except ConnectionError:
            return False
        finally:
            hub.remove_waker(subscription, waker)

    # ------------------------------------------------------------------
    # The serving core: async single-flight over off-loop engine work
    # ------------------------------------------------------------------
    async def _offload(self, fn, *args):
        """Run blocking engine work on the executor, context intact.

        This is also the backpressure gate — the bounded request queue.
        It counts blocking engine calls actually in flight: cache hits
        and single-flight dedup waiters never offload, so a flood of
        deduplicated identical queries stays cheap and admitted, while
        the ``max_pending``-plus-first request that would *queue new
        engine work* is shed with :class:`_Backpressure` (a 503 +
        ``Retry-After`` upstairs).  ``/stats`` and ``/metrics`` never
        offload, so operators can always look at a saturated server.

        ``run_in_executor`` does not propagate :mod:`contextvars`, so
        the ambient tracer (and anything else ambient) is carried over
        explicitly — spans recorded inside the engine land in the same
        request trace as on the threaded tier.
        """
        if self._pending >= self._max_pending:
            raise _Backpressure()
        self._pending += 1
        self._pending_gauge.set(self._pending)
        try:
            loop = asyncio.get_running_loop()
            context = contextvars.copy_context()
            return await loop.run_in_executor(
                self._executor, partial(context.run, fn, *args)
            )
        finally:
            self._pending -= 1
            self._pending_gauge.set(self._pending)

    async def _serve_query(self, text: str):
        """The async twin of ``ServerState._serve_query``.

        Parse and cache lookup happen on the loop; only the engine run
        leaves it.  N concurrent identical misses run the engine once
        (the other N-1 await the leader's future).
        """
        state = self.state
        query, canonical = state.prepare_query(text)
        version = state.session.db_version()

        async def compute():
            return await self._offload(
                state.compute_query_entry, query, version
            )

        return await self._cache.get_or_compute(
            state.cache_key(canonical, version), compute
        )

    async def _serve_traced(self, text: str) -> bytes:
        state = self.state
        with tracing("query", registry=state.metrics) as tracer:
            entry = await self._serve_query(text)
        return canonical_json({"result": entry.payload, "trace": tracer.tree()})

    async def _serve_batch(self, texts) -> bytes:
        """The async twin of :meth:`ServerState.run_queries`.

        The cached prefix is collected on the loop; the misses run
        through **one** off-loop session batch, exactly like the
        threaded tier.
        """
        state = self.state
        queries = []
        canonicals = []
        for text in texts:
            query, canonical = state.prepare_query(text)
            queries.append(query)
            canonicals.append(canonical)
        version = state.session.db_version()
        entries = {}
        for canonical in dict.fromkeys(canonicals):
            cached = self._cache.get(state.cache_key(canonical, version))
            if cached is not None:
                entries[canonical] = cached
        missing = [
            (canonical, query)
            for canonical, query in dict(zip(canonicals, queries)).items()
            if canonical not in entries
        ]
        if missing:
            computed, cacheable = await self._offload(
                state.compute_batch_entries,
                [query for _canonical, query in missing],
                version,
            )
            for (canonical, _query), entry in zip(missing, computed):
                entries[canonical] = entry
                if cacheable:
                    self._cache.put(state.cache_key(canonical, version), entry)
        return canonical_json(
            {"results": [entries[canonical].payload for canonical in canonicals]}
        )

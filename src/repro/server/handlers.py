"""HTTP request handling for the provenance server.

The endpoint surface (all bodies JSON):

======  ==================  ==============================================
Method  Path                Body / response
======  ==================  ==============================================
POST    ``/query``          ``{"query": text}`` → annotated result table
POST    ``/batch``          ``{"queries": [text, ...]}`` → aligned tables
POST    ``/update``         delta batch(es), the ``maintain`` file format
GET     ``/views/<name>``   materialized view (``?base=1`` expands to base)
GET     ``/stats``          cache / request / session counters
======  ==================  ==============================================

Error contract: malformed requests (bad JSON, missing keys, query parse
errors, invalid deltas) are 400s; unknown paths and unknown views are
404s; method mismatches are 405s; everything else is a 500.  Every
error body is ``{"error": message}``.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler
from json import JSONDecodeError, loads
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import ReproError
from repro.server.app import canonical_json

#: Paths that only accept POST (GETs get a 405 pointing at the verb).
_POST_PATHS = ("/query", "/batch", "/update")

#: Maximum accepted request body, a backstop against memory abuse.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ProvenanceRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the shared :class:`ServerState`."""

    server_version = "repro-prov"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002, D102
        # Per-request stderr lines would swamp tests and load runs; the
        # /stats endpoint is the observability surface instead.
        pass

    def _send(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, canonical_json({"error": message}))

    def _read_body(self) -> bytes:
        """Consume the request body (every request, every route).

        Keep-alive discipline: HTTP/1.1 reuses the connection, so a
        response sent while body bytes sit unread would leave the next
        request parser chewing on this request's payload.  Routes that
        reject a request (404/405, bad JSON) must therefore still have
        drained the body — which is why this runs before routing.  An
        oversized body is the one case not worth draining: the
        connection is marked for close instead.
        """
        header = self.headers.get("Content-Length") or "0"
        try:
            length = int(header)
        except ValueError:
            # The body length is unknowable, so the body is undrainable:
            # never reuse this socket.
            self.close_connection = True
            raise ReproError(
                "invalid Content-Length header {!r}".format(header)
            )
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # do not reuse an undrained socket
            raise ReproError(
                "request body exceeds {} bytes".format(MAX_BODY_BYTES)
            )
        return self.rfile.read(length) if length > 0 else b""

    @staticmethod
    def _parse_json(raw: bytes):
        if not raw:
            raise ReproError("request body must be a JSON document")
        try:
            return loads(raw)
        except JSONDecodeError as error:
            raise ReproError("invalid JSON body: {}".format(error))

    # -- routing --------------------------------------------------------
    def do_POST(self) -> None:  # noqa: D102
        state = self.server.state
        path = urlsplit(self.path).path
        state.request_started()
        try:
            raw = self._read_body()  # drained before ANY response
            if path == "/query":
                payload = self._parse_json(raw)
                if not isinstance(payload, dict) or not isinstance(
                    payload.get("query"), str
                ):
                    raise ReproError(
                        "POST /query expects {\"query\": \"<rule text>\"}"
                    )
                self._send(200, state.run_query(payload["query"]))
            elif path == "/batch":
                payload = self._parse_json(raw)
                texts = payload.get("queries") if isinstance(payload, dict) else None
                if not isinstance(texts, list) or not all(
                    isinstance(text, str) for text in texts
                ):
                    raise ReproError(
                        "POST /batch expects {\"queries\": [\"<rule text>\", ...]}"
                    )
                self._send(200, state.run_queries(texts))
            elif path == "/update":
                self._send(200, state.apply_update(self._parse_json(raw)))
            elif path == "/stats" or path.startswith("/views/"):
                self._error(405, "{} only accepts GET".format(path))
            else:
                self._error(404, "unknown path {}".format(path))
        except ReproError as error:
            self._error(400, str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, "{}: {}".format(type(error).__name__, error))
        finally:
            state.request_finished()

    def do_GET(self) -> None:  # noqa: D102
        state = self.server.state
        split = urlsplit(self.path)
        path = split.path
        state.request_started()
        try:
            self._read_body()  # a GET with a body must still drain it
            if path == "/stats":
                self._send(200, canonical_json(state.stats()))
            elif path.startswith("/views/"):
                name = unquote(path[len("/views/"):])
                query = parse_qs(split.query)
                base = query.get("base", ["0"])[-1] not in ("0", "false", "")
                try:
                    self._send(200, state.read_view(name, base=base))
                except ReproError as error:
                    self._error(404, str(error))
            elif path in _POST_PATHS:
                self._error(405, "{} only accepts POST".format(path))
            else:
                self._error(404, "unknown path {}".format(path))
        except ReproError as error:  # oversized body on a GET
            self._error(400, str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, "{}: {}".format(type(error).__name__, error))
        finally:
            state.request_finished()

"""HTTP request handling for the provenance server.

The endpoint surface (bodies JSON unless noted), every route mounted
both at its legacy path and under the versioned ``/v1`` prefix:

======  ========================  ========================================
Method  Path                      Body / response
======  ========================  ========================================
POST    ``/v1/query``             ``{"query": text}`` → annotated result
                                  table (``?trace=1`` adds a span tree)
POST    ``/v1/batch``             ``{"queries": [text, ...]}`` → tables
POST    ``/v1/update``            delta batch(es), the ``maintain`` format
POST    ``/v1/subscribe``         ``{"view": name}`` or ``{"query": text}``
                                  → subscription id + cursor + snapshot
GET     ``/v1/changefeed/<id>``   pushed view deltas: SSE on the async
                                  tier, long-poll (``?cursor=&wait=``) on
                                  the threaded tier
DELETE  ``/v1/changefeed/<id>``   drop the subscription
GET     ``/v1/views/<name>``      materialized view (``?base=1`` expands)
GET     ``/v1/stats``             cache / request / latency counters
GET     ``/v1/metrics``           Prometheus exposition (404 if disabled)
GET     ``/v1/trace``             ``?query=<text>`` → result + span tree
======  ========================  ========================================

Legacy unversioned paths keep serving byte-identical bodies (the
30-seed differential asserts ``/query`` ≡ ``/v1/query``) but answer
with a ``Deprecation`` header; the subscribe/changefeed endpoints are
v1-only.

Error contract: malformed requests (bad JSON, missing keys, query parse
errors, invalid deltas) are 400s; unknown paths, views and
subscriptions are 404s; method mismatches are 405s; the subscription
limit is a 429; everything else is a 500.  Legacy paths answer
``{"error": message}`` exactly as before; ``/v1`` paths wrap every
failure in the structured envelope ``{"error": {"code", "message",
"detail"}}`` with a bounded machine-readable ``code``.

Every finished request is folded into the server's metrics registry
(count by endpoint/method/status, latency histogram by endpoint) and
logged at INFO on the ``repro.server`` logger — method, path, status,
duration and the result-cache outcome when the route consulted it.
The logger follows stdlib convention: silent unless the application
configures logging (the CLI's ``--log-level`` flag does).
"""

from __future__ import annotations

import logging
import socket
from http.server import BaseHTTPRequestHandler
from json import JSONDecodeError, loads
from time import perf_counter
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import ReproError
from repro.obs.metrics import EXPOSITION_CONTENT_TYPE
from repro.server.app import canonical_json
from repro.server.cache import last_outcome, reset_outcome
from repro.server.subscriptions import SubscriptionError

#: Paths that only accept POST (GETs get a 405 pointing at the verb).
_POST_PATHS = ("/query", "/batch", "/update")

#: Maximum accepted request body, a backstop against memory abuse.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Paths that only accept GET.
_GET_PATHS = ("/stats", "/metrics", "/trace")

#: The bounded endpoint label set — every ``/views/<name>`` collapses to
#: ``/views`` and unknown paths to ``other``, so a client scanning paths
#: cannot inflate the metrics cardinality.
_KNOWN_ENDPOINTS = frozenset(_POST_PATHS) | frozenset(_GET_PATHS) | {"/subscribe"}

#: Status → machine-readable error code of the ``/v1`` error envelope.
#: The set is bounded and documented; anything unmapped is "error".
ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    408: "timeout",
    413: "payload_too_large",
    429: "subscription_limit",
    431: "headers_too_large",
    500: "internal",
    501: "not_implemented",
    503: "capacity",
    505: "http_version_unsupported",
}

_LOGGER = logging.getLogger("repro.server")


def split_api_version(path: str):
    """Strip the ``/v1`` mount: ``(is_v1, effective_path)``.

    Both tiers route on the effective path, so every legacy endpoint is
    automatically mounted under ``/v1`` with byte-identical bodies.
    """
    if path == "/v1":
        return True, "/"
    if path.startswith("/v1/"):
        return True, path[len("/v1"):]
    return False, path


def error_body(status: int, message: str, v1: bool, code=None, detail=None) -> bytes:
    """One error response body, shaped per API version.

    Legacy paths keep the historical ``{"error": message}`` bytes;
    ``/v1`` paths get the structured envelope with a bounded ``code``
    (:data:`ERROR_CODES`) and an always-present ``detail`` (``null``
    unless the route attached one).
    """
    if not v1:
        return canonical_json({"error": message})
    return canonical_json(
        {
            "error": {
                "code": code or ERROR_CODES.get(status, "error"),
                "message": message,
                "detail": detail,
            }
        }
    )


def endpoint_label(path: str) -> str:
    """The bounded metrics label for an (effective) request path."""
    if path in _KNOWN_ENDPOINTS:
        return path
    if path.startswith("/views/"):
        return "/views"
    if path.startswith("/changefeed/"):
        return "/changefeed"
    return "other"


def _flag(query: dict, name: str) -> bool:
    return query.get(name, ["0"])[-1] not in ("0", "false", "")


def parse_json_body(raw: bytes):
    """Decode a request body as JSON (:class:`ReproError` when it isn't).

    Shared by the threaded handler and the async tier so malformed
    bodies produce byte-identical 400s in both modes.
    """
    if not raw:
        raise ReproError("request body must be a JSON document")
    try:
        return loads(raw)
    except JSONDecodeError as error:
        raise ReproError("invalid JSON body: {}".format(error))


class ProvenanceRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the shared :class:`ServerState`."""

    server_version = "repro-prov"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def setup(self) -> None:
        """Install the server's per-connection socket timeout.

        ``StreamRequestHandler.setup`` applies ``self.timeout`` via
        ``connection.settimeout()``, so every blocking read on this
        socket — the request line of an idle keep-alive connection,
        half-sent headers, a promised body that never arrives — raises
        ``socket.timeout`` instead of pinning this worker thread
        forever (the liveness bug the async tier's deadlines fix by
        construction).
        """
        self.timeout = getattr(self.server, "request_timeout", None)
        super().setup()

    def log_message(self, format, *args):  # noqa: A002, D102
        # BaseHTTPRequestHandler's own per-request stderr lines would
        # swamp tests and load runs; the structured INFO line emitted in
        # _handle's finally block is the request log instead.
        _LOGGER.debug(format, *args)

    def _send(
        self, status: int, body: bytes, content_type: str = "application/json"
    ) -> None:
        self._status = status
        # Observe BEFORE the body bytes go out: a client that reads the
        # response and immediately scrapes /metrics must find this
        # request already counted.
        self._observe()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if not getattr(self, "_v1", True):
            # The unversioned surface still answers byte-identically,
            # but every response advertises its successor.
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", '</v1{}>; rel="successor-version"'.format(self._path)
            )
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, code=None, detail=None) -> None:
        self._send(status, error_body(status, message, self._v1, code, detail))

    def _read_body(self) -> bytes:
        """Consume the request body (every request, every route).

        Keep-alive discipline: HTTP/1.1 reuses the connection, so a
        response sent while body bytes sit unread would leave the next
        request parser chewing on this request's payload.  Routes that
        reject a request (404/405, bad JSON) must therefore still have
        drained the body — which is why this runs before routing.  An
        oversized body is the one case not worth draining: the
        connection is marked for close instead.
        """
        header = self.headers.get("Content-Length") or "0"
        try:
            length = int(header)
        except ValueError:
            # The body length is unknowable, so the body is undrainable:
            # never reuse this socket.
            self.close_connection = True
            raise ReproError(
                "invalid Content-Length header {!r}".format(header)
            )
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # do not reuse an undrained socket
            raise ReproError(
                "request body exceeds {} bytes".format(MAX_BODY_BYTES)
            )
        return self.rfile.read(length) if length > 0 else b""

    _parse_json = staticmethod(parse_json_body)

    # -- routing --------------------------------------------------------
    def _observe(self) -> None:
        """Fold this request into the metrics and the request log (once)."""
        if self._observed:
            return
        self._observed = True
        duration = perf_counter() - self._started
        self.server.state.observe_request(
            endpoint_label(self._route_path), self._method, self._status, duration
        )
        outcome = last_outcome()
        _LOGGER.info(
            "%s %s -> %d %.2fms%s",
            self._method,
            self._path,
            self._status,
            duration * 1e3,
            " cache={}".format(outcome) if outcome else "",
        )

    def _handle(self, method: str, route) -> None:
        """Time and account one request around its route function."""
        state = self.server.state
        self._path = urlsplit(self.path).path
        self._v1, self._route_path = split_api_version(self._path)
        self._method = method
        self._status = 500
        self._observed = False
        self._started = perf_counter()
        reset_outcome()
        state.request_started()
        try:
            try:
                route(state, self._route_path)
            except socket.timeout:
                # The client stalled mid-request (e.g. a promised body
                # never arrived).  The body is undrained, so the socket
                # must not be reused; the 408 is best-effort — the
                # client is still there, just slow to *send*.
                self.close_connection = True
                self._error(408, "timed out reading the request body")
            except SubscriptionError as error:
                self._error(error.status, str(error), code=error.code)
            except ReproError as error:
                self._error(400, str(error))
            except Exception as error:  # pragma: no cover - defensive
                self._error(500, "{}: {}".format(type(error).__name__, error))
        finally:
            # Nested so a raising _observe() (or an _error() above that
            # died on a closed socket) can never leak the /stats
            # in-flight counter permanently upward.
            try:
                self._observe()  # a route that never sent still counts
            finally:
                state.request_finished()

    def do_POST(self) -> None:  # noqa: D102
        self._handle("POST", self._route_post)

    def do_GET(self) -> None:  # noqa: D102
        self._handle("GET", self._route_get)

    def do_DELETE(self) -> None:  # noqa: D102
        self._handle("DELETE", self._route_delete)

    @staticmethod
    def _number_param(query: dict, name: str, cast):
        values = query.get(name)
        if not values:
            return None
        try:
            return cast(values[-1])
        except ValueError:
            raise ReproError(
                "query parameter {!r} must be a number, got {!r}".format(
                    name, values[-1]
                )
            )

    def _route_post(self, state, path: str) -> None:
        raw = self._read_body()  # drained before ANY response
        if path == "/query":
            payload = self._parse_json(raw)
            if not isinstance(payload, dict) or not isinstance(
                payload.get("query"), str
            ):
                raise ReproError(
                    "POST /query expects {\"query\": \"<rule text>\"}"
                )
            if _flag(parse_qs(urlsplit(self.path).query), "trace"):
                self._send(200, state.run_query_traced(payload["query"]))
            else:
                self._send(200, state.run_query(payload["query"]))
        elif path == "/batch":
            payload = self._parse_json(raw)
            texts = payload.get("queries") if isinstance(payload, dict) else None
            if not isinstance(texts, list) or not all(
                isinstance(text, str) for text in texts
            ):
                raise ReproError(
                    "POST /batch expects {\"queries\": [\"<rule text>\", ...]}"
                )
            self._send(200, state.run_queries(texts))
        elif path == "/update":
            self._send(200, state.apply_update(self._parse_json(raw)))
        elif path == "/subscribe" and self._v1:
            self._send(200, state.subscribe(self._parse_json(raw)))
        elif path.startswith("/changefeed/") and self._v1:
            self._error(405, "{} only accepts GET or DELETE".format(path))
        elif path in _GET_PATHS or path.startswith("/views/"):
            self._error(405, "{} only accepts GET".format(path))
        else:
            self._error(404, "unknown path {}".format(path))

    def _route_get(self, state, path: str) -> None:
        self._read_body()  # a GET with a body must still drain it
        query = parse_qs(urlsplit(self.path).query)
        if path == "/stats":
            self._send(200, canonical_json(state.stats()))
        elif path == "/metrics":
            if not state.metrics_enabled:
                self._error(404, "metrics are disabled on this server")
            else:
                self._send(
                    200,
                    state.render_metrics().encode("utf-8"),
                    content_type=EXPOSITION_CONTENT_TYPE,
                )
        elif path == "/trace":
            texts = query.get("query")
            if not texts:
                raise ReproError(
                    "GET /trace expects ?query=<url-encoded rule text>"
                )
            self._send(200, state.run_query_traced(texts[-1]))
        elif path.startswith("/views/"):
            name = unquote(path[len("/views/"):])
            base = _flag(query, "base")
            try:
                self._send(200, state.read_view(name, base=base))
            except ReproError as error:
                self._error(404, str(error))
        elif path.startswith("/changefeed/") and self._v1:
            # The threaded tier's changefeed is a long-poll: the server
            # parks this handler thread up to ?wait= seconds and then
            # answers the events past ?cursor= (possibly none).
            sub_id = unquote(path[len("/changefeed/"):])
            cursor = self._number_param(query, "cursor", int)
            wait = self._number_param(query, "wait", float)
            self._send(
                200, state.changefeed_poll(sub_id, cursor, wait or 0.0)
            )
        elif path == "/subscribe" and self._v1:
            self._error(405, "{} only accepts POST".format(path))
        elif path in _POST_PATHS:
            self._error(405, "{} only accepts POST".format(path))
        else:
            self._error(404, "unknown path {}".format(path))

    def _route_delete(self, state, path: str) -> None:
        self._read_body()  # keep-alive discipline, as for GET
        if path.startswith("/changefeed/") and self._v1:
            self._send(200, state.unsubscribe(unquote(path[len("/changefeed/"):])))
        elif (
            path in _POST_PATHS
            or path in _GET_PATHS
            or (path == "/subscribe" and self._v1)
            or path.startswith("/views/")
        ):
            self._error(405, "{} does not accept DELETE".format(path))
        else:
            self._error(404, "unknown path {}".format(path))

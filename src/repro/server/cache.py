"""A thread-safe, version-keyed result cache with single-flight dedup.

The serving tier keys cached responses by ``(canonical query text,
db version, engine options)``.  Two properties fall out of putting the
database version *in the key* instead of maintaining the entries:

* **invalidation is free** — an update bumps the version, so every
  stale entry simply stops being addressable; no scan, no per-entry
  bookkeeping.  The LRU bound reclaims the dead entries as fresh
  traffic pushes them out;
* **hits are exact** — a cached body is byte-identical to what the
  engine would produce at that version, because it *is* what the
  engine produced at that version.

Single-flight deduplication handles the thundering-herd case: when N
concurrent requests miss on the same key, one of them (the *leader*)
runs the computation while the others wait on its result — the engine
runs once, not N times.  A leader's failure is propagated to every
waiter and nothing is cached.

Computations return ``(value, cacheable)`` so a caller that discovers
mid-flight that the database moved on (the version it keyed on is no
longer current) can hand the fresh value to all waiters *without*
poisoning the cache under the stale key.
"""

from __future__ import annotations

import contextvars
import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.obs.trace import current_tracer

#: A computation run under single-flight: returns the value to hand to
#: every deduplicated caller, plus whether to store it under the key.
Compute = Callable[[], Tuple[object, bool]]

#: The outcome of this context's most recent cache lookup — ``hit``,
#: ``miss`` or ``wait`` (deduplicated behind a leader).  The request
#: handler reads it for the per-request log line; it is context-local,
#: so concurrent request threads never see each other's outcomes.
_LAST_OUTCOME: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_cache_outcome", default=None
)


def last_outcome() -> Optional[str]:
    """The calling context's most recent lookup outcome (or ``None``)."""
    return _LAST_OUTCOME.get()


def reset_outcome() -> None:
    """Clear the outcome at request start (keep-alive reuses threads)."""
    _LAST_OUTCOME.set(None)

#: Distinguishes "not cached" from a legitimately cached ``None`` value
#: (``dict.get`` with a ``None`` default would conflate the two and turn
#: a cached ``None`` into a permanent miss that still occupies capacity).
_MISSING = object()


class _Flight:
    """One in-flight computation; waiters block on :attr:`event`."""

    __slots__ = ("event", "value", "error")

    def __init__(self):  # noqa: D107
        self.event = threading.Event()
        self.value = None
        self.error = None


class ResultCache:
    """LRU-bounded cache with single-flight deduplication.

    >>> cache = ResultCache(capacity=2)
    >>> cache.get_or_compute("k", lambda: ("value", True))
    'value'
    >>> cache.get_or_compute("k", lambda: ("never run", True))
    'value'
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (1, 1)
    """

    def __init__(self, capacity: int = 256):  # noqa: D107
        if capacity < 1:
            raise ValueError("result cache capacity must be positive")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._inflight: Dict[Hashable, _Flight] = {}
        self._hits = 0
        self._misses = 0
        self._dedup_hits = 0
        self._evictions = 0
        self._waiters = 0

    # ------------------------------------------------------------------
    # The serving path
    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        """The cached value for ``key`` or ``None`` (counts hit/miss).

        A plain lookup without single-flight — the batch path uses it to
        collect its cached prefix before evaluating the misses together.
        """
        with current_tracer().span("cache.lookup") as span:
            with self._lock:
                value = self._entries.get(key, _MISSING)
                if value is _MISSING:
                    self._misses += 1
                    span.set(outcome="miss")
                    _LAST_OUTCOME.set("miss")
                    return None
                self._entries.move_to_end(key)
                self._hits += 1
            span.set(outcome="hit")
            _LAST_OUTCOME.set("hit")
            return value

    def put(self, key: Hashable, value) -> None:
        """Store ``value`` under ``key``, evicting LRU entries on overflow."""
        with self._lock:
            self._store(key, value)

    def get_or_compute(self, key: Hashable, compute: Compute):
        """The cached value for ``key``, computing it at most once.

        Concurrent callers with the same key are deduplicated: the first
        becomes the leader and runs ``compute()``; the rest wait and
        share its value (counted as ``dedup_hits``).  ``compute`` must
        return ``(value, cacheable)``; when ``cacheable`` is false the
        value is handed to every waiter but not stored.  If the leader
        raises, every waiter re-raises the same exception.
        """
        with current_tracer().span("cache.lookup") as span:
            with self._lock:
                value = self._entries.get(key, _MISSING)
                if value is not _MISSING:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    span.set(outcome="hit")
                    _LAST_OUTCOME.set("hit")
                    return value
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
                    self._waiters += 1
                if leader:
                    self._misses += 1
            span.set(outcome="miss" if leader else "wait")
            _LAST_OUTCOME.set("miss" if leader else "wait")
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self._dedup_hits += 1
            return flight.value
        cacheable = False
        try:
            try:
                value, cacheable = compute()
                flight.value = value
            except BaseException as error:
                flight.error = error
                raise
        finally:
            # Crash-proof wakeup: whatever happens between the
            # computation and the wakeup — an exception while storing
            # the entry, the leader thread dying outside ``compute`` —
            # the waiters' event is set, so no waiter can block forever
            # behind a leader that will never publish.
            with self._lock:
                self._inflight.pop(key, None)
                try:
                    if flight.error is None and cacheable:
                        self._store(key, value)
                finally:
                    flight.event.set()
        return value

    def _store(self, key: Hashable, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Hit/miss/dedup/eviction counters plus the derived hit rate.

        ``dedup_hits`` count toward the hit rate: a deduplicated request
        was served without its own engine run, which is exactly what the
        rate is meant to measure.
        """
        with self._lock:
            lookups = self._hits + self._misses + self._dedup_hits
            served = self._hits + self._dedup_hits
            return {
                "hits": self._hits,
                "misses": self._misses,
                "dedup_hits": self._dedup_hits,
                "evictions": self._evictions,
                "single_flight_waiters": self._waiters,
                "size": len(self._entries),
                "capacity": self._capacity,
                "inflight": len(self._inflight),
                "hit_rate": (served / lookups) if lookups else 0.0,
            }

    def clear(self) -> None:
        """Drop every entry and reset the counters (in-flight survive)."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._dedup_hits = 0
            self._evictions = 0
            self._waiters = 0

    @property
    def capacity(self) -> int:
        """The LRU bound this cache was built with."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        stats = self.stats()
        return "<ResultCache {size}/{capacity}, {hits} hits, {misses} misses>".format(
            **stats
        )


class AsyncResultCache:
    """The event-loop twin of :class:`ResultCache`.

    Same key discipline (version in the key, invalidation by moving the
    version on), same LRU bound, same single-flight semantics — but the
    in-flight ledger holds :class:`asyncio.Future`\\ s instead of
    :class:`threading.Event`\\ s, so a thousand deduplicated waiters
    cost a thousand suspended coroutines, not a thousand blocked
    threads.  Confined to one event loop by design: every method runs
    on the loop, so there is no lock anywhere.

    Leader semantics mirror the threaded cache: the first caller for a
    key awaits ``compute()`` (which typically dispatches the engine to
    an executor); every concurrent caller awaits the shared future.  A
    leader's failure is propagated to every waiter and nothing is
    cached; the future is resolved in a ``finally`` so waiters can
    never hang behind a leader that died between the computation and
    publication.  If the leader's task was *cancelled* (its client
    disconnected mid-flight), one waiter takes over as the new leader
    instead of failing spuriously.
    """

    def __init__(self, capacity: int = 256):  # noqa: D107
        if capacity < 1:
            raise ValueError("result cache capacity must be positive")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._inflight: Dict[Hashable, "asyncio.Future"] = {}
        self._hits = 0
        self._misses = 0
        self._dedup_hits = 0
        self._evictions = 0
        self._waiters = 0

    # ------------------------------------------------------------------
    # The serving path (all coroutines run on the owning event loop)
    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        """The cached value for ``key`` or ``None`` (counts hit/miss)."""
        with current_tracer().span("cache.lookup") as span:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                span.set(outcome="miss")
                _LAST_OUTCOME.set("miss")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            span.set(outcome="hit")
            _LAST_OUTCOME.set("hit")
            return value

    def put(self, key: Hashable, value) -> None:
        """Store ``value`` under ``key``, evicting LRU entries on overflow."""
        self._store(key, value)

    async def get_or_compute(self, key: Hashable, compute):
        """The cached value for ``key``, computing it at most once.

        ``compute`` is an async callable returning ``(value,
        cacheable)`` — the same contract as the threaded cache's
        :data:`Compute`, awaited instead of called.
        """
        import asyncio

        with current_tracer().span("cache.lookup") as span:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self._hits += 1
                span.set(outcome="hit")
                _LAST_OUTCOME.set("hit")
                return value
            future = self._inflight.get(key)
            if future is None:
                self._misses += 1
                span.set(outcome="miss")
                _LAST_OUTCOME.set("miss")
            else:
                self._waiters += 1
                span.set(outcome="wait")
                _LAST_OUTCOME.set("wait")
        if future is not None:
            # ``shield`` keeps one waiter's cancellation (its client
            # hung up) from cancelling the shared in-flight future.
            try:
                value = await asyncio.shield(future)
            except asyncio.CancelledError:
                if future.cancelled() or (
                    future.done()
                    and isinstance(future.exception(), asyncio.CancelledError)
                ):
                    # The leader's task died, not ours: take over.
                    return await self.get_or_compute(key, compute)
                raise
            self._dedup_hits += 1
            return value
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        cacheable = False
        error = None
        value = None
        try:
            value, cacheable = await compute()
            return value
        except BaseException as exc:
            error = exc
            raise
        finally:
            # The asyncio analog of the threaded cache's crash-proof
            # wakeup: publication happens in a ``finally``, so waiters
            # always resolve.
            self._inflight.pop(key, None)
            if not future.cancelled():
                if error is not None:
                    future.set_exception(error)
                    # Mark retrieved: with zero waiters nobody ever
                    # awaits this future, and asyncio would otherwise
                    # log "exception was never retrieved" at teardown.
                    future.exception()
                else:
                    if cacheable:
                        self._store(key, value)
                    future.set_result(value)

    def _store(self, key: Hashable, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    # ------------------------------------------------------------------
    # Inspection (plain sync reads; safe from the loop thread)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The same counter shape as :meth:`ResultCache.stats`."""
        lookups = self._hits + self._misses + self._dedup_hits
        served = self._hits + self._dedup_hits
        return {
            "hits": self._hits,
            "misses": self._misses,
            "dedup_hits": self._dedup_hits,
            "evictions": self._evictions,
            "single_flight_waiters": self._waiters,
            "size": len(self._entries),
            "capacity": self._capacity,
            "inflight": len(self._inflight),
            "hit_rate": (served / lookups) if lookups else 0.0,
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters (in-flight survive)."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._dedup_hits = 0
        self._evictions = 0
        self._waiters = 0

    @property
    def capacity(self) -> int:
        """The LRU bound this cache was built with."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            "<AsyncResultCache {size}/{capacity}, {hits} hits, "
            "{misses} misses>".format(**stats)
        )

"""The serving tier's shared state and HTTP server shell.

:class:`ServerState` is everything the request threads share: one
long-lived :class:`~repro.session.QuerySession` (thread mode — the
database mutates under ``/update``), an optional
:class:`~repro.incremental.registry.ViewRegistry` when a view program
is served, and the version-keyed
:class:`~repro.server.cache.ResultCache`.

Concurrency model — one lock, three rules:

* every evaluation goes through :meth:`QuerySession.run_batch`, which
  holds the session lock and reports the version it evaluated at;
* every update holds the same lock around the database mutation, so no
  evaluation observes a half-applied batch;
* cache keys carry the database version, so an update invalidates by
  *moving the version on*, never by touching the cache.  A computation
  that raced an update (its result version differs from the keyed
  version) is returned fresh and simply not cached.

Responses are canonical JSON (sorted keys, fixed separators) built from
the :mod:`repro.io` codecs — the differential tests assert that a
served body is byte-identical to encoding an in-process
``evaluate``/``evaluate_aggregate`` result the same way.
"""

from __future__ import annotations

import json
import threading
from http.server import ThreadingHTTPServer
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.aggregate.result import AggregateResult
from repro.algebra.intern import InternRemapper
from repro.config import EngineConfig, resolve_engine_config
from repro.durability.store import DurableStore, RecoveredState
from repro.errors import EvaluationError, ReproError
from repro.incremental.delta import Delta, apply_to_database
from repro.incremental.registry import ViewRegistry
from repro.io import (
    aggregate_results_to_list,
    delta_to_dict,
    deltas_from_payload,
    results_to_list,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    histogram_percentiles,
)
from repro.obs.trace import current_tracer, tracing
from repro.query.aggregate import AggregateQuery, AnyQuery
from repro.query.parser import parse_query
from repro.query.printer import query_to_str
from repro.server.cache import ResultCache
from repro.session import QuerySession

#: Engines the server can front (the session engines, by construction).
SERVER_ENGINES = ("hashjoin", "sharded")

#: Default LRU bound of the result cache.
DEFAULT_CACHE_SIZE = 256

#: Longest server-side long-poll wait the threaded changefeed honors.
MAX_POLL_WAIT = 30.0


def canonical_json(payload) -> bytes:
    """Serialize a response payload to canonical JSON bytes.

    Sorted keys and fixed separators make encoding deterministic, which
    is what lets the differential suite compare served bodies against
    in-process evaluation byte for byte.  The trailing newline is for
    humans running ``curl``.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def encode_results(results: Mapping, aggregate: Optional[bool] = None) -> dict:
    """The response fragment for one query's result table.

    Plain UCQ≠ tables serialize their polynomials, aggregate tables
    their ``N[X] ⊗ M`` tensors; pass ``aggregate`` explicitly when the
    table may be empty (an empty dict carries no type of its own).
    """
    if aggregate is None:
        aggregate = any(
            isinstance(value, AggregateResult) for value in results.values()
        )
    if aggregate:
        return {"kind": "aggregate", "results": aggregate_results_to_list(results)}
    return {"kind": "polynomial", "results": results_to_list(results)}


class _CachedResult:
    """One cached response: the payload dict plus its encoded body.

    ``/query`` serves the bytes straight off the hit path; ``/batch``
    embeds the payload dicts in its envelope without re-parsing.
    """

    __slots__ = ("payload", "body")

    def __init__(self, payload: dict, body: bytes):  # noqa: D107
        self.payload = payload
        self.body = body


class ServerState:
    """Everything the request-handler threads share.

    Two configurations:

    * **bare session** (no ``program``): queries run against the given
      database; ``/update`` applies deltas directly and the session
      auto-refreshes off the version bump;
    * **registry-fronted** (``program`` given): a
      :class:`~repro.incremental.registry.ViewRegistry` materializes the
      program, ``/update`` maintains it incrementally, ``/views/<name>``
      reads the maintained tables, and ad-hoc queries evaluate over the
      working database — base relations *and* plain views.
    """

    def __init__(
        self,
        db,
        program: Optional[Mapping[str, AnyQuery]] = None,
        config: Optional[EngineConfig] = None,
        engine: Optional[str] = None,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        broadcast_threshold: Optional[int] = None,
        metrics: bool = True,
        data_dir: Optional[str] = None,
        snapshot_every: Optional[int] = None,
        max_subscriptions: Optional[int] = None,
        ring_size: Optional[int] = None,
    ):  # noqa: D107
        config = resolve_engine_config(
            config,
            "ServerState",
            engine=engine,
            shards=shards,
            workers=workers,
            broadcast_threshold=broadcast_threshold,
        )
        if config.engine not in SERVER_ENGINES:
            raise EvaluationError(
                "unknown server engine {!r}; supported: {}".format(
                    config.engine, ", ".join(SERVER_ENGINES)
                )
            )
        if data_dir is not None:
            config = config.with_overrides(data_dir=data_dir)
        # The database mutates under ``/update`` while the session stays
        # warm, so serving always runs thread-mode pools.
        config = config.with_overrides(mode="thread")
        self._engine = config.engine
        self._config = config
        self._options = config
        # Per-server registry (not the process-wide default) so parallel
        # test servers never bleed counters into each other; the null
        # registry makes every instrument below a shared no-op.  Created
        # before the durable store so recovery spans and WAL counters
        # land in it.
        self._metrics = MetricsRegistry() if metrics else NULL_REGISTRY
        self._store: Optional[DurableStore] = None
        self._recovery: Optional[RecoveredState] = None
        if config.data_dir is not None:
            store_kwargs = {"metrics": self._metrics}
            if snapshot_every is not None:
                store_kwargs["snapshot_every"] = snapshot_every
            self._store = DurableStore(config.data_dir, **store_kwargs)
        self._registry: Optional[ViewRegistry] = None
        self._db = db
        if self._store is not None and self._store.has_state():
            # Warm boot: snapshot + WAL replay instead of recompute; the
            # given ``db`` is ignored in favor of the recovered state.
            self._recovery = self._store.recover(program=program, config=config)
            self._registry = self._recovery.registry
            if self._registry is not None:
                self._db = self._registry.serving_db
                if self._registry.session is not None:
                    self._session = self._registry.session
                else:
                    self._session = QuerySession(self._db, "hashjoin")
            else:
                self._db = self._recovery.db
                self._session = QuerySession(self._db, config)
            # Pre-fill the session's intern table so recovered serving
            # reuses the interned monomials the snapshot captured.
            InternRemapper(self._session.intern_table).extend(
                *self._recovery.intern_state
            )
        elif program is not None:
            self._registry = ViewRegistry(program, db, config=config)
            self._db = self._registry.serving_db
            if self._registry.session is not None:
                # The sharded registry already keeps a warm thread-mode
                # session over the working database; serve through it.
                self._session = self._registry.session
            else:
                self._session = QuerySession(self._db, "hashjoin")
        else:
            self._session = QuerySession(db, config)
        if self._store is not None and self._recovery is None:
            # Cold boot with durability on: the initial snapshot is the
            # base every future WAL replay starts from.
            self._store.snapshot(
                self._db,
                self._registry,
                self._session.intern_table.export_state(),
            )
        self._hub = None
        self._view_serial = 0
        if self._registry is not None:
            # Imported lazily: the subscriptions module imports this
            # one for the canonical JSON codec.
            from repro.server.subscriptions import (
                DEFAULT_MAX_SUBSCRIPTIONS,
                DEFAULT_RING_SIZE,
                SubscriptionHub,
            )

            self._hub = SubscriptionHub(
                max_subscriptions=(
                    DEFAULT_MAX_SUBSCRIPTIONS
                    if max_subscriptions is None
                    else max_subscriptions
                ),
                ring_size=DEFAULT_RING_SIZE if ring_size is None else ring_size,
                metrics=self._metrics,
            )
            # Fan-out runs inside apply_update's session-locked region,
            # so every subscriber ring sees reports in version order.
            self._registry.add_observer(self._hub.publish)
        self._cache = ResultCache(cache_size)
        self._counter_lock = threading.Lock()
        self._active = 0
        self._served = 0
        self._closed = False
        self._request_counter = self._metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint, method and status",
            ("endpoint", "method", "status"),
        )
        self._request_latency = self._metrics.histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency, by endpoint",
            ("endpoint",),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The serving engine (``hashjoin`` or ``sharded``)."""
        return self._engine

    @property
    def config(self) -> EngineConfig:
        """The resolved :class:`~repro.config.EngineConfig` in effect."""
        return self._config

    @property
    def registry(self) -> Optional[ViewRegistry]:
        """The fronted view registry (``None`` in bare-session mode)."""
        return self._registry

    @property
    def store(self) -> Optional[DurableStore]:
        """The durable store (``None`` without a ``data_dir``)."""
        return self._store

    @property
    def recovery(self) -> Optional[RecoveredState]:
        """What boot-time recovery rebuilt (``None`` on a cold boot)."""
        return self._recovery

    @property
    def session(self) -> QuerySession:
        """The long-lived serving session."""
        return self._session

    @property
    def cache(self) -> ResultCache:
        """The version-keyed result cache."""
        return self._cache

    @property
    def metrics(self):
        """The server's metrics registry (the null registry when off)."""
        return self._metrics

    @property
    def metrics_enabled(self) -> bool:
        """Is this server collecting metrics?"""
        return self._metrics.enabled

    @property
    def hub(self):
        """The changefeed :class:`SubscriptionHub` (``None`` bare)."""
        return self._hub

    def close(self) -> None:
        """Release the session (and registry) worker pools (idempotent)."""
        self._closed = True
        if self._hub is not None:
            self._hub.close()  # unblocks parked long-polls and streams
        if self._registry is not None:
            self._registry.close()
        self._session.close()
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "ServerState":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request accounting (the /stats in-flight counter)
    # ------------------------------------------------------------------
    def request_started(self) -> None:
        """Count one request in (called by the handler threads)."""
        with self._counter_lock:
            self._active += 1

    def request_finished(self) -> None:
        """Count one request out."""
        with self._counter_lock:
            self._active -= 1
            self._served += 1

    def observe_request(
        self, endpoint: str, method: str, status: int, duration_s: float
    ) -> None:
        """Fold one finished request into the per-endpoint metrics."""
        self._request_counter.inc(
            endpoint=endpoint, method=method, status=status
        )
        self._request_latency.observe(duration_s, endpoint=endpoint)

    def render_metrics(self) -> str:
        """The ``GET /metrics`` exposition body."""
        return self._metrics.render()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _session_run(self, queries: Sequence[AnyQuery]) -> Tuple[List, int]:
        """One lock-guarded engine run (tests stub this to count calls)."""
        with current_tracer().span("evaluate", queries=len(queries)):
            return self._session.run_batch(queries)

    def _key(self, canonical: str, version: int):
        return (canonical, version, self._options)

    def cache_key(self, canonical: str, version: int):
        """The result-cache key for a canonical query at a version.

        Public for the async tier, which runs cache lookups on the
        event loop against its own :class:`AsyncResultCache` but must
        key them exactly like the threaded paths.
        """
        return self._key(canonical, version)

    def attach_cache(self, cache) -> None:
        """Swap in a different result cache.

        The async tier installs its loop-confined
        :class:`~repro.server.cache.AsyncResultCache` here so
        ``/stats`` reports the cache actually serving.  The threaded
        request paths must not be driven concurrently with a
        loop-confined cache attached.
        """
        self._cache = cache

    def _entry(self, query: AnyQuery, results, version: int) -> _CachedResult:
        payload = {
            "version": version,
            **encode_results(results, isinstance(query, AggregateQuery)),
        }
        return _CachedResult(payload, canonical_json(payload))

    def prepare_query(self, text: str) -> Tuple[AnyQuery, str]:
        """Parse one query text into ``(query, canonical text)``."""
        with current_tracer().span("parse"):
            query = parse_query(text)
            return query, query_to_str(query)

    def compute_query_entry(
        self, query: AnyQuery, version: int
    ) -> Tuple[_CachedResult, bool]:
        """Run one query through the engine: ``(entry, cacheable)``.

        ``cacheable`` is the version-race check: a computation that ran
        at a later version than the one it was keyed under is returned
        fresh but must not be cached.  This is the blocking half of the
        single-flight miss path, shared verbatim by the threaded tier
        (called under :meth:`ResultCache.get_or_compute`) and the async
        tier (dispatched to an executor thread off the event loop).
        """
        results, actual = self._session_run([query])
        return self._entry(query, results[0], actual), actual == version

    def compute_batch_entries(
        self, queries: Sequence[AnyQuery], version: int
    ) -> Tuple[List[_CachedResult], bool]:
        """Run a batch's cache misses through **one** engine batch.

        Returns the entries aligned with ``queries`` plus the shared
        version-race verdict (one session run, one actual version).
        """
        results, actual = self._session_run(list(queries))
        entries = [
            self._entry(query, result, actual)
            for query, result in zip(queries, results)
        ]
        return entries, actual == version

    def _serve_query(self, text: str) -> _CachedResult:
        query, canonical = self.prepare_query(text)
        version = self._session.db_version()

        def compute() -> Tuple[_CachedResult, bool]:
            return self.compute_query_entry(query, version)

        return self._cache.get_or_compute(
            self._key(canonical, version), compute
        )

    def run_query(self, text: str) -> bytes:
        """Serve one query text: the ``POST /query`` body bytes.

        Cached under ``(canonical text, version, engine options)`` with
        single-flight deduplication — N concurrent identical requests
        run the engine once.
        """
        return self._serve_query(text).body

    def run_query_traced(self, text: str) -> bytes:
        """Serve one query with a span tree: ``POST /query?trace=1``.

        The envelope is ``{"result": <the /query payload>, "trace":
        <span tree>}`` — a different body than the untraced path by
        design, so the byte-identity contract of plain ``/query`` is
        untouched.  The tracer also feeds the server registry's
        ``repro_stage_seconds`` histogram, so traced requests
        contribute to the ``/metrics`` aggregates.
        """
        with tracing("query", registry=self._metrics) as tracer:
            entry = self._serve_query(text)
        return canonical_json(
            {"result": entry.payload, "trace": tracer.tree()}
        )

    def run_queries(self, texts: Sequence[str]) -> bytes:
        """Serve a query batch: the ``POST /batch`` body bytes.

        The cached prefix is collected first; the misses — deduplicated
        within the batch — run through **one** session batch, sharing
        plans, shard runs and interned provenance.  Each entry of the
        response carries the version it was computed at.
        """
        queries = [parse_query(text) for text in texts]
        canonicals = [query_to_str(query) for query in queries]
        version = self._session.db_version()
        entries: Dict[str, _CachedResult] = {}
        for canonical in dict.fromkeys(canonicals):
            cached = self._cache.get(self._key(canonical, version))
            if cached is not None:
                entries[canonical] = cached
        missing = [
            (canonical, query)
            for canonical, query in dict(zip(canonicals, queries)).items()
            if canonical not in entries
        ]
        if missing:
            computed, cacheable = self.compute_batch_entries(
                [query for _canonical, query in missing], version
            )
            for (canonical, _query), entry in zip(missing, computed):
                entries[canonical] = entry
                if cacheable:
                    self._cache.put(self._key(canonical, version), entry)
        payload = {
            "results": [entries[canonical].payload for canonical in canonicals]
        }
        return canonical_json(payload)

    def apply_update(self, payload) -> bytes:
        """Apply delta batches (the ``maintain`` JSON format) and bump
        the version: the ``POST /update`` body bytes.

        Registry mode maintains every materialized view incrementally;
        bare mode applies the changes to the database directly.  Either
        way the version moves, so every cached result keyed on the old
        version is dead without a scan, and the session refreshes
        automatically on its next evaluation.

        Every batch is validated against a *simulated* presence state
        before anything is applied, so deletes/retags of absent tuples
        reject the whole payload with nothing touched.  Failures the
        simulation cannot foresee (e.g. an annotation-reuse rejection
        deep in registry maintenance) abort mid-sequence; the error then
        reports exactly how many batches had already been committed.
        """
        deltas = deltas_from_payload(payload)
        summaries: List[str] = []
        changes = 0
        with self._session.lock:
            self._validate_deltas(deltas)  # nothing applied on failure
            applied = 0
            try:
                for delta in deltas:
                    if self._store is not None:
                        # Accepted means durable: the batch hits the WAL
                        # (fsynced) before any state or version moves.
                        # Recovery replays through the same apply paths,
                        # so a batch whose apply fails below fails the
                        # same way on replay.
                        self._store.log_update(delta_to_dict(delta))
                    if self._registry is not None:
                        summaries.append(self._registry.apply(delta).summary())
                    else:
                        apply_to_database(self._db, delta)
                    applied += 1
                    changes += delta.size()
            except ReproError as error:
                raise ReproError(
                    "{} (update batches 1-{} of {} were already applied; "
                    "db version is now {})".format(
                        error, applied, len(deltas), self._session.db_version()
                    )
                )
            version = self._session.db_version()
            if self._store is not None and self._store.should_rotate():
                self._store.snapshot(
                    self._db,
                    self._registry,
                    self._session.intern_table.export_state(),
                )
        response = {
            "version": version,
            "batches": len(deltas),
            "changes": changes,
        }
        if self._registry is not None:
            response["maintenance"] = summaries
        return canonical_json(response)

    def _validate_deltas(self, deltas: Sequence[Delta]) -> None:
        """Reject malformed payloads before touching anything.

        Simulates tuple presence across the whole batch sequence (apply
        order within a batch is deletes → inserts → retags), so a later
        batch may legally delete what an earlier one inserted, while a
        delete or retag of a tuple absent at its point in the sequence
        fails the entire payload with zero mutations — not as a
        half-applied batch's SchemaError.
        """
        added: set = set()
        removed: set = set()

        def present(relation: str, row) -> bool:
            key = (relation, row)
            if key in removed:
                return False
            return key in added or self._db.contains(relation, row)

        for delta in deltas:
            for relation, row in delta.deletes:
                if not present(relation, row):
                    raise ReproError(
                        "cannot delete absent tuple {}{}".format(
                            relation, tuple(row)
                        )
                    )
                added.discard((relation, row))
                removed.add((relation, row))
            for relation, row, _annotation in delta.inserts:
                removed.discard((relation, row))
                added.add((relation, row))
            for relation, row, _annotation in delta.retags:
                if not present(relation, row):
                    raise ReproError(
                        "cannot retag absent tuple {}{}".format(
                            relation, tuple(row)
                        )
                    )

    def read_view(self, name: str, base: bool = False) -> bytes:
        """Serve one materialized view: the ``GET /views/<name>`` body.

        View reads bypass the version-keyed cache entirely — the
        registry's provenance-driven invalidation already keeps the
        materialized table exact, so the read is a copy-and-encode.
        """
        if self._registry is None:
            raise ReproError(
                "no view program is being served; restart with --program "
                "to front a ViewRegistry"
            )
        with self._session.lock:
            results = self._registry.read_view(name, base=base)
            version = self._registry.db_version()
        payload = {
            "version": version,
            "view": name,
            **encode_results(
                results, name in self._registry.aggregate_names
            ),
        }
        return canonical_json(payload)

    # ------------------------------------------------------------------
    # Continuous queries (POST /v1/subscribe, GET /v1/changefeed/<id>)
    # ------------------------------------------------------------------
    def _require_hub(self):
        if self._hub is None:
            raise ReproError(
                "subscriptions need maintained views; restart with "
                "--program to front a ViewRegistry"
            )
        return self._hub

    def _fresh_view_name(self) -> str:
        """A view name for an anonymous subscription query."""
        existing = set(self._registry.program) | self._registry.serving_db.relations()
        while True:
            self._view_serial += 1
            candidate = "_sub_{}".format(self._view_serial)
            if candidate not in existing:
                return candidate

    def subscribe(self, payload) -> bytes:
        """Serve ``POST /v1/subscribe``: register a standing query.

        The body names an existing view (``{"view": name}``) or
        supplies a query to materialize (``{"query": text}``, optional
        ``"name"``).  Everything happens under the session lock so the
        returned ``snapshot`` + ``cursor`` are one atomic read: events
        with cursors past the returned one apply cleanly on top of the
        snapshot, with nothing lost in between.
        """
        from repro.server.subscriptions import UnknownViewError

        hub = self._require_hub()
        if not isinstance(payload, dict):
            raise ReproError(
                "POST /v1/subscribe expects {\"view\": name} or "
                "{\"query\": \"<rule text>\"}"
            )
        view = payload.get("view")
        text = payload.get("query")
        if (view is None) == (text is None):
            raise ReproError(
                "POST /v1/subscribe expects exactly one of \"view\" "
                "or \"query\""
            )
        with self._session.lock:
            registry = self._registry
            if text is not None:
                if not isinstance(text, str):
                    raise ReproError("\"query\" must be rule text")
                name = payload.get("name")
                if name is None:
                    name = self._fresh_view_name()
                elif not isinstance(name, str) or not name:
                    raise ReproError("\"name\" must be a non-empty string")
                query = parse_query(text)
                registry.add_view(name, query)  # EvaluationError -> 400
            else:
                if not isinstance(view, str):
                    raise ReproError("\"view\" must be a view name")
                name = view
                if name not in registry.program:
                    raise UnknownViewError(
                        "no view named {!r}; registry serves {}".format(
                            name, sorted(registry.program)
                        )
                    )
            cursor = registry.db_version()
            aggregate = name in registry.aggregate_names
            subscription = hub.subscribe(name, aggregate, cursor)
            snapshot = encode_results(registry.read_view(name), aggregate)
        return canonical_json(
            {
                "subscription": subscription.id,
                "view": name,
                "aggregate": aggregate,
                "cursor": cursor,
                "ring_size": hub.ring_size,
                "snapshot": snapshot,
            }
        )

    def unsubscribe(self, sub_id: str) -> bytes:
        """Serve ``DELETE /v1/changefeed/<id>``."""
        from repro.server.subscriptions import UnknownSubscriptionError

        hub = self._require_hub()
        if not hub.unsubscribe(sub_id):
            raise UnknownSubscriptionError(
                "no subscription {!r} (it may have been dropped)".format(
                    sub_id
                )
            )
        return canonical_json({"subscription": sub_id, "unsubscribed": True})

    def build_reset_event(self, subscription):
        """A full-snapshot ``reset`` event for a consumer off the ring.

        Read under the session lock: the cursor is the version the
        table was copied at, so deltas with later cursors (already in
        the ring or yet to come) apply cleanly on top.
        """
        from repro.io import changefeed_event_to_dict
        from repro.server.subscriptions import ChangefeedEvent

        with self._session.lock:
            state = self._registry.read_view(subscription.view)
            version = self._registry.db_version()
        self._hub.record_reset()
        return ChangefeedEvent(
            version,
            subscription.view,
            "reset",
            changefeed_event_to_dict(
                version, subscription.view, subscription.aggregate, state=state
            ),
        )

    def changefeed_events(self, subscription, cursor: int):
        """Ring events past ``cursor``, reset-aware (non-blocking).

        The shared consumption step of both tiers: returns the
        pre-encoded events to push, substituting one ``reset`` event
        when the cursor fell off the replay ring.
        """
        events, needs_reset = self._hub.events_after(subscription, cursor)
        if needs_reset:
            events = [self.build_reset_event(subscription)]
        if events:
            self._hub.record_delivered(len(events))
        return events

    def changefeed_poll(
        self, sub_id: str, cursor: Optional[int] = None, wait: float = 0.0
    ) -> bytes:
        """Serve the threaded tier's long-poll ``GET /v1/changefeed/<id>``.

        Blocks server-side up to ``wait`` seconds (capped at
        :data:`MAX_POLL_WAIT`) for events past ``cursor``, then answers
        ``{"events": [...], "cursor": next}`` — an empty list on
        timeout.  ``cursor`` defaults to the subscription's creation
        cursor (replaying everything the ring holds).
        """
        hub = self._require_hub()
        subscription = hub.get(sub_id)
        if cursor is None:
            cursor = subscription.created_cursor
        if wait and wait > 0:
            events, needs_reset = hub.wait_events(
                subscription, cursor, min(float(wait), MAX_POLL_WAIT)
            )
        else:
            events, needs_reset = hub.events_after(subscription, cursor)
        if needs_reset:
            events = [self.build_reset_event(subscription)]
        if events:
            hub.record_delivered(len(events))
        return canonical_json(
            {
                "subscription": subscription.id,
                "view": subscription.view,
                "cursor": events[-1].cursor if events else cursor,
                "events": [event.payload for event in events],
            }
        )

    def stats(self) -> dict:
        """The ``GET /stats`` payload: cache, request and session health."""
        with self._counter_lock:
            requests = {"active": self._active, "served": self._served}
        payload = {
            "db_version": self._session.db_version(),
            "engine": self._engine,
            "mode": "registry" if self._registry is not None else "session",
            "cache": self._cache.stats(),
            "requests": requests,
            "intern": self._session.intern_table.sizes(),
            "plan_cache": self._session.plan_cache.stats(),
            "metrics_enabled": self._metrics.enabled,
        }
        if self._metrics.enabled:
            payload["latency"] = {
                key[0]: histogram_percentiles(
                    self._request_latency, endpoint=key[0]
                )
                for key in sorted(self._request_latency.snapshot())
            }
        if self._registry is not None:
            payload["views"] = self._registry.order
        if self._hub is not None:
            payload["subscriptions"] = self._hub.stats()
        if self._store is not None:
            payload["durability"] = self._store.stats()
        return payload

    def __repr__(self) -> str:
        return "<ServerState engine={} {}>".format(
            self._engine,
            "registry" if self._registry is not None else "session",
        )


#: Default per-connection deadline (seconds) for reading one request —
#: the threaded server applies it as a socket timeout, the async tier
#: as header/body read deadlines.  A client that opens a connection or
#: sends headers without the promised body is cut loose after this
#: long instead of pinning a worker forever.
DEFAULT_REQUEST_TIMEOUT = 30.0


class ProvenanceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`ServerState`.

    Request threads are daemonic: an exiting process never hangs on a
    slow client, and tests can drop a server without draining it.  The
    listen backlog is raised well past socketserver's default of 5 —
    a 16-thread smoke load opening connections in a burst would
    otherwise see resets before a single request misbehaved.

    ``request_timeout`` is installed as each connection's socket
    timeout (see :meth:`ProvenanceRequestHandler.setup`): a stalled
    read — idle keep-alive, half-sent headers, a promised body that
    never arrives — raises ``socket.timeout`` instead of blocking the
    handler thread forever.
    """

    daemon_threads = True
    request_queue_size = 128

    def __init__(
        self,
        address,
        state: ServerState,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    ):  # noqa: D107
        # Imported here, not at module top: the handler module imports
        # this one for the shared JSON codec.
        from repro.server.handlers import ProvenanceRequestHandler

        self.state = state
        self.request_timeout = request_timeout
        super().__init__(address, ProvenanceRequestHandler)

    def close(self) -> None:
        """Stop accepting connections and release the serving state."""
        self.server_close()
        self.state.close()

    def __exit__(self, *_exc) -> None:
        self.close()


def make_server(
    db,
    host: str = "127.0.0.1",
    port: int = 0,
    program: Optional[Mapping[str, AnyQuery]] = None,
    config: Optional[EngineConfig] = None,
    engine: Optional[str] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    broadcast_threshold: Optional[int] = None,
    metrics: bool = True,
    data_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    max_subscriptions: Optional[int] = None,
    ring_size: Optional[int] = None,
    server_mode: Optional[str] = None,
    request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    idle_timeout: Optional[float] = None,
    max_pending: Optional[int] = None,
    stream_threshold: Optional[int] = None,
):
    """Bind a ready-to-run server (``port=0`` picks a free port).

    ``config`` is an :class:`~repro.config.EngineConfig` (or bare engine
    name); the scattered ``engine=``/``shards=``/``workers=`` keywords
    are deprecated shims over it.  ``server_mode`` (or
    ``config.server_mode``) picks the front end: ``"threaded"`` returns
    the classic :class:`ProvenanceServer`, ``"async"`` an
    :class:`~repro.server.aio.AsyncProvenanceServer` — both expose the
    same blocking facade (``server_address``, ``serve_forever()``,
    ``shutdown()``, ``close()``), so callers and tests treat them
    interchangeably.  ``idle_timeout``, ``max_pending`` and
    ``stream_threshold`` only apply to the async tier (``None`` keeps
    its defaults).

    >>> from repro.db.instance import AnnotatedDatabase
    >>> db = AnnotatedDatabase.from_rows({"R": [("a", "b")]})
    >>> server = make_server(db)
    >>> server.server_address[0]
    '127.0.0.1'
    >>> server.state.session.engine
    'hashjoin'
    >>> server.close()

    The caller owns the lifecycle: ``serve_forever()`` on a thread (or
    the CLI's foreground loop), then ``close()``.
    """
    if server_mode is not None:
        # Overlay onto the config *before* ServerState resolves it, so
        # state.config reflects the mode actually serving (and the
        # overlay goes through EngineConfig validation).
        if config is None:
            config = EngineConfig(server_mode=server_mode)
        elif isinstance(config, str):
            config = EngineConfig(engine=config, server_mode=server_mode)
        else:
            config = config.with_overrides(server_mode=server_mode)
    state = ServerState(
        db,
        program=program,
        config=config,
        engine=engine,
        shards=shards,
        workers=workers,
        cache_size=cache_size,
        broadcast_threshold=broadcast_threshold,
        metrics=metrics,
        data_dir=data_dir,
        snapshot_every=snapshot_every,
        max_subscriptions=max_subscriptions,
        ring_size=ring_size,
    )
    try:
        if state.config.server_mode == "async":
            # Imported lazily: aio imports this module for ServerState.
            from repro.server.aio import AsyncProvenanceServer

            aio_kwargs = {"request_timeout": request_timeout}
            if idle_timeout is not None:
                aio_kwargs["idle_timeout"] = idle_timeout
            if max_pending is not None:
                aio_kwargs["max_pending"] = max_pending
            if stream_threshold is not None:
                aio_kwargs["stream_threshold"] = stream_threshold
            return AsyncProvenanceServer((host, port), state, **aio_kwargs)
        return ProvenanceServer(
            (host, port), state, request_timeout=request_timeout
        )
    except BaseException:
        state.close()
        raise

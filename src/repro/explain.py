"""Human-readable derivation explanations (why and why-not).

Provenance polynomials answer "how was this tuple derived?" at the
algebraic level; this module renders the answer at the level of the
paper's assignments (Def. 2.6):

* :func:`explain_tuple` — every derivation of an output tuple: which
  adjunct fired, which database tuple each atom was mapped to, the
  resulting monomial, and whether the derivation survives into the
  core provenance;
* :func:`explain_missing` — a why-not account: for every adjunct, the
  deepest partial assignment reached and the first atom (or
  disequality) that could not be satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.db.instance import AnnotatedDatabase
from repro.direct.core_polynomial import core_monomials
from repro.engine.evaluate import assignments, evaluate
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Variable, is_variable
from repro.query.ucq import Query, adjuncts_of
from repro.semiring.polynomial import Monomial, Polynomial

Row = Tuple[Hashable, ...]


@dataclass(frozen=True)
class Derivation:
    """One derivation (assignment) of an output tuple."""

    adjunct_index: int
    adjunct: ConjunctiveQuery
    steps: Tuple[Tuple[str, Row, str], ...]  # (relation, tuple, annotation)
    monomial: Monomial
    in_core: bool

    def describe(self) -> str:
        """A one-paragraph rendering of this derivation."""
        lines = [
            "derivation via adjunct {}: {}".format(self.adjunct_index, self.adjunct)
        ]
        for atom, (relation, row, annotation) in zip(self.adjunct.atoms, self.steps):
            lines.append(
                "    {} matched {}{} [{}]".format(atom, relation, row, annotation)
            )
        lines.append(
            "    monomial {}{}".format(
                self.monomial.expanded_str(),
                "  (in core provenance)" if self.in_core else "",
            )
        )
        return "\n".join(lines)


def explain_tuple(
    query: Query, db: AnnotatedDatabase, output: Sequence[Hashable]
) -> List[Derivation]:
    """All derivations of ``output``, flagged with core membership.

    A derivation is *in the core* when its monomial's support is one of
    the core monomials of the tuple's provenance polynomial (Cor. 5.6).
    """
    output = tuple(output)
    polynomial = evaluate(query, db).get(output, Polynomial.zero())
    core_supports = {m for m in core_monomials(polynomial)}
    derivations: List[Derivation] = []
    for index, adjunct in enumerate(adjuncts_of(query)):
        for assignment in assignments(adjunct, db):
            if assignment.head_tuple() != output:
                continue
            steps = []
            for atom, row in zip(adjunct.atoms, assignment.atom_rows):
                steps.append((atom.relation, row, db.annotation_of(atom.relation, row)))
            monomial = assignment.monomial(db)
            derivations.append(
                Derivation(
                    adjunct_index=index,
                    adjunct=adjunct,
                    steps=tuple(steps),
                    monomial=monomial,
                    in_core=monomial.support() in core_supports,
                )
            )
    return derivations


@dataclass(frozen=True)
class MissingExplanation:
    """Why one adjunct fails to derive the requested tuple."""

    adjunct_index: int
    adjunct: ConjunctiveQuery
    atoms_satisfied: int
    blocking: str

    def describe(self) -> str:
        """A one-line rendering of the failure frontier."""
        return (
            "adjunct {} satisfied {} of {} atoms; blocked at {}".format(
                self.adjunct_index,
                self.atoms_satisfied,
                self.adjunct.size(),
                self.blocking,
            )
        )


def explain_missing(
    query: Query, db: AnnotatedDatabase, output: Sequence[Hashable]
) -> List[MissingExplanation]:
    """A why-not account for an absent output tuple.

    For each adjunct, finds the deepest prefix of its atom list that
    admits a partial assignment compatible with the requested head, and
    names the first atom (or a violated disequality / head mismatch)
    blocking the extension.  Raises ``ValueError`` when the tuple is in
    fact present.
    """
    output = tuple(output)
    if output in evaluate(query, db):
        raise ValueError("tuple {!r} is present; nothing to explain".format(output))

    explanations: List[MissingExplanation] = []
    for index, adjunct in enumerate(adjuncts_of(query)):
        explanations.append(_explain_adjunct(index, adjunct, db, output))
    return explanations


def _explain_adjunct(
    index: int,
    adjunct: ConjunctiveQuery,
    db: AnnotatedDatabase,
    output: Row,
) -> MissingExplanation:
    if adjunct.arity != len(output):
        return MissingExplanation(
            adjunct_index=index,
            adjunct=adjunct,
            atoms_satisfied=0,
            blocking="head arity {} differs from tuple arity {}".format(
                adjunct.arity, len(output)
            ),
        )
    # Seed the binding from the head: head constants must match.
    binding: Dict[Variable, Hashable] = {}
    for term, value in zip(adjunct.head.args, output):
        if isinstance(term, Constant):
            if term.value != value:
                return MissingExplanation(
                    adjunct_index=index,
                    adjunct=adjunct,
                    atoms_satisfied=0,
                    blocking="head constant {} != requested {}".format(
                        term, value
                    ),
                )
        else:
            if term in binding and binding[term] != value:
                return MissingExplanation(
                    adjunct_index=index,
                    adjunct=adjunct,
                    atoms_satisfied=0,
                    blocking="head repeats {} with conflicting values".format(term),
                )
            binding[term] = value

    best_depth = -1
    best_blocking = ""

    def diseq_violation(current: Dict[Variable, Hashable]) -> Optional[str]:
        for dis in adjunct.disequalities:
            left = (
                current.get(dis.left)
                if is_variable(dis.left)
                else dis.left.value
            )
            right = (
                current.get(dis.right)
                if is_variable(dis.right)
                else dis.right.value
            )
            if left is not None and right is not None and left == right:
                return str(dis)
        return None

    def extend(position: int, current: Dict[Variable, Hashable]) -> None:
        nonlocal best_depth, best_blocking
        if position > best_depth:
            best_depth = position
            if position == adjunct.size():
                best_blocking = "nothing — all atoms satisfiable"
            else:
                best_blocking = "atom {}".format(adjunct.atoms[position])
        if position == adjunct.size():
            return
        atom = adjunct.atoms[position]
        for row in db.rows(atom.relation):
            if len(row) != atom.arity:
                continue
            trial = dict(current)
            ok = True
            for term, value in zip(atom.args, row):
                if isinstance(term, Constant):
                    if term.value != value:
                        ok = False
                        break
                else:
                    if term in trial and trial[term] != value:
                        ok = False
                        break
                    trial[term] = value
            if not ok:
                continue
            violated = diseq_violation(trial)
            if violated is not None:
                if position + 1 > best_depth:
                    best_depth = position + 1
                    best_blocking = "disequality {}".format(violated)
                continue
            extend(position + 1, trial)

    extend(0, binding)
    return MissingExplanation(
        adjunct_index=index,
        adjunct=adjunct,
        atoms_satisfied=max(best_depth, 0),
        blocking=best_blocking,
    )

"""Columnar annotation tables: flat int columns for interned provenance.

The sharded engine's merge stages used to move ``{head: {monomial id:
coefficient}}`` dict-of-dicts across shard boundaries and remap them
entry by entry — the two serial stages that made sharded execution
slower than the serial hash join (see ``benchmarks/traces/``).  This
module stores a shard's results as four flat columns instead:

* ``heads`` — the output tuples, one entry per result row;
* ``offsets`` — ``len(heads) + 1`` prefix offsets into the pair columns;
* ``mids`` — interned monomial ids (``array('q')``);
* ``coeffs`` — the matching coefficients (``array('q')``).

Polynomial addition over these columns is a counter-merge over int
arrays; remapping a whole shard result into the parent's intern table
is one gather through a dense ``local id -> global id`` array —
vectorized through numpy when available, a plain loop otherwise.  The
same layout (columns + offsets) is what the shared-memory payload codec
(:mod:`repro.db.sharding`) and the future multi-node wire format use.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.algebra.intern import InternTable
from repro.semiring.polynomial import Monomial, Polynomial

try:  # pragma: no cover - exercised indirectly on hosts with numpy
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback path
    _np = None

#: Below this many pairs the plain-python remap loop beats the numpy
#: round trip (asarray + gather + frombytes).
_VECTORIZE_THRESHOLD = 256


class ColumnarTable:
    """One relation's interned annotations as flat columns.

    Immutable in spirit: the engine builds a table once per (adjunct,
    shard) evaluation and only :meth:`remap` rewrites ``mids`` (in
    place, before the table is published to any reader).
    """

    __slots__ = ("heads", "offsets", "mids", "coeffs")

    def __init__(
        self,
        heads: List,
        offsets: "array",
        mids: "array",
        coeffs: "array",
    ):  # noqa: D107
        self.heads = heads
        self.offsets = offsets
        self.mids = mids
        self.coeffs = coeffs

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_results(
        cls, results: Mapping[tuple, Mapping[int, int]]
    ) -> "ColumnarTable":
        """Flatten ``{head: {monomial id: coefficient}}`` into columns."""
        heads: List = []
        offsets = array("q", [0])
        mids = array("q")
        coeffs = array("q")
        append_head = heads.append
        append_offset = offsets.append
        for head, annotation in results.items():
            append_head(head)
            mids.extend(annotation.keys())
            coeffs.extend(annotation.values())
            append_offset(len(mids))
        return cls(heads, offsets, mids, coeffs)

    @classmethod
    def concat(cls, tables: Sequence["ColumnarTable"]) -> "ColumnarTable":
        """Stack tables end to end (heads may repeat across inputs).

        Used to splice per-shard segments into one per-adjunct table;
        duplicate heads are resolved by :func:`decode_polynomials`,
        which *adds* their pair runs — polynomial addition in ``N[X]``.
        """
        if len(tables) == 1:
            return tables[0]
        heads: List = []
        offsets = array("q", [0])
        mids = array("q")
        coeffs = array("q")
        for table in tables:
            base = len(mids)
            heads.extend(table.heads)
            mids.extend(table.mids)
            coeffs.extend(table.coeffs)
            table_offsets = table.offsets
            offsets.extend(
                base + table_offsets[i]
                for i in range(1, len(table_offsets))
            )
        return cls(heads, offsets, mids, coeffs)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def remap(self, mapping: Sequence[int]) -> None:
        """Rewrite every monomial id through ``mapping`` (a dense array).

        The cross-shard intern merge: a worker table's local ids become
        the parent table's global ids in one gather.  numpy turns this
        into a single fancy-indexing kernel; the fallback loop is still
        linear in the pair count (never in the table sizes).
        """
        mids = self.mids
        if _np is not None and len(mids) >= _VECTORIZE_THRESHOLD:
            gathered = _np.asarray(mapping, dtype=_np.int64)[
                _np.frombuffer(mids, dtype=_np.int64)
            ]
            fresh = array("q")
            fresh.frombytes(gathered.tobytes())
            self.mids = fresh
        else:
            self.mids = array("q", [mapping[mid] for mid in mids])

    def tuple_count(self) -> int:
        """Number of result rows (head occurrences, duplicates counted)."""
        return len(self.heads)

    def pair_count(self) -> int:
        """Number of ``(monomial id, coefficient)`` pairs."""
        return len(self.mids)

    def to_results(self) -> Dict[tuple, Dict[int, int]]:
        """Expand back into ``{head: {monomial id: coefficient}}``.

        The inverse of :meth:`from_results` (duplicate heads merge by
        addition); used by tests and the dict-path interop seams.
        """
        merged: Dict[tuple, Dict[int, int]] = {}
        offsets = self.offsets
        mids = self.mids.tolist()
        coeffs = self.coeffs.tolist()
        for i, head in enumerate(self.heads):
            lo, hi = offsets[i], offsets[i + 1]
            bucket = merged.get(head)
            if bucket is None:
                merged[head] = dict(zip(mids[lo:hi], coeffs[lo:hi]))
            else:
                for j in range(lo, hi):
                    mid = mids[j]
                    bucket[mid] = bucket.get(mid, 0) + coeffs[j]
        return merged

    def __repr__(self) -> str:
        return "<ColumnarTable {} heads, {} pairs>".format(
            len(self.heads), len(self.mids)
        )


#: What the merge kernels accept: columnar segments or the legacy
#: dict-of-dicts annotation tables (the two paths stay differential-
#: testable against each other).
AnnotationTable = Union[ColumnarTable, Mapping[tuple, Mapping[int, int]]]


def merge_annotations(
    tables: Iterable[AnnotationTable],
) -> Dict[tuple, Dict[int, int]]:
    """Counter-merge annotation tables into ``{head: {mid: coefficient}}``.

    Accepts any mix of :class:`ColumnarTable` and dict tables; repeated
    inputs contribute once per occurrence (UCQ union semantics) and
    duplicate monomial ids add coefficients — polynomial addition over
    int keys, deferred monomial decoding.
    """
    merged: Dict[tuple, Dict[int, int]] = {}
    for table in tables:
        if isinstance(table, ColumnarTable):
            offsets = table.offsets
            mids = table.mids.tolist()
            coeffs = table.coeffs.tolist()
            for i, head in enumerate(table.heads):
                lo, hi = offsets[i], offsets[i + 1]
                bucket = merged.get(head)
                if bucket is None:
                    merged[head] = dict(zip(mids[lo:hi], coeffs[lo:hi]))
                else:
                    for j in range(lo, hi):
                        mid = mids[j]
                        bucket[mid] = bucket.get(mid, 0) + coeffs[j]
        else:
            for head, annotation in table.items():
                bucket = merged.get(head)
                if bucket is None:
                    merged[head] = dict(annotation)
                else:
                    for mid, coefficient in annotation.items():
                        bucket[mid] = bucket.get(mid, 0) + coefficient
    return merged


def _as_int_list(column) -> Sequence[int]:
    """``array``/ndarray columns to plain int lists; sequences pass through."""
    tolist = getattr(column, "tolist", None)
    return tolist() if tolist is not None else column


def _eager_polynomial(terms: Dict[Monomial, int]) -> Polynomial:
    """Pickle target: rebuild a lazy polynomial as a plain eager one."""
    return Polynomial._from_clean(terms)


class LazyPolynomial(Polynomial):
    """A :class:`Polynomial` that decodes its monomials on first use.

    The engines' merge stages work entirely over interned monomial ids;
    turning those ids into canonical :class:`Monomial` keys is a pure
    per-result cost that a caller only pays for the polynomials it
    actually inspects.  Instances hold the intern table plus the merged
    ``(monomial id, coefficient)`` columns and build the Monomial-keyed
    term dict lazily, caching it — every inherited operation (equality,
    algebra, printing, ordering) goes through ``_terms`` and therefore
    works transparently.

    Storage forms: ``coeffs is None`` means ``mids`` is a ``{monomial
    id: coefficient}`` mapping; otherwise ``mids``/``coeffs`` are
    parallel int columns (``array``, ndarray slice, list, ...).  The
    columns must not be mutated after construction.
    """

    __slots__ = ("_intern", "_mids", "_coeffs", "_decoded_terms")

    def __init__(
        self, intern: InternTable, mids, coeffs=None
    ):  # noqa: D107 - see class docstring
        self._intern = intern
        self._mids = mids
        self._coeffs = coeffs
        self._decoded_terms: Optional[Dict[Monomial, int]] = None

    @property
    def _terms(self) -> Dict[Monomial, int]:  # type: ignore[override]
        terms = self._decoded_terms
        if terms is None:
            monomial = self._intern.monomial
            if self._coeffs is None:
                items = self._mids.items()
            else:
                items = zip(_as_int_list(self._mids), _as_int_list(self._coeffs))
            terms = {}
            for mid, coefficient in items:
                if coefficient > 0:
                    key = monomial(mid)
                    existing = terms.get(key)
                    terms[key] = (
                        coefficient if existing is None else existing + coefficient
                    )
            self._decoded_terms = terms
        return terms

    def __reduce__(self):
        # Pickle as an eager Polynomial: workers/caches must not carry
        # a whole intern table along with every result value.
        return (_eager_polynomial, (dict(self._terms),))


def _decode_columnar_vectorized(
    table: ColumnarTable, intern: InternTable
) -> Dict[tuple, Polynomial]:
    """Group-merge one columnar table by head with numpy kernels.

    Equivalent to ``merge_annotations([table])`` + decode, but the
    counter-merge is a ``lexsort`` + ``reduceat`` over the flat int
    columns instead of 100k+ Python dict operations, and the decoded
    output is a :class:`LazyPolynomial` per head sliced straight out of
    the merged columns.
    """
    # One Python pass assigns dense ids to (possibly repeated) heads;
    # everything after runs at C speed over int64 arrays.
    head_ids: Dict[tuple, int] = {}
    run_ids = [head_ids.setdefault(head, len(head_ids)) for head in table.heads]
    offsets = _np.frombuffer(table.offsets, dtype=_np.int64)
    pair_heads = _np.repeat(
        _np.asarray(run_ids, dtype=_np.int64), _np.diff(offsets)
    )
    mids = _np.frombuffer(table.mids, dtype=_np.int64)
    coeffs = _np.frombuffer(table.coeffs, dtype=_np.int64)

    # Sort pairs by (head id, monomial id).  When both keys fit one
    # int64 a packed single-key argsort is ~2x faster than lexsort;
    # monomial ids are unbounded in principle, so fall back otherwise.
    max_mid = int(mids.max()) if len(mids) else 0
    shift = max_mid.bit_length()
    head_bits = max(len(head_ids) - 1, 0).bit_length()
    if max_mid >= 0 and int(mids.min()) >= 0 and shift + head_bits < 63:
        order = _np.argsort((pair_heads << shift) | mids, kind="stable")
    else:
        order = _np.lexsort((mids, pair_heads))
    sorted_heads = pair_heads[order]
    sorted_mids = mids[order]

    # Coefficients of equal (head, monomial id) pairs add up: boundaries
    # where either key changes delimit the reduceat segments.
    boundaries = _np.empty(len(order), dtype=bool)
    boundaries[0] = True
    _np.not_equal(sorted_heads[1:], sorted_heads[:-1], out=boundaries[1:])
    boundaries[1:] |= sorted_mids[1:] != sorted_mids[:-1]
    starts = _np.flatnonzero(boundaries)
    merged_heads = sorted_heads[starts]
    merged_mids = sorted_mids[starts]
    merged_coeffs = _np.add.reduceat(coeffs[order], starts)

    head_breaks = _np.empty(len(merged_heads), dtype=bool)
    head_breaks[0] = True
    _np.not_equal(merged_heads[1:], merged_heads[:-1], out=head_breaks[1:])
    head_start_array = _np.flatnonzero(head_breaks)
    owner_ids = merged_heads[head_start_array].tolist()
    head_starts = head_start_array.tolist()
    head_starts.append(len(merged_heads))

    heads_by_id = list(head_ids)
    results: Dict[tuple, Polynomial] = {}
    new_lazy = LazyPolynomial.__new__
    for k, owner in enumerate(owner_ids):
        lo = head_starts[k]
        hi = head_starts[k + 1]
        # Inlined LazyPolynomial construction: this loop runs once per
        # result tuple and the constructor call is pure overhead here.
        value = new_lazy(LazyPolynomial)
        value._intern = intern
        value._mids = merged_mids[lo:hi]
        value._coeffs = merged_coeffs[lo:hi]
        value._decoded_terms = None
        results[heads_by_id[owner]] = value
    if len(results) < len(heads_by_id):
        # Heads whose pair run was empty decode to the zero polynomial
        # (they never reach the pair columns, so the grouping skips them).
        for head in heads_by_id:
            if head not in results:
                results[head] = Polynomial.zero()
    return results


def decode_polynomials(
    tables: Iterable[AnnotationTable], intern: InternTable
) -> Dict[tuple, Polynomial]:
    """Merge annotation tables and decode them against ``intern``.

    The session/executor result boundary: everything upstream stayed in
    int-keyed columns; here duplicate heads counter-merge (polynomial
    addition) and each head gets a :class:`LazyPolynomial` view over the
    merged columns — monomial ids become :class:`Monomial` keys only
    when a caller first touches the value.  With numpy and all-columnar
    inputs the merge itself is a vectorized sort/reduce; the fallback
    is the plain dict merge of :func:`merge_annotations`.
    """
    tables = list(tables)
    if (
        _np is not None
        and tables
        and all(isinstance(table, ColumnarTable) for table in tables)
    ):
        concatenated = ColumnarTable.concat(tables)
        if concatenated.pair_count() >= _VECTORIZE_THRESHOLD:
            return _decode_columnar_vectorized(concatenated, intern)
    return {
        head: LazyPolynomial(intern, annotation)
        for head, annotation in merge_annotations(tables).items()
    }

"""Positive relational algebra on K-relations (Green et al., PODS 2007).

The paper's provenance model is defined via annotated relational
algebra: a K-relation maps tuples to annotations from a commutative
semiring K, and the positive operators combine annotations —
selection/projection with ``+`` over merged tuples, join with ``*``,
union with ``+``.  This package implements that substrate generically
over any :class:`~repro.semiring.base.Semiring` and provides a
compiler from CQ≠/UCQ≠ into algebra plans.

With K = N[X] the algebra is a third, independent evaluation engine:
tests check it against the backtracking engine and the SQLite engine.
With other semirings it evaluates queries directly under Boolean,
counting, tropical, Why, ... semantics.
"""

from repro.algebra.columnar import (
    ColumnarTable,
    LazyPolynomial,
    decode_polynomials,
    merge_annotations,
)
from repro.algebra.compile import compile_query_to_plan, evaluate_via_algebra
# GLOBAL_INTERN is deliberately not re-exported: shared_intern() swaps
# the module-level binding when the table outgrows its soft bound, and a
# package-level copy would pin the abandoned table forever.
from repro.algebra.intern import InternRemapper, InternTable, shared_intern
from repro.algebra.krelation import KRelation
from repro.algebra.operators import (
    Join,
    Plan,
    Projection,
    RelationScan,
    Rename,
    Selection,
    Union,
)

__all__ = [
    "InternTable",
    "InternRemapper",
    "shared_intern",
    "ColumnarTable",
    "LazyPolynomial",
    "merge_annotations",
    "decode_polynomials",
    "KRelation",
    "Plan",
    "RelationScan",
    "Selection",
    "Projection",
    "Join",
    "Rename",
    "Union",
    "compile_query_to_plan",
    "evaluate_via_algebra",
]

"""The tensor product ``N[X] ⊗ M``: semimodule-annotated aggregates.

An aggregated value is kept *symbolic* as a finite formal sum

``Σ_i  p_i ⊗ m_i``

of simple tensors pairing a provenance polynomial ``p_i ∈ N[X]`` with an
aggregation-monoid value ``m_i ∈ M``, modulo the tensor congruences

* ``(p + p') ⊗ m  ≡  p ⊗ m + p' ⊗ m``  (annotations of equal values merge),
* ``p ⊗ (m ⊕ m')  ≡  p ⊗ m + p ⊗ m'``  (values of equal annotations merge,
  applied on demand by :meth:`SemimoduleElement.condense`),
* ``0 ⊗ m ≡ 0`` and ``p ⊗ 0_M ≡ 0``  (trivial tensors vanish).

The normal form stored here groups tensors by monoid value (rule one is
applied eagerly), which keeps elements canonical and makes equality
decidable.  Specializing the provenance side under a valuation
``X → N`` turns each ``p_i`` into a multiplicity ``n_i`` and yields the
concrete aggregate ``⊕_i  n_i · m_i`` — the same homomorphic story as
plain polynomial provenance, lifted to the semimodule.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, Mapping, Tuple, Union

from repro.algebra.monoid import AggregationMonoid
from repro.errors import EvaluationError
from repro.semiring.evaluate import Valuation, evaluate_polynomial
from repro.semiring.natural import NaturalSemiring
from repro.semiring.polynomial import Monomial, Polynomial

_NAT = NaturalSemiring()

AnnotationLike = Union[str, Monomial, Polynomial]


def _as_polynomial(annotation: AnnotationLike) -> Polynomial:
    if isinstance(annotation, Polynomial):
        return annotation
    if isinstance(annotation, Monomial):
        return Polynomial({annotation: 1})
    if isinstance(annotation, str):
        return Polynomial.variable(annotation)
    raise TypeError(
        "annotations must be symbols, monomials or polynomials, got "
        "{!r}".format(annotation)
    )


def _value_sort_key(value: Hashable) -> Tuple[str, str]:
    return (type(value).__name__, repr(value))


class SemimoduleElement:
    """An element of ``N[X] ⊗ M`` in value-grouped normal form.

    >>> from repro.algebra.monoid import monoid_for
    >>> e = SemimoduleElement.tensor("s1", 5, monoid_for("sum"))
    >>> e += SemimoduleElement.tensor("s2", 5, monoid_for("sum"))
    >>> e += SemimoduleElement.tensor("s3", 2, monoid_for("sum"))
    >>> str(e)
    'sum[s3⊗2 + (s1 + s2)⊗5]'
    >>> e.specialize({"s1": 0, "s2": 1, "s3": 1})
    7
    """

    __slots__ = ("_monoid", "_terms")

    def __init__(
        self,
        monoid: AggregationMonoid,
        terms: Mapping[Hashable, Polynomial] = (),
    ):  # noqa: D107
        self._monoid = monoid
        cleaned: Dict[Hashable, Polynomial] = {}
        for value, polynomial in dict(terms).items():
            if not isinstance(polynomial, Polynomial):
                raise TypeError(
                    "tensor annotations must be Polynomial instances"
                )
            # Validate before the congruence drops anything: a bad value
            # must raise (as the plain-aggregate oracle does), not vanish
            # because it happens to equal the identity (MIN/MAX's ABSENT).
            monoid.validate(value)
            if polynomial.is_zero() or value == monoid.identity:
                continue  # 0 ⊗ m  and  p ⊗ 0_M  vanish
            cleaned[value] = polynomial
        self._terms = cleaned

    # -- constructors ---------------------------------------------------
    @classmethod
    def zero(cls, monoid: AggregationMonoid) -> "SemimoduleElement":
        """The zero element (the annotation of an empty group)."""
        return cls(monoid)

    @classmethod
    def tensor(
        cls,
        annotation: AnnotationLike,
        value: Hashable,
        monoid: AggregationMonoid,
    ) -> "SemimoduleElement":
        """The simple tensor ``annotation ⊗ value``."""
        return cls(monoid, {value: _as_polynomial(annotation)})

    # -- structure ------------------------------------------------------
    @property
    def monoid(self) -> AggregationMonoid:
        """The aggregation monoid M."""
        return self._monoid

    def terms(self) -> Dict[Hashable, Polynomial]:
        """A fresh ``{value: annotation polynomial}`` dictionary."""
        return dict(self._terms)

    def values(self) -> Tuple[Hashable, ...]:
        """The distinct monoid values, deterministically ordered."""
        return tuple(sorted(self._terms, key=_value_sort_key))

    def support(self) -> frozenset:
        """All annotation symbols mentioned by any tensor."""
        symbols = set()
        for polynomial in self._terms.values():
            symbols.update(polynomial.support())
        return frozenset(symbols)

    def is_zero(self) -> bool:
        """True when no tensor remains (no contribution at all)."""
        return not self._terms

    def tensor_count(self) -> int:
        """Number of simple-tensor occurrences in expanded form."""
        return sum(p.monomial_count() for p in self._terms.values())

    # -- algebra ----------------------------------------------------------
    def __add__(self, other: "SemimoduleElement") -> "SemimoduleElement":
        if not isinstance(other, SemimoduleElement):
            return NotImplemented
        if other._monoid.name != self._monoid.name:
            raise EvaluationError(
                "cannot add {} and {} semimodule elements".format(
                    self._monoid.name, other._monoid.name
                )
            )
        terms = dict(self._terms)
        for value, polynomial in other._terms.items():
            previous = terms.get(value)
            terms[value] = (
                polynomial if previous is None else previous + polynomial
            )
        return SemimoduleElement(self._monoid, terms)

    def scale(self, annotation: AnnotationLike) -> "SemimoduleElement":
        """The K-action ``k · (p ⊗ m) = (k p) ⊗ m`` applied termwise.

        Joining an aggregated tuple against further atoms multiplies its
        annotation by theirs; the value side is untouched.
        """
        factor = _as_polynomial(annotation)
        return SemimoduleElement(
            self._monoid,
            {value: factor * p for value, p in self._terms.items()},
        )

    def condense(self) -> "SemimoduleElement":
        """Apply ``p ⊗ m + p ⊗ m' ≡ p ⊗ (m ⊕ m')`` exhaustively.

        Tensors with *equal* annotation polynomials merge their values
        through the monoid — the paper's compaction congruence, most
        effective for the idempotent MIN/MAX monoids.

        >>> from repro.algebra.monoid import monoid_for
        >>> e = (SemimoduleElement.tensor("s1", 4, monoid_for("min"))
        ...      + SemimoduleElement.tensor("s1", 9, monoid_for("min")))
        >>> str(e.condense())
        'min[s1⊗4]'
        """
        by_polynomial: Dict[Polynomial, Hashable] = {}
        for value in self.values():
            polynomial = self._terms[value]
            previous = by_polynomial.get(polynomial)
            by_polynomial[polynomial] = (
                value
                if previous is None
                else self._monoid.combine(previous, value)
            )
        merged: Dict[Hashable, Polynomial] = {}
        for polynomial, value in by_polynomial.items():
            previous = merged.get(value)
            merged[value] = (
                polynomial if previous is None else previous + polynomial
            )
        return SemimoduleElement(self._monoid, merged)

    def map_symbols(self, mapping: Mapping[str, str]) -> "SemimoduleElement":
        """Rename annotation symbols in every tensor (Sec. 6 re-tagging)."""
        return self.map_polynomials(lambda p: p.map_symbols(mapping))

    def map_polynomials(
        self, transform: Callable[[Polynomial], Polynomial]
    ) -> "SemimoduleElement":
        """Rewrite every annotation polynomial (e.g. expansion to base).

        Zero results drop their tensor, preserving the normal form.
        """
        return SemimoduleElement(
            self._monoid,
            {value: transform(p) for value, p in self._terms.items()},
        )

    # -- specialization ---------------------------------------------------
    def specialize(self, valuation: Valuation) -> Hashable:
        """The concrete aggregate under a valuation ``X → N``.

        Each annotation polynomial evaluates to a derivation
        multiplicity ``n_i``; the result is ``⊕_i n_i · m_i`` — the
        monoid identity when nothing survives (``0`` for SUM/COUNT,
        :data:`~repro.algebra.monoid.ABSENT` for MIN/MAX).
        """
        result = self._monoid.identity
        for value in self.values():
            multiplicity = evaluate_polynomial(
                self._terms[value], _NAT, valuation
            )
            result = self._monoid.combine(
                result, self._monoid.act(multiplicity, value)
            )
        return result

    # -- protocol ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SemimoduleElement):
            return NotImplemented
        return (
            self._monoid.name == other._monoid.name
            and self._terms == other._terms
        )

    def __hash__(self) -> int:
        return hash(
            (self._monoid.name, frozenset(self._terms.items()))
        )

    def __iter__(self) -> Iterator[Tuple[Hashable, Polynomial]]:
        for value in self.values():
            yield value, self._terms[value]

    def __str__(self) -> str:
        if not self._terms:
            return "{}[0]".format(self._monoid.name)
        parts = []
        for value, polynomial in self:
            if len(polynomial.terms) == 1 and polynomial.degree() <= 1:
                annotation = str(polynomial)
            else:
                annotation = "({})".format(polynomial)
            parts.append("{}⊗{!r}".format(annotation, value))
        return "{}[{}]".format(self._monoid.name, " + ".join(parts))

    def __repr__(self) -> str:
        return "<SemimoduleElement {}>".format(self)

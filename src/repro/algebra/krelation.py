"""K-relations: named-attribute relations annotated in a semiring.

A :class:`KRelation` has a tuple of attribute names and maps each row
(a tuple of domain values) to a nonzero annotation in some semiring K.
Rows annotated with the semiring zero are *absent* and never stored —
the invariant that makes K-relations finitely supported.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, Mapping, Tuple, TypeVar

from repro.errors import SchemaError
from repro.semiring.base import Semiring

V = TypeVar("V")
Row = Tuple[Hashable, ...]


class KRelation(Generic[V]):
    """A finitely-supported annotated relation over named attributes.

    >>> from repro.semiring.natural import NaturalSemiring
    >>> rel = KRelation(("a", "b"), NaturalSemiring())
    >>> rel.add(("x", "y"), 2)
    >>> rel.annotation(("x", "y"))
    2
    """

    def __init__(
        self,
        attributes: Iterable[str],
        semiring: Semiring[V],
        rows: Mapping[Row, V] = (),
    ):  # noqa: D107
        self._attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self._attributes)) != len(self._attributes):
            raise SchemaError(
                "attribute names must be distinct: {}".format(self._attributes)
            )
        self._semiring = semiring
        self._rows: Dict[Row, V] = {}
        for row, annotation in dict(rows).items():
            self.add(tuple(row), annotation)

    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute names, in order."""
        return self._attributes

    @property
    def semiring(self) -> Semiring[V]:
        """The annotation semiring K."""
        return self._semiring

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def add(self, row: Row, annotation: V) -> None:
        """Accumulate ``annotation`` onto ``row`` (semiring addition).

        Adding the semiring zero is a no-op; accumulating to zero
        removes the row, preserving the finite-support invariant.
        """
        row = tuple(row)
        if len(row) != len(self._attributes):
            raise SchemaError(
                "row arity {} does not match attributes {}".format(
                    len(row), self._attributes
                )
            )
        current = self._rows.get(row)
        if current is None:
            merged = annotation
        else:
            merged = self._semiring.add(current, annotation)
        if merged == self._semiring.zero:
            self._rows.pop(row, None)
        else:
            self._rows[row] = merged

    def annotation(self, row: Row) -> V:
        """The annotation of ``row`` (semiring zero when absent)."""
        return self._rows.get(tuple(row), self._semiring.zero)

    def rows(self) -> Iterator[Tuple[Row, V]]:
        """All (row, annotation) pairs with nonzero annotation."""
        return iter(list(self._rows.items()))

    def support(self) -> Iterator[Row]:
        """All present rows."""
        return iter(list(self._rows.keys()))

    def index_of(self, attribute: str) -> int:
        """Position of ``attribute``; raises on unknown names."""
        try:
            return self._attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                "unknown attribute {} (have {})".format(attribute, self._attributes)
            )

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KRelation):
            return NotImplemented
        return (
            self._attributes == other._attributes and self._rows == other._rows
        )

    def __repr__(self) -> str:
        return "<KRelation {} with {} rows>".format(self._attributes, len(self._rows))

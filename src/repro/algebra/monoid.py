"""Aggregation monoids: the ``M`` of the semimodule construction.

Aggregate queries compute their values in a commutative monoid
``(M, ⊕, 0_M)`` — ``SUM`` in ``(R, +, 0)``, ``COUNT`` in ``(N, +, 0)``,
``MIN``/``MAX`` in the lattice monoids ``(R ∪ {+∞}, min)`` /
``(R ∪ {-∞}, max)``.  Annotated aggregation pairs each contribution
with a provenance annotation inside the tensor product ``N[X] ⊗ M``
(see :mod:`repro.algebra.semimodule`); specializing an annotation needs
the *action* of the naturals on ``M``::

    n · m  =  m ⊕ m ⊕ ... ⊕ m   (n times, 0 · m = 0_M)

because a surviving derivation of multiplicity ``n`` contributes its
value ``n`` times under bag semantics.  The lattice monoids are
idempotent, so their action collapses to "present or absent".
"""

from __future__ import annotations

import abc
from typing import Hashable, Iterable, Optional

from repro.errors import EvaluationError

#: The absent value of the lattice monoids MIN and MAX: ``None`` plays
#: the role of the adjoined top (+∞) / bottom (-∞) identity element.
ABSENT = None


class AggregationMonoid(abc.ABC):
    """A commutative aggregation monoid with its natural-number action.

    ``linear`` marks the monoids whose action distributes over value
    addition (``SUM``/``COUNT``); expectations can be computed by
    linearity for exactly these (see :mod:`repro.apps.probability`).
    """

    #: Short name used by the parser (``sum(x)``) and in printed forms.
    name: str = "?"
    #: ``n · m == n * m`` over a numeric monoid; enables E[·] by linearity.
    linear: bool = False
    #: ``m ⊕ m == m``; the action collapses to presence for these.
    idempotent: bool = False

    @property
    @abc.abstractmethod
    def identity(self) -> Hashable:
        """The monoid identity ``0_M`` (the value of an empty group)."""

    @abc.abstractmethod
    def combine(self, a: Hashable, b: Hashable) -> Hashable:
        """The monoid operation ``a ⊕ b``."""

    def validate(self, value: Hashable) -> None:
        """Reject domain values the monoid cannot aggregate.

        Raises :class:`~repro.errors.EvaluationError`; the default
        accepts everything.
        """

    def act(self, n: int, m: Hashable) -> Hashable:
        """The N-semimodule action ``n · m`` (``n``-fold ``⊕``)."""
        if n < 0:
            raise EvaluationError("multiplicities must be nonnegative")
        if n == 0:
            return self.identity
        if self.idempotent:
            return m
        result = m
        for _ in range(n - 1):
            result = self.combine(result, m)
        return result

    def fold(self, values: Iterable[Hashable]) -> Hashable:
        """Fold :meth:`combine` over ``values`` (identity when empty)."""
        result = self.identity
        for value in values:
            result = self.combine(result, value)
        return result

    def __repr__(self) -> str:
        return type(self).__name__ + "()"


class SumMonoid(AggregationMonoid):
    """``SUM``: numbers under addition.

    >>> SumMonoid().fold([1, 2, 3.5])
    6.5
    """

    name = "sum"
    linear = True

    @property
    def identity(self) -> int:
        return 0

    def combine(self, a, b):
        return a + b

    def validate(self, value) -> None:
        if not isinstance(value, (int, float)):
            raise EvaluationError(
                "sum aggregates numbers, got {!r}".format(value)
            )

    def act(self, n: int, m):
        if n < 0:
            raise EvaluationError("multiplicities must be nonnegative")
        return n * m


class CountMonoid(AggregationMonoid):
    """``COUNT``: assignment counting, i.e. ``SUM`` of ones.

    >>> CountMonoid().fold([1, 1, 1])
    3
    """

    name = "count"
    linear = True

    @property
    def identity(self) -> int:
        return 0

    def combine(self, a, b):
        return a + b

    def validate(self, value) -> None:
        if not isinstance(value, int):
            raise EvaluationError(
                "count contributions must be integers, got {!r}".format(value)
            )

    def act(self, n: int, m):
        if n < 0:
            raise EvaluationError("multiplicities must be nonnegative")
        return n * m


class MinMonoid(AggregationMonoid):
    """``MIN``: the meet-semilattice monoid with adjoined top ``ABSENT``.

    >>> MinMonoid().fold([3, 1, 2])
    1
    >>> MinMonoid().fold([]) is ABSENT
    True
    """

    name = "min"
    idempotent = True

    @property
    def identity(self):
        return ABSENT

    def combine(self, a, b):
        if a is ABSENT:
            return b
        if b is ABSENT:
            return a
        return a if a <= b else b

    def validate(self, value) -> None:
        if value is ABSENT:
            raise EvaluationError("min cannot aggregate the absent value")


class MaxMonoid(AggregationMonoid):
    """``MAX``: the join-semilattice monoid with adjoined bottom ``ABSENT``.

    >>> MaxMonoid().fold([3, 1, 2])
    3
    """

    name = "max"
    idempotent = True

    @property
    def identity(self):
        return ABSENT

    def combine(self, a, b):
        if a is ABSENT:
            return b
        if b is ABSENT:
            return a
        return a if a >= b else b

    def validate(self, value) -> None:
        if value is ABSENT:
            raise EvaluationError("max cannot aggregate the absent value")


#: The supported aggregation operators, by parser name.
MONOIDS = {
    "sum": SumMonoid(),
    "count": CountMonoid(),
    "min": MinMonoid(),
    "max": MaxMonoid(),
}


def monoid_for(op: str) -> AggregationMonoid:
    """The monoid of an aggregation operator name (case-insensitive).

    >>> monoid_for("SUM").name
    'sum'
    """
    monoid: Optional[AggregationMonoid] = MONOIDS.get(op.lower())
    if monoid is None:
        raise EvaluationError(
            "unknown aggregation operator {!r}; supported: {}".format(
                op, ", ".join(sorted(MONOIDS))
            )
        )
    return monoid

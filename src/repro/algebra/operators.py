"""The positive relational-algebra operators on K-relations.

Each plan node evaluates bottom-up against a context (a mapping from
base-relation names to :class:`~repro.algebra.krelation.KRelation`):

* :class:`RelationScan` — a base relation;
* :class:`Selection` — filters rows by (dis)equality conditions,
  keeping annotations;
* :class:`Projection` — generalized projection: each output column is
  an input attribute or a constant; merged rows *add* their
  annotations (the semiring ``+`` of alternative derivations);
* :class:`Join` — natural join; matching rows *multiply* their
  annotations (the semiring ``*`` of joint use);
* :class:`Rename` — attribute renaming;
* :class:`Union` — same-schema union; annotations add.

These are exactly the K-relation operators of Green, Karvounarakis and
Tannen (PODS 2007), which the paper's Def. 2.12 provenance semantics
agrees with on CQ≠/UCQ≠ — an agreement the test suite checks
against both other engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence, Tuple

from repro.errors import EvaluationError, SchemaError
from repro.algebra.krelation import KRelation
from repro.semiring.base import Semiring

Row = Tuple[Hashable, ...]

# A selection condition: ("eq"/"neq", left, right) where each side is
# ("attr", name) or ("const", value).
Side = Tuple[str, Hashable]
Condition = Tuple[str, Side, Side]

# A projection column: ("attr", name) or ("const", value), plus the
# output attribute name.
OutputColumn = Tuple[str, str, Hashable]


class Plan:
    """Base class of algebra plan nodes."""

    def execute(
        self, context: Mapping[str, KRelation], semiring: Semiring
    ) -> KRelation:
        """Evaluate the plan bottom-up."""
        raise NotImplementedError

    def children(self) -> Sequence["Plan"]:
        """Direct sub-plans (for traversal/pretty-printing)."""
        return ()

    def describe(self, indent: int = 0) -> str:
        """A readable indented plan tree."""
        lines = ["  " * indent + self._label()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class RelationScan(Plan):
    """Scan a base relation from the context."""

    name: str

    def execute(self, context, semiring):
        if self.name not in context:
            raise EvaluationError("unknown base relation {}".format(self.name))
        relation = context[self.name]
        if relation.semiring is not semiring:
            raise EvaluationError(
                "relation {} is annotated in a different semiring".format(self.name)
            )
        return relation

    def _label(self):
        return "Scan({})".format(self.name)


def _resolve(side: Side, relation: KRelation, row: Row):
    kind, payload = side
    if kind == "attr":
        return row[relation.index_of(payload)]
    if kind == "const":
        return payload
    raise EvaluationError("bad condition side {!r}".format(side))


@dataclass(frozen=True)
class Selection(Plan):
    """Keep rows satisfying every (dis)equality condition."""

    child: Plan
    conditions: Tuple[Condition, ...]

    def children(self):
        return (self.child,)

    def execute(self, context, semiring):
        source = self.child.execute(context, semiring)
        result = KRelation(source.attributes, semiring)
        for row, annotation in source.rows():
            if all(self._holds(c, source, row) for c in self.conditions):
                result.add(row, annotation)
        return result

    @staticmethod
    def _holds(condition: Condition, relation: KRelation, row: Row) -> bool:
        op, left, right = condition
        left_value = _resolve(left, relation, row)
        right_value = _resolve(right, relation, row)
        if op == "eq":
            return left_value == right_value
        if op == "neq":
            return left_value != right_value
        raise EvaluationError("bad condition operator {!r}".format(op))

    def _label(self):
        return "Select({})".format(
            ", ".join(
                "{}{}{}".format(l[1], "=" if op == "eq" else "!=", r[1])
                for op, l, r in self.conditions
            )
        )


@dataclass(frozen=True)
class Projection(Plan):
    """Generalized projection; merged rows add their annotations."""

    child: Plan
    output: Tuple[OutputColumn, ...]  # (kind, out_name, payload)

    def children(self):
        return (self.child,)

    def execute(self, context, semiring):
        source = self.child.execute(context, semiring)
        names = tuple(name for _, name, _ in self.output)
        result = KRelation(names, semiring)
        for row, annotation in source.rows():
            values = []
            for kind, _, payload in self.output:
                if kind == "attr":
                    values.append(row[source.index_of(payload)])
                elif kind == "const":
                    values.append(payload)
                else:
                    raise EvaluationError("bad output column {!r}".format(kind))
            result.add(tuple(values), annotation)
        return result

    def _label(self):
        return "Project({})".format(", ".join(n for _, n, _ in self.output))


@dataclass(frozen=True)
class Join(Plan):
    """Natural join; matching rows multiply their annotations."""

    left: Plan
    right: Plan

    def children(self):
        return (self.left, self.right)

    def execute(self, context, semiring):
        left = self.left.execute(context, semiring)
        right = self.right.execute(context, semiring)
        shared = [a for a in left.attributes if a in right.attributes]
        right_extra = [a for a in right.attributes if a not in shared]
        attributes = tuple(left.attributes) + tuple(right_extra)
        result = KRelation(attributes, semiring)
        left_shared = [left.index_of(a) for a in shared]
        right_shared = [right.index_of(a) for a in shared]
        right_extra_idx = [right.index_of(a) for a in right_extra]
        # Hash join on the shared attributes.
        buckets = {}
        for row, annotation in right.rows():
            key = tuple(row[i] for i in right_shared)
            buckets.setdefault(key, []).append((row, annotation))
        for row, annotation in left.rows():
            key = tuple(row[i] for i in left_shared)
            for other_row, other_annotation in buckets.get(key, ()):
                extended = row + tuple(other_row[i] for i in right_extra_idx)
                result.add(extended, semiring.mul(annotation, other_annotation))
        return result

    def _label(self):
        return "Join"


@dataclass(frozen=True)
class Rename(Plan):
    """Rename attributes (a mapping from old to new names)."""

    child: Plan
    mapping: Tuple[Tuple[str, str], ...]

    def children(self):
        return (self.child,)

    def execute(self, context, semiring):
        source = self.child.execute(context, semiring)
        renames = dict(self.mapping)
        attributes = tuple(renames.get(a, a) for a in source.attributes)
        result = KRelation(attributes, semiring)
        for row, annotation in source.rows():
            result.add(row, annotation)
        return result

    def _label(self):
        return "Rename({})".format(
            ", ".join("{}->{}".format(a, b) for a, b in self.mapping)
        )


@dataclass(frozen=True)
class Union(Plan):
    """Same-schema union; annotations of shared rows add."""

    parts: Tuple[Plan, ...]

    def children(self):
        return self.parts

    def execute(self, context, semiring):
        if not self.parts:
            raise EvaluationError("union of zero plans")
        relations = [part.execute(context, semiring) for part in self.parts]
        attributes = relations[0].attributes
        for relation in relations[1:]:
            if relation.attributes != attributes:
                raise SchemaError(
                    "union schema mismatch: {} vs {}".format(
                        attributes, relation.attributes
                    )
                )
        result = KRelation(attributes, semiring)
        for relation in relations:
            for row, annotation in relation.rows():
                result.add(row, annotation)
        return result

    def _label(self):
        return "Union[{}]".format(len(self.parts))

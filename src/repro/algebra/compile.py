"""Compiling CQ≠/UCQ≠ into K-relation algebra plans.

Each relational atom becomes a scan renamed to positionally-unique
attributes; the atoms are joined (a cartesian product, since attribute
names are disjoint), a selection enforces variable equalities, constant
bindings and disequalities, and a generalized projection produces the
head.  Adjuncts of a union are compiled separately and united.

With K = N[X] and an abstractly-tagged database, executing the compiled
plan yields exactly the Def. 2.12 provenance polynomials — the test
suite checks this against both other engines.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Tuple

from repro.algebra.krelation import KRelation
from repro.algebra.operators import (
    Join,
    Plan,
    Projection,
    RelationScan,
    Rename,
    Selection,
    Union,
)
from repro.db.instance import AnnotatedDatabase
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Variable, is_variable
from repro.query.ucq import Query, adjuncts_of
from repro.semiring.base import Semiring
from repro.semiring.polynomial import Polynomial, ProvenancePolynomialSemiring

Row = Tuple[Hashable, ...]


def compile_cq_to_plan(query: ConjunctiveQuery) -> Plan:
    """Compile one conjunctive query into an algebra plan."""
    canonical_column: Dict[Variable, str] = {}
    conditions: List[Tuple] = []
    plan: Plan = None

    for index, atom in enumerate(query.atoms):
        columns = ["a{}_{}".format(index, position) for position in range(atom.arity)]
        base_names = ["c{}".format(position) for position in range(atom.arity)]
        scan: Plan = Rename(
            RelationScan(atom.relation),
            tuple(zip(base_names, columns)),
        )
        plan = scan if plan is None else Join(plan, scan)
        for position, term in enumerate(atom.args):
            column = columns[position]
            if is_variable(term):
                if term in canonical_column:
                    conditions.append(
                        ("eq", ("attr", column), ("attr", canonical_column[term]))
                    )
                else:
                    canonical_column[term] = column
            else:
                conditions.append(("eq", ("attr", column), ("const", term.value)))

    for dis in sorted(query.disequalities, key=lambda d: d.sort_key()):
        sides = []
        for term in dis.pair:
            if is_variable(term):
                sides.append(("attr", canonical_column[term]))
            else:
                sides.append(("const", term.value))
        conditions.append(("neq", sides[0], sides[1]))

    if conditions:
        plan = Selection(plan, tuple(conditions))

    output = []
    for position, term in enumerate(query.head.args):
        name = "h{}".format(position)
        if is_variable(term):
            output.append(("attr", name, canonical_column[term]))
        else:
            output.append(("const", name, term.value))
    return Projection(plan, tuple(output))


def compile_query_to_plan(query: Query) -> Plan:
    """Compile a CQ≠ or UCQ≠ into a plan (union of adjunct plans)."""
    plans = [compile_cq_to_plan(adjunct) for adjunct in adjuncts_of(query)]
    if len(plans) == 1:
        return plans[0]
    return Union(tuple(plans))


def database_as_krelations(
    db: AnnotatedDatabase,
) -> Mapping[str, KRelation[Polynomial]]:
    """View an annotated database as N[X]-valued K-relations."""
    semiring = _NX
    context: Dict[str, KRelation[Polynomial]] = {}
    for relation in sorted(db.relations()):
        arity = db.arity(relation)
        attributes = tuple("c{}".format(i) for i in range(arity))
        krelation = KRelation(attributes, semiring)
        for row, annotation in db.facts(relation):
            krelation.add(row, Polynomial.variable(annotation))
        context[relation] = krelation
    return context


_NX = ProvenancePolynomialSemiring()


def evaluate_via_algebra(
    query: Query, db: AnnotatedDatabase
) -> Dict[Row, Polynomial]:
    """Evaluate a query through the algebra engine under N[X].

    Returns the same ``{output tuple: polynomial}`` mapping as
    :func:`repro.engine.evaluate.evaluate` — the agreement is asserted
    by the differential tests.

    Adjuncts over relations absent from the database contribute
    nothing (matching the other engines).
    """
    context = dict(database_as_krelations(db))
    results: Dict[Row, Polynomial] = {}
    for adjunct in adjuncts_of(query):
        for relation in adjunct.relations():
            if relation not in context:
                arity = next(
                    atom.arity for atom in adjunct.atoms if atom.relation == relation
                )
                context[relation] = KRelation(
                    tuple("c{}".format(i) for i in range(arity)), _NX
                )
        plan = compile_cq_to_plan(adjunct)
        relation = plan.execute(context, _NX)
        for row, polynomial in relation.rows():
            previous = results.get(row, Polynomial.zero())
            results[row] = previous + polynomial
    return results


def evaluate_in_semiring(
    query: Query,
    db: AnnotatedDatabase,
    semiring: Semiring,
    valuation,
) -> Dict[Row, object]:
    """Evaluate a query directly under any commutative semiring.

    ``valuation`` maps each tuple annotation to a K-value.  By the
    universality of N[X], this equals specializing the provenance
    polynomials — asserted by tests, exercised by the applications.
    """
    context: Dict[str, KRelation] = {}
    for relation in sorted(db.relations()):
        arity = db.arity(relation)
        attributes = tuple("c{}".format(i) for i in range(arity))
        krelation = KRelation(attributes, semiring)
        for row, annotation in db.facts(relation):
            krelation.add(row, valuation(annotation))
        context[relation] = krelation
    results: Dict[Row, object] = {}
    for adjunct in adjuncts_of(query):
        for relation in adjunct.relations():
            if relation not in context:
                context[relation] = KRelation(
                    tuple(
                        "c{}".format(i)
                        for i in range(
                            next(
                                atom.arity
                                for atom in adjunct.atoms
                                if atom.relation == relation
                            )
                        )
                    ),
                    semiring,
                )
        plan = compile_cq_to_plan(adjunct)
        relation_result = plan.execute(context, semiring)
        for row, value in relation_result.rows():
            if row in results:
                results[row] = semiring.add(results[row], value)
            else:
                results[row] = value
    return results

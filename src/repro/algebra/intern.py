"""Interning of annotation symbols and provenance monomials.

The set-at-a-time engine (:mod:`repro.engine.hashjoin`) touches the
same few monomials millions of times: every hash-join step multiplies
every monomial of an intermediate annotation by one tuple symbol, and
every union/projection adds polynomials together.  Building
:class:`~repro.semiring.polynomial.Monomial` objects (sorted factor
multisets) for each of those operations would dominate the runtime, so
this module interns both layers:

* every annotation **symbol** becomes a small integer id;
* every **monomial** (a sorted tuple of symbol ids) becomes a small
  integer id, assigned once and reused forever;
* the hot operation — monomial × symbol — is a memoized table lookup,
  and polynomial addition degenerates to merging ``{monomial id:
  coefficient}`` dictionaries keyed by small integers.

Interned annotations are decoded back into canonical
:class:`~repro.semiring.polynomial.Polynomial` values only at result
boundaries, so callers never observe the encoding.

Sharing and lifetime: a table only ever grows, and the engine shares
one process-wide table across evaluations so refresh loops reuse every
memoized product.  Long-lived processes churning through disjoint
symbol spaces are protected by :func:`shared_intern`, which swaps in a
fresh table once the shared one crosses :data:`MAX_SHARED_ENTRIES` —
in-flight evaluations captured their reference at entry and finish on
the old table undisturbed.  Interning itself is thread-safe
(double-checked locking on the slow path; published entries are never
mutated outside :meth:`InternTable.clear`).
"""

from __future__ import annotations

import itertools
import threading
from bisect import insort
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.semiring.polynomial import Monomial, Polynomial

#: Interned annotation: monomial id -> positive coefficient.
InternedPolynomial = Dict[int, int]

#: Process-wide source of :attr:`InternTable.token` values.  A counter
#: (not ``id()``) so a table's token is never reused by a later table —
#: caches keyed on tokens stay sound across garbage collection.
_TOKEN_COUNTER = itertools.count(1)


class InternTable:
    """A grow-only intern table for symbols and monomials.

    >>> table = InternTable()
    >>> s1, s2 = table.symbol_id("s1"), table.symbol_id("s2")
    >>> m = table.times_symbol(table.one, s1)
    >>> m = table.times_symbol(m, s2)
    >>> str(table.monomial(m))
    's1*s2'
    >>> table.symbol_id("s1") == s1  # interning is idempotent
    True
    """

    __slots__ = (
        "_lock",
        "_symbol_ids",
        "_symbols",
        "_monomial_ids",
        "_monomial_keys",
        "_products",
        "_decoded",
        "_token",
        "one",
    )

    def __init__(self):  # noqa: D107
        # Guards first-time interning (check-then-act); lookups of
        # already-published entries stay lock-free — entries are
        # immutable once visible in the id dictionaries.
        self._lock = threading.Lock()
        self._token = next(_TOKEN_COUNTER)
        self._symbol_ids: Dict[str, int] = {}
        self._symbols: List[str] = []
        self._monomial_ids: Dict[Tuple[int, ...], int] = {}
        self._monomial_keys: List[Tuple[int, ...]] = []
        self._products: Dict[Tuple[int, int], int] = {}
        self._decoded: Dict[int, Monomial] = {}
        #: Id of the empty monomial (the multiplicative unit).
        self.one = self._intern(())

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------
    def symbol_id(self, symbol: str) -> int:
        """The id of ``symbol``, assigning a fresh one on first use."""
        existing = self._symbol_ids.get(symbol)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._symbol_ids.get(symbol)
            if existing is not None:
                return existing
            fresh = len(self._symbols)
            self._symbols.append(symbol)
            self._symbol_ids[symbol] = fresh  # publish after the append
            return fresh

    def symbol(self, symbol_id: int) -> str:
        """The symbol string of an id."""
        return self._symbols[symbol_id]

    # ------------------------------------------------------------------
    # Monomials
    # ------------------------------------------------------------------
    def _intern(self, key: Tuple[int, ...]) -> int:
        existing = self._monomial_ids.get(key)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._monomial_ids.get(key)
            if existing is not None:
                return existing
            fresh = len(self._monomial_keys)
            self._monomial_keys.append(key)
            self._monomial_ids[key] = fresh  # publish after the append
            return fresh

    def monomial_id(self, symbols: Iterable[str]) -> int:
        """Intern the monomial with the given symbol factors."""
        return self._intern(tuple(sorted(self.symbol_id(s) for s in symbols)))

    def times_symbol(self, monomial_id: int, symbol_id: int) -> int:
        """The id of ``monomial * symbol`` — the engine's hot operation.

        Memoized: after the first join over a database, every
        multiplication performed by a refresh loop is one dict lookup.
        """
        cached = self._products.get((monomial_id, symbol_id))
        if cached is not None:
            return cached
        factors = list(self._monomial_keys[monomial_id])
        insort(factors, symbol_id)
        product = self._intern(tuple(factors))
        # Unsynchronized publish is benign: racing writers computed the
        # same interned id for the same key.
        self._products[(monomial_id, symbol_id)] = product
        return product

    def monomial(self, monomial_id: int) -> Monomial:
        """Decode an id back into a canonical :class:`Monomial`."""
        cached = self._decoded.get(monomial_id)
        if cached is not None:
            return cached
        decoded = Monomial(
            self._symbols[s] for s in self._monomial_keys[monomial_id]
        )
        # Racing writers built equal Monomials; last write wins safely.
        self._decoded[monomial_id] = decoded
        return decoded

    @property
    def token(self) -> int:
        """A process-unique id of this table, never reused.

        Caches keyed on the *identity* of an intern table (join-step
        indexes storing interned symbol ids, cross-table remap arrays)
        key on this instead of ``id()``, which the allocator recycles.
        """
        return self._token

    def polynomial(self, terms: Mapping[int, int]) -> Polynomial:
        """Decode ``{monomial id: coefficient}`` into a polynomial.

        Ids decode to distinct monomials and engine coefficients are
        positive, so the term dictionary is adopted through the trusted
        constructor — decoding a 10k-join result this way is ~10x
        cheaper than re-validating every term.
        """
        monomial = self.monomial
        return Polynomial._from_clean(
            {
                monomial(mid): coefficient
                for mid, coefficient in terms.items()
                if coefficient > 0
            }
        )

    # ------------------------------------------------------------------
    # Cross-table merging (shard-local tables into a shared one)
    # ------------------------------------------------------------------
    def export_state(self) -> Tuple[List[str], List[Tuple[int, ...]]]:
        """A picklable ``(symbols, monomial keys)`` snapshot of this table.

        Worker shards intern into private tables and ship this snapshot
        home with their results; the parent rebuilds global ids through
        :meth:`remapper`.  Taken under the lock so the keys are
        consistent with every id handed out so far.
        """
        with self._lock:
            return list(self._symbols), list(self._monomial_keys)

    def export_range(
        self, symbol_start: int, monomial_start: int
    ) -> Tuple[List[str], List[Tuple[int, ...]]]:
        """The symbols and monomial keys interned since a watermark.

        Long-lived workers keep a table across evaluations and ship only
        the delta each time; the parent accumulates deltas into a full
        replica (keys reference symbol ids below the snapshot length, so
        contiguous deltas always splice cleanly).  Taken under the lock
        for the same consistency :meth:`export_state` guarantees.
        """
        with self._lock:
            return (
                self._symbols[symbol_start:],
                self._monomial_keys[monomial_start:],
            )

    def remapper(self, symbols: List[str], monomial_keys: List[Tuple[int, ...]]):
        """A function mapping another table's monomial ids into this one.

        ``symbols``/``monomial_keys`` are the other table's
        :meth:`export_state`.  Remapped monomials are *identical* as
        symbol multisets — only the integer ids change — so merged
        annotations decode to the same polynomials the source table
        would produce.  The returned closure captures ``self``: a merge
        keeps writing into the table it started with even if
        :func:`shared_intern` swaps the shared table mid-merge (the
        merge-after-swap regression).

        >>> local, shared = InternTable(), InternTable()
        >>> m = local.times_symbol(local.one, local.symbol_id("z"))
        >>> remap = shared.remapper(*local.export_state())
        >>> str(shared.monomial(remap(m)))
        'z'
        """
        symbol_ids = [self.symbol_id(symbol) for symbol in symbols]
        cache: Dict[int, int] = {}

        def remap(monomial_id: int) -> int:
            mapped = cache.get(monomial_id)
            if mapped is None:
                key = tuple(
                    sorted(symbol_ids[s] for s in monomial_keys[monomial_id])
                )
                mapped = cache[monomial_id] = self._intern(key)
            return mapped

        return remap

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def sizes(self) -> Dict[str, int]:
        """Current table sizes (for inspection and tests)."""
        return {
            "symbols": len(self._symbols),
            "monomials": len(self._monomial_keys),
            "products": len(self._products),
        }

    def entry_count(self) -> int:
        """Total growth-relevant entries (monomials + memoized products)."""
        return len(self._monomial_keys) + len(self._products)

    def clear(self) -> None:
        """Forget everything (ids are reassigned from scratch).

        Must not run concurrently with an evaluation still holding ids
        from this table; prefer :func:`shared_intern`'s swap-on-growth
        for long-lived processes.
        """
        with self._lock:
            self._symbol_ids.clear()
            del self._symbols[:]
            self._monomial_ids.clear()
            del self._monomial_keys[:]
            self._products.clear()
            self._decoded.clear()
        self.one = self._intern(())

    def __repr__(self) -> str:
        sizes = self.sizes()
        return "<InternTable {symbols} symbols, {monomials} monomials>".format(
            **sizes
        )


class InternRemapper:
    """Incrementally maps one foreign table's monomial ids into a target.

    The columnar sharded engine keeps one remapper per (worker table,
    target table) pair: as the worker's accumulated export log grows,
    :meth:`extend` appends the new entries, so the dense ``local id ->
    target id`` array is built once per monomial, not once per
    evaluation.  :meth:`mapping` hands the whole array to vectorized
    remap kernels (:meth:`repro.algebra.columnar.ColumnarTable.remap`).

    >>> local, shared = InternTable(), InternTable()
    >>> m = local.times_symbol(local.one, local.symbol_id("z"))
    >>> remapper = InternRemapper(shared)
    >>> remapper.extend(*local.export_state())
    >>> str(shared.monomial(remapper.mapping()[m]))
    'z'
    """

    __slots__ = ("_target", "_symbol_ids", "_mid_map")

    def __init__(self, target: InternTable):  # noqa: D107
        self._target = target
        self._symbol_ids: List[int] = []
        self._mid_map: List[int] = []

    @property
    def mapped_symbols(self) -> int:
        """How many foreign symbols have been mapped so far."""
        return len(self._symbol_ids)

    @property
    def mapped_monomials(self) -> int:
        """How many foreign monomial ids have been mapped so far."""
        return len(self._mid_map)

    def extend(
        self,
        symbols: Sequence[str],
        monomial_keys: Sequence[Tuple[int, ...]],
    ) -> None:
        """Map the next contiguous slice of the foreign table's entries.

        ``symbols``/``monomial_keys`` continue where the previous call
        stopped — exactly what :meth:`InternTable.export_range` returns
        for the watermark this remapper has reached.
        """
        target = self._target
        symbol_ids = self._symbol_ids
        for symbol in symbols:
            symbol_ids.append(target.symbol_id(symbol))
        intern = target._intern
        mid_map = self._mid_map
        for key in monomial_keys:
            mid_map.append(intern(tuple(sorted(symbol_ids[s] for s in key))))

    def mapping(self) -> List[int]:
        """The dense ``foreign monomial id -> target id`` array (live)."""
        return self._mid_map


#: The process-wide table shared by default across engine invocations,
#: so repeated evaluations (e.g. an incremental refresh loop) reuse all
#: previously interned monomials and memoized products.  Access it via
#: :func:`shared_intern`, which bounds its lifetime growth.
GLOBAL_INTERN = InternTable()

#: Soft bound on the shared table: once monomials + memoized products
#: exceed this, :func:`shared_intern` starts a fresh table instead of
#: letting a long-lived process accumulate state forever.  Roughly two
#: hundred MB at the default — far past any single evaluation, cheap to
#: rebuild for the workloads that follow.
MAX_SHARED_ENTRIES = 2_000_000


def shared_intern() -> InternTable:
    """The shared intern table, replaced with a fresh one when oversized.

    Callers capture the returned reference once per evaluation, so the
    swap is thread-safe: an in-flight evaluation keeps (and keeps
    alive) the table it started with, while later evaluations intern
    into the replacement and the old table is garbage-collected.
    """
    global GLOBAL_INTERN
    table = GLOBAL_INTERN
    if table.entry_count() > MAX_SHARED_ENTRIES:
        table = InternTable()
        GLOBAL_INTERN = table
    return table

"""The unified engine configuration surface: :class:`EngineConfig`.

Every entry point that evaluates queries — :func:`repro.evaluate`,
:func:`repro.provenance`, :func:`repro.evaluate_aggregate`,
:class:`repro.QuerySession`, :class:`repro.ViewRegistry`,
:func:`repro.make_server` and the CLI — accepts one
:class:`EngineConfig` describing *how* to execute: which engine, how
many shards and workers, process or thread pools, the replication
threshold for small relations, and whether the sharded engine uses the
columnar result path.  The scattered ``engine=``/``shards=``/
``workers=`` keywords those functions grew over time still work as thin
shims, but warn with :class:`DeprecationWarning` and simply overlay the
matching config fields.

>>> EngineConfig()
EngineConfig(engine='hashjoin', shards=None, workers=None, mode='process', broadcast_threshold=None, columnar=True, data_dir=None, server_mode='threaded')
>>> EngineConfig(engine="sharded", shards=2).with_overrides(workers=2).shards
2
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Optional, Union

from repro.errors import EvaluationError

#: Pool kinds the sharded engine can run on.
EXECUTOR_MODES = ("process", "thread")

#: Serving-tier front ends: the asyncio event loop or the
#: one-thread-per-connection :class:`http.server.ThreadingHTTPServer`.
SERVER_MODES = ("async", "threaded")


@dataclass(frozen=True)
class EngineConfig:
    """How to execute queries: engine choice plus its tuning knobs.

    Immutable and hashable, so it can key caches (the serving tier keys
    result-cache entries on it).  Which ``engine`` values are accepted
    depends on the entry point — sessions take ``sharded``/``hashjoin``,
    one-shot evaluation also takes ``backtrack`` — and is validated
    there; this class validates the engine-independent fields.

    ``shards`` and ``workers`` default to ``None`` = "let the sharded
    engine pick" (:data:`~repro.engine.sharded.DEFAULT_SHARDS` shards,
    one worker per core up to the shard count).  ``broadcast_threshold``
    is the row count below which a relation is replicated to every
    shard instead of partitioned (``None`` = engine default).
    ``columnar`` selects the flat-column sharded result path; turn it
    off to run the legacy dict-of-dicts merge the differential suite
    compares against.  ``data_dir`` points the serving tier at a
    durability directory (snapshots + write-ahead log, see
    :mod:`repro.durability`); ``None`` keeps everything in memory.
    ``server_mode`` selects the serving front end: ``"async"`` runs the
    event-loop tier (:mod:`repro.server.aio`, 10k+ concurrent
    connections), ``"threaded"`` the one-thread-per-connection fallback
    — it only matters to :func:`repro.server.app.make_server` and the
    CLI ``serve`` subcommand.
    """

    engine: str = "hashjoin"
    shards: Optional[int] = None
    workers: Optional[int] = None
    mode: str = "process"
    broadcast_threshold: Optional[int] = None
    columnar: bool = True
    data_dir: Optional[str] = None
    server_mode: str = "threaded"

    def __post_init__(self):  # noqa: D105
        if not isinstance(self.engine, str) or not self.engine:
            raise EvaluationError(
                "EngineConfig.engine must be a non-empty engine name, "
                "got {!r}".format(self.engine)
            )
        if self.mode not in EXECUTOR_MODES:
            raise EvaluationError(
                "EngineConfig.mode must be one of {}; got {!r}".format(
                    ", ".join(EXECUTOR_MODES), self.mode
                )
            )
        for field_name in ("shards", "workers"):
            value = getattr(self, field_name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
                or value < 1
            ):
                raise EvaluationError(
                    "EngineConfig.{} must be a positive int or None, "
                    "got {!r}".format(field_name, value)
                )
        threshold = self.broadcast_threshold
        if threshold is not None and (
            not isinstance(threshold, int) or isinstance(threshold, bool)
            or threshold < 0
        ):
            raise EvaluationError(
                "EngineConfig.broadcast_threshold must be a non-negative "
                "int or None, got {!r}".format(threshold)
            )
        if self.data_dir is not None and (
            not isinstance(self.data_dir, str) or not self.data_dir
        ):
            raise EvaluationError(
                "EngineConfig.data_dir must be a non-empty path or None, "
                "got {!r}".format(self.data_dir)
            )
        if self.server_mode not in SERVER_MODES:
            raise EvaluationError(
                "EngineConfig.server_mode must be one of {}; got {!r}".format(
                    ", ".join(SERVER_MODES), self.server_mode
                )
            )

    def with_overrides(self, **overrides) -> "EngineConfig":
        """A copy with the given fields replaced (unknown names raise)."""
        known = {field.name for field in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise EvaluationError(
                "unknown EngineConfig field(s): {}".format(", ".join(unknown))
            )
        return replace(self, **overrides)


def resolve_engine_config(
    config: Union[EngineConfig, str, None],
    caller: str,
    default: Optional[EngineConfig] = None,
    **legacy,
) -> EngineConfig:
    """Normalize an entry point's ``config`` argument plus legacy kwargs.

    ``config`` may be a full :class:`EngineConfig` (taken verbatim), a
    bare engine name (shorthand for ``default`` with that engine), or
    ``None`` (use ``default``).  Legacy keyword values that are not
    ``None`` overlay the result and emit one :class:`DeprecationWarning`
    naming ``caller`` — the shim contract: old call sites keep working,
    new code passes a config.
    """
    base = EngineConfig() if default is None else default
    if config is not None:
        if isinstance(config, str):
            base = replace(base, engine=config)
        elif isinstance(config, EngineConfig):
            base = config
        else:
            raise EvaluationError(
                "{}: config must be an EngineConfig or an engine name, "
                "got {!r}".format(caller, type(config).__name__)
            )
    supplied = {
        name: value for name, value in legacy.items() if value is not None
    }
    if supplied:
        warnings.warn(
            "{}: the {} keyword argument(s) are deprecated; pass "
            "repro.EngineConfig(...) as config instead".format(
                caller, ", ".join(sorted(supplied))
            ),
            DeprecationWarning,
            stacklevel=3,
        )
        base = base.with_overrides(**supplied)
    return base


def connect(
    db,
    config: Union[EngineConfig, str, None] = None,
    **overrides,
):
    """Open a :class:`~repro.session.QuerySession` against ``db``.

    The documented way in: pick an engine once, then evaluate batches.
    With no ``config`` the session uses the sharded engine with its
    defaults; pass an :class:`EngineConfig`, a bare engine name, or
    config fields as keyword overrides.

    >>> from repro.db.instance import AnnotatedDatabase
    >>> from repro.query.parser import parse_query
    >>> db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "c")]})
    >>> with connect(db, shards=2, workers=2, mode="thread") as session:
    ...     result = session.evaluate(parse_query("ans(x, z) :- R(x, y), R(y, z)"))
    >>> sorted(str(p) for p in result.values())
    ['s1*s2']
    """
    from repro.session import QuerySession

    base = EngineConfig(engine="sharded")
    if config is not None:
        if isinstance(config, str):
            base = replace(base, engine=config)
        elif isinstance(config, EngineConfig):
            base = config
        else:
            raise EvaluationError(
                "connect: config must be an EngineConfig or an engine "
                "name, got {!r}".format(type(config).__name__)
            )
    if overrides:
        base = base.with_overrides(**overrides)
    return QuerySession(db, base)

"""Possible completions and canonical rewritings (Def. 4.1).

A *possible completion* of ``Q ∈ CQ≠`` w.r.t. a constant set
``C ⊇ Const(Q)`` fixes one "case" of equalities among the arguments:
the arguments ``Var(Q) ∪ C`` are partitioned into blocks (at most one
constant per block; disequality endpoints separated), each block
collapses to its constant or to a fresh variable, and the result is made
complete by adding all disequalities between the fresh variables and
between fresh variables and constants of ``C``.

The *canonical rewriting* ``Can(Q, C)`` is the union of all possible
completions.  It preserves both the query result (Thm. 4.3) and the
provenance of every output tuple (Thm. 4.4) — properties verified by
the test suite on random instances.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.query.atoms import Disequality
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Term, Variable, is_constant, is_variable
from repro.query.ucq import Query, UnionQuery, adjuncts_of
from repro.utils.partitions import constrained_partitions


def possible_completions(
    query: ConjunctiveQuery,
    constants: Iterable[Constant] = (),
) -> List[ConjunctiveQuery]:
    """All possible completions of ``query`` w.r.t. ``constants``.

    ``constants`` may extend ``Const(Q)`` (the *extended* canonical
    rewriting of Def. 4.1); the query's own constants are always
    included.  Fresh variables are named ``v1, v2, ...`` in block order,
    matching the paper's presentation (Example 4.2, Figure 3).

    >>> from repro.query.parser import parse_query
    >>> q = parse_query("ans() :- R(x, y), R(y, z), R(z, x)")
    >>> len(possible_completions(q))        # Figure 3: Bell(3) = 5 cases
    5
    """
    consts: List[Constant] = sorted(set(query.constants()) | set(constants))
    variables: List[Variable] = sorted(query.variables())
    items: List[Term] = list(variables) + list(consts)
    separate: List[Tuple[Term, Term]] = [dis.pair for dis in query.disequalities]

    completions: List[ConjunctiveQuery] = []
    for partition in constrained_partitions(items, separate, singletons=consts):
        substitution = {}
        fresh_variables: List[Variable] = []
        fresh_index = 1
        for block in partition:
            block_constant: Optional[Constant] = None
            for term in block:
                if is_constant(term):
                    block_constant = term
                    break
            if block_constant is not None:
                target: Term = block_constant
            else:
                target = Variable("v{}".format(fresh_index))
                fresh_index += 1
                fresh_variables.append(target)
            for term in block:
                if is_variable(term):
                    substitution[term] = target
        atoms = [atom.substitute(substitution) for atom in query.atoms]
        head = query.head.substitute(substitution)
        disequalities: Set[Disequality] = set()
        for i, x in enumerate(fresh_variables):
            for y in fresh_variables[i + 1:]:
                disequalities.add(Disequality(x, y))
            for constant in consts:
                disequalities.add(Disequality(x, constant))
        completions.append(ConjunctiveQuery(head, atoms, disequalities))
    return completions


def canonical_rewriting(
    query: Query,
    constants: Iterable[Constant] = (),
) -> UnionQuery:
    """``Can(Q, C)``: the union of all possible completions (Def. 4.1).

    For a union query each adjunct is rewritten separately over the
    *full* constant set of the query plus ``constants`` (as MinProv
    step I requires), and the completions are concatenated.
    """
    union_constants: Set[Constant] = set(constants)
    for adjunct in adjuncts_of(query):
        union_constants.update(adjunct.constants())
    completions: List[ConjunctiveQuery] = []
    for adjunct in adjuncts_of(query):
        completions.extend(possible_completions(adjunct, union_constants))
    return UnionQuery(completions)

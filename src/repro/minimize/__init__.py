"""Query minimization: standard (join count) and provenance-wise.

* :mod:`repro.minimize.standard` — "standard" minimization baselines:
  Chandra-Merlin for CQ, duplicate-atom removal for cCQ≠ (Lemma 3.13),
  atom-deletion with an equivalence oracle for CQ≠, adjunct removal for
  unions;
* :mod:`repro.minimize.canonical` — possible completions and the
  canonical rewriting ``Can(Q, C)`` (Def. 4.1);
* :mod:`repro.minimize.minprov` — the paper's **MinProv** algorithm
  (Alg. 1) with a step-by-step trace, plus p-minimality checking.
"""

from repro.minimize.canonical import canonical_rewriting, possible_completions
from repro.minimize.minprov import MinProvTrace, is_p_minimal, min_prov
from repro.minimize.standard import (
    minimize_complete,
    minimize_cq,
    minimize_cq_diseq,
    minimize_query,
    minimize_ucq,
)

__all__ = [
    "possible_completions",
    "canonical_rewriting",
    "min_prov",
    "MinProvTrace",
    "is_p_minimal",
    "minimize_cq",
    "minimize_complete",
    "minimize_cq_diseq",
    "minimize_ucq",
    "minimize_query",
]

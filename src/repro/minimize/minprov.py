"""MinProv — the provenance-minimization algorithm (Algorithm 1).

Given ``Q ∈ UCQ≠``, MinProv produces an equivalent p-minimal query
(Thm. 4.6, Prop. 4.8) in three steps:

I.   replace every adjunct by its canonical rewriting w.r.t. the full
     constant set of ``Q`` (Def. 4.1) — provenance preserved
     (Thm. 4.4);
II.  minimize each (complete) adjunct by duplicate-atom removal
     (Lemma 3.13);
III. remove adjuncts contained in another adjunct — since all adjuncts
     are complete, containment is a single homomorphism test
     (Thm. 3.1).

The output realizes the *core provenance* of ``Q``: for every database
``D`` and output tuple ``t``, ``P(t, MinProv(Q), D) <= P(t, Q', D)``
for every equivalent ``Q' ∈ UCQ≠``.

The exponential size of the output is unavoidable (Thm. 4.10); see
``benchmarks/bench_theorem410_blowup.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hom.homomorphism import has_homomorphism, is_isomorphic
from repro.minimize.canonical import possible_completions
from repro.minimize.standard import remove_contained_adjuncts
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import Query, UnionQuery, as_union


@dataclass(frozen=True)
class MinProvTrace:
    """The intermediate queries of a MinProv run.

    ``step1`` is :math:`Q_I` (canonical rewriting), ``step2`` is
    :math:`Q_{II}` (per-adjunct minimization) and ``step3`` is
    :math:`Q_{III}`, the p-minimal result.  Used by the Figure 3 /
    Examples 5.2-5.8 reproduction.
    """

    input: Query
    step1: UnionQuery
    step2: UnionQuery
    step3: UnionQuery

    @property
    def result(self) -> UnionQuery:
        """The algorithm output (= ``step3``)."""
        return self.step3


def _contained_complete(inner: ConjunctiveQuery, outer: ConjunctiveQuery) -> bool:
    """``inner ⊆ outer`` for complete adjuncts: one homomorphism test
    (Thm. 3.1 — the inner query is complete w.r.t. every constant in
    play, so homomorphism existence characterizes containment)."""
    return has_homomorphism(outer, inner)


def min_prov_trace(query: Query) -> MinProvTrace:
    """Run MinProv, retaining every intermediate query."""
    union = as_union(query)
    constants = union.constants()

    # Step I: canonical rewriting of every adjunct over all of Const(Q).
    step1_adjuncts: List[ConjunctiveQuery] = []
    for adjunct in union.adjuncts:
        step1_adjuncts.extend(possible_completions(adjunct, constants))
    step1 = UnionQuery(step1_adjuncts)

    # Step II: minimize each complete adjunct (duplicate removal,
    # Lemma 3.13).
    step2_adjuncts = [adjunct.deduplicate_atoms() for adjunct in step1_adjuncts]
    step2 = UnionQuery(step2_adjuncts)

    # Step III: remove contained adjuncts (containment of complete
    # queries is a homomorphism test).
    step3_adjuncts = remove_contained_adjuncts(
        step2_adjuncts, contained=_contained_complete
    )
    step3 = UnionQuery(step3_adjuncts)
    return MinProvTrace(input=query, step1=step1, step2=step2, step3=step3)


def min_prov(query: Query) -> UnionQuery:
    """The p-minimal equivalent of ``query`` in UCQ≠ (Thm. 4.6).

    >>> from repro.query.parser import parse_query
    >>> q = parse_query("ans(x) :- R(x, y), R(y, x)")   # Qconj of Figure 1
    >>> result = min_prov(q)
    >>> sorted(str(a) for a in result.adjuncts)
    ['ans(v1) :- R(v1, v1)', 'ans(v1) :- R(v1, v2), R(v2, v1), v1 != v2']
    """
    return min_prov_trace(query).result


def is_p_minimal(query: Query) -> bool:
    """Is ``query`` p-minimal among all equivalent UCQ≠ queries?

    ``Q`` is p-minimal iff its provenance already equals the core
    provenance, i.e. iff ``Can(Q) ≡_P MinProv(Q)``.  Two complete
    unions whose adjuncts partition the equality "cases" have equal
    provenance on every database iff their adjunct multisets agree up
    to isomorphism, which is what is checked here.
    """
    union = as_union(query)
    constants = union.constants()
    canonical_adjuncts: List[ConjunctiveQuery] = []
    for adjunct in union.adjuncts:
        canonical_adjuncts.extend(possible_completions(adjunct, constants))
    minimal = min_prov_trace(query).step3.adjuncts
    return _same_iso_multiset(canonical_adjuncts, list(minimal))


def _same_iso_multiset(
    left: List[ConjunctiveQuery], right: List[ConjunctiveQuery]
) -> bool:
    """Do two adjunct lists agree as multisets up to isomorphism?"""
    if len(left) != len(right):
        return False
    remaining = list(right)
    for adjunct in left:
        match: Optional[int] = None
        for index, candidate in enumerate(remaining):
            if is_isomorphic(adjunct, candidate):
                match = index
                break
        if match is None:
            return False
        del remaining[match]
    return not remaining

"""Standard (join-count) minimization — the paper's baseline.

"Standard" minimization seeks an equivalent query with the fewest
relational atoms (Chandra-Merlin for CQ; Sagiv-Yannakakis for unions;
Klug for disequalities).  The paper contrasts it with provenance
minimization throughout Table 1:

* in **CQ**, the standard minimal query is also p-minimal *within CQ*
  (Thm. 3.9), but an equivalent UCQ≠ may still be strictly terser
  (Thm. 3.11);
* in **cCQ≠**, standard minimization = duplicate-atom removal =
  p-minimization, in PTIME (Thm. 3.12, Lemma 3.13);
* in **CQ≠**, a standard minimal equivalent always exists but a
  p-minimal one may not (Thm. 3.5).
"""

from __future__ import annotations

from typing import Callable, List

from repro.errors import UnsupportedQueryError
from repro.hom.containment import is_equivalent
from repro.hom.homomorphism import has_homomorphism
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import Query, UnionQuery, adjuncts_of


def minimize_cq(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Chandra-Merlin minimization of a disequality-free CQ.

    Repeatedly removes an atom whenever the query maps homomorphically
    into the remainder (which proves equivalence); the fixpoint is the
    *core*, the unique minimal equivalent up to isomorphism.

    >>> from repro.query.parser import parse_query
    >>> q = parse_query("ans(x) :- R(x, y), R(x, z)")
    >>> minimize_cq(q).size()
    1
    """
    if query.has_disequalities():
        raise UnsupportedQueryError(
            "Chandra-Merlin minimization requires a disequality-free CQ; "
            "use minimize_cq_diseq or minimize_complete"
        )
    current = query
    changed = True
    while changed:
        changed = False
        for index in range(len(current.atoms)):
            candidate = _removal_candidate(current, index)
            if candidate is None:
                continue
            # candidate ⊇ current always holds (fewer atoms); a
            # homomorphism current -> candidate proves candidate ⊆ current.
            if has_homomorphism(current, candidate):
                current = candidate
                changed = True
                break
    return current


def _removal_candidate(query: ConjunctiveQuery, index: int):
    """``query`` without its ``index``-th atom, or ``None`` when the
    removal is ill-formed (empty body, or a head variable losing its
    last body occurrence — such removals can never preserve
    equivalence)."""
    from repro.errors import QueryConstructionError

    if len(query.atoms) == 1:
        return None
    try:
        return query.without_atom(index)
    except QueryConstructionError:
        return None


def minimize_complete(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Minimize a complete query by duplicate-atom removal (Lemma 3.13).

    For cCQ≠ this is simultaneously standard minimization and
    p-minimization, and runs in PTIME (Thm. 3.12).
    """
    if not query.is_complete():
        raise UnsupportedQueryError(
            "duplicate-removal minimization requires a complete query "
            "(Def. 2.2); use minimize_cq or minimize_cq_diseq"
        )
    return query.deduplicate_atoms()


def minimize_cq_diseq(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Standard minimization of a CQ≠ by atom deletion.

    Tries to delete atoms while preserving equivalence, using the
    complete (exponential) containment test of
    :mod:`repro.hom.containment`.  Disequalities whose variables lose
    their last occurrence are dropped with the atom.  Following Klug,
    a minimal equivalent of a CQ≠ exists in CQ≠; note (Lemma 3.8) it
    need not be unique up to isomorphism.
    """
    if not query.has_disequalities():
        return minimize_cq(query)
    if query.is_complete():
        return query.deduplicate_atoms()
    current = query
    changed = True
    while changed:
        changed = False
        for index in range(len(current.atoms)):
            candidate = _removal_candidate(current, index)
            if candidate is None:
                continue
            if is_equivalent(candidate, current):
                current = candidate
                changed = True
                break
    return current


def minimize_adjunct(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Dispatch to the right single-query minimizer."""
    if not query.has_disequalities():
        return minimize_cq(query)
    if query.is_complete():
        return query.deduplicate_atoms()
    return minimize_cq_diseq(query)


def minimize_ucq(
    query: Query,
    adjunct_minimizer: Callable[[ConjunctiveQuery], ConjunctiveQuery] = minimize_adjunct,
) -> UnionQuery:
    """Standard minimization of a union (Sagiv-Yannakakis style).

    Each adjunct is minimized, then adjuncts contained in a surviving
    adjunct are removed.  Mutually contained (equivalent) adjuncts keep
    a single representative.
    """
    adjuncts = [adjunct_minimizer(adjunct) for adjunct in adjuncts_of(query)]
    return UnionQuery(remove_contained_adjuncts(adjuncts))


def remove_contained_adjuncts(
    adjuncts: List[ConjunctiveQuery],
    contained: Callable[[ConjunctiveQuery, ConjunctiveQuery], bool] = None,
) -> List[ConjunctiveQuery]:
    """Drop every adjunct contained in another surviving adjunct.

    ``contained(a, b)`` decides ``a ⊆ b`` (defaults to the general
    containment test).  When two adjuncts contain each other, the one
    encountered first survives — exactly the survivor semantics step III
    of MinProv needs.
    """
    if contained is None:
        from repro.hom.containment import is_contained

        contained = is_contained
    removed = [False] * len(adjuncts)
    for i, keeper in enumerate(adjuncts):
        if removed[i]:
            continue
        for j, other in enumerate(adjuncts):
            if i == j or removed[j]:
                continue
            if contained(other, keeper):
                removed[j] = True
    return [adjunct for adjunct, gone in zip(adjuncts, removed) if not gone]


def minimize_query(query: Query) -> Query:
    """Standard minimization of any supported query.

    Returns a CQ for CQ input and a union for union input.
    """
    if isinstance(query, ConjunctiveQuery):
        return minimize_adjunct(query)
    return minimize_ucq(query)

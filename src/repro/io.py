"""JSON serialization of databases, queries and provenance.

Recorded provenance is meant to outlive the session that computed it
(the paper's Sec. 5 workflow evaluates now, minimizes off-line later),
so the library provides a stable JSON wire format:

* databases — ``{"relations": {name: [{"row": [...], "annotation": s}]}}``;
* polynomials — ``[{"monomial": {symbol: exponent}, "coefficient": n}]``;
* queries — their rule-syntax text (the parser is the codec);
* annotated results — rows paired with polynomials.

Round-trips are exact and tested.
"""

from __future__ import annotations

import json
from typing import Dict, Hashable, Mapping, Tuple

from repro.db.instance import AnnotatedDatabase
from repro.errors import ReproError
from repro.query.parser import parse_query
from repro.query.printer import query_to_str
from repro.query.ucq import Query
from repro.semiring.polynomial import Monomial, Polynomial

Row = Tuple[Hashable, ...]


# ----------------------------------------------------------------------
# Databases
# ----------------------------------------------------------------------
def database_to_dict(db: AnnotatedDatabase) -> dict:
    """A JSON-ready representation of an annotated database."""
    relations: Dict[str, list] = {}
    for relation in sorted(db.relations()):
        relations[relation] = [
            {"row": list(row), "annotation": annotation}
            for row, annotation in sorted(
                db.facts(relation), key=lambda kv: repr(kv[0])
            )
        ]
    return {"relations": relations}


def database_from_dict(payload: Mapping) -> AnnotatedDatabase:
    """Inverse of :func:`database_to_dict`."""
    if "relations" not in payload:
        raise ReproError("database payload lacks a 'relations' key")
    db = AnnotatedDatabase()
    for relation, facts in payload["relations"].items():
        for fact in facts:
            db.add(relation, tuple(fact["row"]), annotation=fact["annotation"])
    return db


# ----------------------------------------------------------------------
# Polynomials
# ----------------------------------------------------------------------
def polynomial_to_list(polynomial: Polynomial) -> list:
    """A JSON-ready representation of an N[X] polynomial."""
    terms = []
    for monomial in polynomial.monomials():
        exponents = {
            symbol: monomial.exponent(symbol) for symbol in monomial.support()
        }
        terms.append(
            {"monomial": exponents, "coefficient": polynomial.coefficient(monomial)}
        )
    return terms


def polynomial_from_list(payload) -> Polynomial:
    """Inverse of :func:`polynomial_to_list`."""
    terms = {}
    for entry in payload:
        symbols = []
        for symbol, exponent in entry["monomial"].items():
            symbols.extend([symbol] * int(exponent))
        monomial = Monomial(symbols)
        terms[monomial] = terms.get(monomial, 0) + int(entry["coefficient"])
    return Polynomial(terms)


# ----------------------------------------------------------------------
# Queries and annotated results
# ----------------------------------------------------------------------
def query_to_text(query: Query) -> str:
    """Serialize a query as rule-syntax text."""
    return query_to_str(query)


def query_from_text(text: str) -> Query:
    """Parse a serialized query."""
    return parse_query(text)


def results_to_list(results: Mapping[Row, Polynomial]) -> list:
    """A JSON-ready representation of an annotated result table."""
    return [
        {"tuple": list(output), "provenance": polynomial_to_list(polynomial)}
        for output, polynomial in sorted(results.items(), key=lambda kv: repr(kv[0]))
    ]


def results_from_list(payload) -> Dict[Row, Polynomial]:
    """Inverse of :func:`results_to_list`."""
    return {
        tuple(entry["tuple"]): polynomial_from_list(entry["provenance"])
        for entry in payload
    }


# ----------------------------------------------------------------------
# Whole sessions
# ----------------------------------------------------------------------
def dump_session(
    path: str,
    db: AnnotatedDatabase,
    queries: Mapping[str, Query],
    results: Mapping[str, Mapping[Row, Polynomial]] = (),
) -> None:
    """Write a database, queries and (optionally) results to one file."""
    payload = {
        "database": database_to_dict(db),
        "queries": {name: query_to_text(query) for name, query in queries.items()},
        "results": {
            name: results_to_list(table) for name, table in dict(results).items()
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_session(path: str):
    """Inverse of :func:`dump_session`; returns (db, queries, results)."""
    with open(path) as handle:
        payload = json.load(handle)
    db = database_from_dict(payload["database"])
    queries = {
        name: query_from_text(text) for name, text in payload["queries"].items()
    }
    results = {
        name: results_from_list(table)
        for name, table in payload.get("results", {}).items()
    }
    return db, queries, results

"""JSON serialization of databases, queries and provenance.

Recorded provenance is meant to outlive the session that computed it
(the paper's Sec. 5 workflow evaluates now, minimizes off-line later),
so the library provides a stable JSON wire format:

* databases — ``{"relations": {name: [{"row": [...], "annotation": s}]}}``;
* polynomials — ``[{"monomial": {symbol: exponent}, "coefficient": n}]``;
* queries — their rule-syntax text (the parser is the codec);
* annotated results — rows paired with polynomials.

The same codecs double as the serving tier's wire format
(:mod:`repro.server`): update requests reuse the ``maintain``
subcommand's delta-batch JSON (:func:`deltas_from_payload`), and
aggregate responses serialize their ``N[X] ⊗ M`` tensors with
:func:`aggregate_results_to_list`.

Round-trips are exact and tested.
"""

from __future__ import annotations

import json
from typing import Dict, Hashable, List, Mapping, Tuple

from repro.aggregate.result import AggregateResult
from repro.algebra.monoid import monoid_for
from repro.algebra.semimodule import SemimoduleElement
from repro.db.instance import AnnotatedDatabase
from repro.errors import ReproError
from repro.incremental.delta import Delta
from repro.query.parser import parse_query
from repro.query.printer import query_to_str
from repro.query.ucq import Query
from repro.semiring.polynomial import Monomial, Polynomial
from repro.utils.multiset import FrozenMultiset

Row = Tuple[Hashable, ...]


# ----------------------------------------------------------------------
# Databases
# ----------------------------------------------------------------------
def database_to_dict(db: AnnotatedDatabase) -> dict:
    """A JSON-ready representation of an annotated database."""
    relations: Dict[str, list] = {}
    for relation in sorted(db.relations()):
        relations[relation] = [
            {"row": list(row), "annotation": annotation}
            for row, annotation in sorted(
                db.facts(relation), key=lambda kv: repr(kv[0])
            )
        ]
    return {"relations": relations}


def database_from_dict(payload: Mapping) -> AnnotatedDatabase:
    """Inverse of :func:`database_to_dict`."""
    if not isinstance(payload, Mapping) or "relations" not in payload:
        raise ReproError("database payload lacks a 'relations' key")
    if not isinstance(payload["relations"], Mapping):
        raise ReproError(
            "database 'relations' must map names to fact lists, got "
            "{!r}".format(type(payload["relations"]).__name__)
        )
    db = AnnotatedDatabase()
    for relation, facts in payload["relations"].items():
        if not isinstance(facts, list):
            raise ReproError(
                "facts of relation {!r} must be a list, got {!r}".format(
                    relation, type(facts).__name__
                )
            )
        for fact in facts:
            if (
                not isinstance(fact, Mapping)
                or not isinstance(fact.get("row"), list)
                or "annotation" not in fact
            ):
                raise ReproError(
                    "each fact of {!r} needs {{\"row\": [...], "
                    "\"annotation\": ...}}, got {!r}".format(relation, fact)
                )
            db.add(relation, tuple(fact["row"]), annotation=fact["annotation"])
    return db


# ----------------------------------------------------------------------
# Polynomials
# ----------------------------------------------------------------------
def polynomial_to_list(polynomial: Polynomial) -> list:
    """A JSON-ready representation of an N[X] polynomial."""
    terms = []
    for monomial in polynomial.monomials():
        exponents = {
            symbol: monomial.exponent(symbol) for symbol in monomial.support()
        }
        terms.append(
            {"monomial": exponents, "coefficient": polynomial.coefficient(monomial)}
        )
    return terms


def polynomial_from_list(payload) -> Polynomial:
    """Inverse of :func:`polynomial_to_list`."""
    if not isinstance(payload, list):
        raise ReproError(
            "polynomial payload must be a list of terms, got {!r}".format(
                type(payload).__name__
            )
        )
    terms = {}
    for entry in payload:
        # ``type(...) is dict`` first: this loop decodes hundreds of
        # thousands of terms on snapshot recovery, and an isinstance
        # check against typing.Mapping costs ~3.5us per call.
        if not (
            (type(entry) is dict or isinstance(entry, Mapping))
            and (
                type(entry.get("monomial")) is dict
                or isinstance(entry.get("monomial"), Mapping)
            )
            and "coefficient" in entry
        ):
            raise ReproError(
                "each polynomial term needs {{\"monomial\": {{...}}, "
                "\"coefficient\": n}}, got {!r}".format(entry)
            )
        try:
            counts = {
                str(symbol): int(exponent)
                for symbol, exponent in entry["monomial"].items()
                if int(exponent) > 0
            }
            coefficient = int(entry["coefficient"])
        except (TypeError, ValueError) as exc:
            raise ReproError(
                "polynomial term {!r} has a non-integer exponent or "
                "coefficient".format(entry)
            ) from exc
        if coefficient < 0:
            raise ReproError(
                "polynomial term {!r} has a negative coefficient".format(
                    entry
                )
            )
        if coefficient == 0:
            continue
        # Hot on recovery: thousands of view bindings decode through
        # here, so skip the validating Monomial/Polynomial constructors.
        monomial = Monomial.from_multiset(FrozenMultiset.from_counts(counts))
        previous = terms.get(monomial)
        terms[monomial] = (
            coefficient if previous is None else previous + coefficient
        )
    return Polynomial._from_clean(terms)


# ----------------------------------------------------------------------
# Queries and annotated results
# ----------------------------------------------------------------------
def query_to_text(query: Query) -> str:
    """Serialize a query as rule-syntax text."""
    return query_to_str(query)


def query_from_text(text: str) -> Query:
    """Parse a serialized query."""
    return parse_query(text)


def results_to_list(results: Mapping[Row, Polynomial]) -> list:
    """A JSON-ready representation of an annotated result table."""
    return [
        {"tuple": list(output), "provenance": polynomial_to_list(polynomial)}
        for output, polynomial in sorted(results.items(), key=lambda kv: repr(kv[0]))
    ]


def results_from_list(payload) -> Dict[Row, Polynomial]:
    """Inverse of :func:`results_to_list`."""
    if not isinstance(payload, list):
        raise ReproError(
            "results payload must be a list of rows, got {!r}".format(
                type(payload).__name__
            )
        )
    results: Dict[Row, Polynomial] = {}
    for entry in payload:
        if (
            not isinstance(entry, Mapping)
            or not isinstance(entry.get("tuple"), list)
            or "provenance" not in entry
        ):
            raise ReproError(
                "each result row needs {{\"tuple\": [...], "
                "\"provenance\": [...]}}, got {!r}".format(entry)
            )
        results[tuple(entry["tuple"])] = polynomial_from_list(
            entry["provenance"]
        )
    return results


# ----------------------------------------------------------------------
# Aggregate results (N[X] ⊗ M tensors)
# ----------------------------------------------------------------------
def semimodule_to_dict(element: SemimoduleElement) -> dict:
    """A JSON-ready representation of one ``N[X] ⊗ M`` element.

    Tensors appear in the element's deterministic value order, each as
    ``{"value": m, "annotation": [polynomial terms]}``; the monoid name
    travels along so the inverse can rebuild the element.
    """
    return {
        "monoid": element.monoid.name,
        "tensors": [
            {"value": value, "annotation": polynomial_to_list(polynomial)}
            for value, polynomial in element
        ],
    }


def semimodule_from_dict(payload: Mapping) -> SemimoduleElement:
    """Inverse of :func:`semimodule_to_dict`."""
    if (
        not isinstance(payload, Mapping)
        or "monoid" not in payload
        or not isinstance(payload.get("tensors"), list)
    ):
        raise ReproError(
            "semimodule payload needs {{\"monoid\": name, "
            "\"tensors\": [...]}}, got {!r}".format(payload)
        )
    monoid = monoid_for(payload["monoid"])
    terms: Dict[Hashable, Polynomial] = {}
    for tensor in payload["tensors"]:
        if (
            not isinstance(tensor, Mapping)
            or "value" not in tensor
            or "annotation" not in tensor
        ):
            raise ReproError(
                "each tensor needs {{\"value\": m, \"annotation\": [...]}}, "
                "got {!r}".format(tensor)
            )
        polynomial = polynomial_from_list(tensor["annotation"])
        previous = terms.get(tensor["value"])
        terms[tensor["value"]] = (
            polynomial if previous is None else previous + polynomial
        )
    return SemimoduleElement(monoid, terms)


def aggregate_results_to_list(results: Mapping[Row, AggregateResult]) -> list:
    """A JSON-ready representation of an aggregated K-relation."""
    return [
        {
            "group": list(group),
            "provenance": polynomial_to_list(result.provenance),
            "aggregates": [
                semimodule_to_dict(element) for element in result.aggregates
            ],
        }
        for group, result in sorted(results.items(), key=lambda kv: repr(kv[0]))
    ]


def aggregate_results_from_list(payload) -> Dict[Row, AggregateResult]:
    """Inverse of :func:`aggregate_results_to_list`."""
    if not isinstance(payload, list):
        raise ReproError(
            "aggregate results payload must be a list of groups, got "
            "{!r}".format(type(payload).__name__)
        )
    results: Dict[Row, AggregateResult] = {}
    for entry in payload:
        if (
            not isinstance(entry, Mapping)
            or not isinstance(entry.get("group"), list)
            or "provenance" not in entry
            or not isinstance(entry.get("aggregates"), list)
        ):
            raise ReproError(
                "each aggregate group needs {{\"group\": [...], "
                "\"provenance\": [...], \"aggregates\": [...]}}, got "
                "{!r}".format(entry)
            )
        results[tuple(entry["group"])] = AggregateResult(
            polynomial_from_list(entry["provenance"]),
            tuple(
                semimodule_from_dict(element)
                for element in entry["aggregates"]
            ),
        )
    return results


# ----------------------------------------------------------------------
# Update batches (the `maintain` delta format, shared with the server)
# ----------------------------------------------------------------------
def _delta_entries(section: Mapping) -> List[Tuple]:
    entries: List[Tuple] = []
    for relation, rows in section.items():
        for entry in rows:
            if isinstance(entry, dict):
                if "row" not in entry or not isinstance(entry["row"], list):
                    raise ReproError(
                        "update entry for {!r} needs a \"row\" list, got "
                        "{!r}".format(relation, entry)
                    )
                entries.append(
                    (relation, tuple(entry["row"]), entry.get("annotation"))
                )
            elif isinstance(entry, list):
                entries.append((relation, tuple(entry)))
            else:
                raise ReproError(
                    "update entry for {!r} must be a row list or an object, "
                    "got {!r}".format(relation, entry)
                )
    return entries


def delta_from_dict(batch: Mapping) -> Delta:
    """One update batch — ``{"insert": ..., "delete": ..., "retag": ...}``.

    The format is exactly the ``maintain`` subcommand's updates file
    (and therefore the server's ``POST /update`` body): each section
    maps relations to rows, where a row is either a plain list (fresh
    annotation) or ``{"row": [...], "annotation": s}``.
    """
    if not isinstance(batch, Mapping):
        raise ReproError("each update batch must be a JSON object")
    unknown = set(batch) - {"insert", "delete", "retag"}
    if unknown:
        raise ReproError(
            "unknown update batch keys: {}".format(sorted(unknown))
        )
    retags = []
    for relation, rows in batch.get("retag", {}).items():
        for entry in rows:
            if (
                not isinstance(entry, dict)
                or "annotation" not in entry
                or not isinstance(entry.get("row"), list)
            ):
                raise ReproError(
                    "retag entries need {\"row\": [...], \"annotation\": ...}"
                )
            retags.append((relation, tuple(entry["row"]), entry["annotation"]))
    return Delta(
        inserts=_delta_entries(batch.get("insert", {})),
        deletes=[
            entry[:2] for entry in _delta_entries(batch.get("delete", {}))
        ],
        retags=retags,
    )


def deltas_from_payload(payload) -> List[Delta]:
    """A list of update batches (a single object counts as one batch)."""
    if isinstance(payload, Mapping):
        payload = [payload]
    if not isinstance(payload, list):
        raise ReproError("updates payload must be a JSON object or list")
    return [delta_from_dict(batch) for batch in payload]


def delta_to_dict(delta: Delta) -> dict:
    """Inverse of :func:`delta_from_dict` (annotations always explicit)."""
    payload: Dict[str, Dict[str, list]] = {}
    for relation, row, annotation in delta.inserts:
        entry = {"row": list(row)}
        if annotation is not None:
            entry["annotation"] = annotation
        payload.setdefault("insert", {}).setdefault(relation, []).append(entry)
    for relation, row in delta.deletes:
        payload.setdefault("delete", {}).setdefault(relation, []).append(
            list(row)
        )
    for relation, row, annotation in delta.retags:
        payload.setdefault("retag", {}).setdefault(relation, []).append(
            {"row": list(row), "annotation": annotation}
        )
    return payload


# ----------------------------------------------------------------------
# View changes and changefeed events (the subscription wire format)
# ----------------------------------------------------------------------
def view_change_to_dict(change, aggregate: bool) -> dict:
    """A JSON-ready representation of one per-view maintenance delta.

    ``change`` is a :class:`~repro.incremental.registry.ViewChange`
    (anything with ``inserted``/``deleted``/``updated`` mappings).
    Plain views serialize rows with their polynomials and each dead row
    with its retired symbol; aggregate views serialize ``N[X] ⊗ M``
    groups and dead groups bare (terminal views retire no symbol).
    """
    if aggregate:
        return {
            "inserted": aggregate_results_to_list(change.inserted),
            "deleted": [
                {"group": list(row)}
                for row in sorted(change.deleted, key=repr)
            ],
            "updated": aggregate_results_to_list(change.updated),
        }
    return {
        "inserted": results_to_list(change.inserted),
        "deleted": [
            {"tuple": list(row), "symbol": change.deleted[row]}
            for row in sorted(change.deleted, key=repr)
        ],
        "updated": results_to_list(change.updated),
    }


def view_change_from_dict(payload, aggregate: bool) -> dict:
    """Inverse of :func:`view_change_to_dict` (as plain mappings).

    Returns ``{"inserted": {row: value}, "deleted": {row: symbol},
    "updated": {row: value}}`` where values are
    :class:`~repro.semiring.polynomial.Polynomial` or
    :class:`~repro.aggregate.result.AggregateResult` rows — everything
    a client needs to replay the delta onto its copy of the view.
    """
    if not isinstance(payload, Mapping) or not isinstance(
        payload.get("deleted"), list
    ):
        raise ReproError(
            "view change payload needs 'inserted', 'deleted' and "
            "'updated' keys, got {!r}".format(payload)
        )
    decode = aggregate_results_from_list if aggregate else results_from_list
    key = "group" if aggregate else "tuple"
    deleted: Dict[Row, str] = {}
    for entry in payload["deleted"]:
        if not isinstance(entry, Mapping) or not isinstance(
            entry.get(key), list
        ):
            raise ReproError(
                "each deleted view row needs a {!r} list, got {!r}".format(
                    key, entry
                )
            )
        deleted[tuple(entry[key])] = entry.get("symbol", "")
    return {
        "inserted": decode(payload.get("inserted", [])),
        "deleted": deleted,
        "updated": decode(payload.get("updated", [])),
    }


def changefeed_event_to_dict(
    cursor: int, view: str, aggregate: bool, change=None, state=None
) -> dict:
    """One changefeed event: a per-version delta or a full reset.

    Delta events (``change`` given) carry exactly what one
    :meth:`ViewRegistry.apply` did to one view at one db version;
    reset events (``state`` given) carry the whole materialized table
    for consumers that fell off the replay ring.
    """
    payload = {"cursor": cursor, "view": view, "aggregate": bool(aggregate)}
    if change is not None:
        payload["event"] = "delta"
        payload["changes"] = view_change_to_dict(change, aggregate)
    else:
        payload["event"] = "reset"
        payload["state"] = (
            aggregate_results_to_list(state)
            if aggregate
            else results_to_list(state)
        )
    return payload


def changefeed_event_from_dict(payload) -> dict:
    """Inverse of :func:`changefeed_event_to_dict` (decoded values).

    The result mirrors the wire shape with ``changes`` (delta events)
    decoded via :func:`view_change_from_dict` and ``state`` (reset
    events) via the result-table codecs.
    """
    if (
        not isinstance(payload, Mapping)
        or not isinstance(payload.get("cursor"), int)
        or not isinstance(payload.get("view"), str)
        or payload.get("event") not in ("delta", "reset")
    ):
        raise ReproError(
            "changefeed event needs 'cursor', 'view' and 'event' "
            "(delta|reset) keys, got {!r}".format(payload)
        )
    aggregate = bool(payload.get("aggregate"))
    event = {
        "cursor": payload["cursor"],
        "view": payload["view"],
        "event": payload["event"],
        "aggregate": aggregate,
    }
    if payload["event"] == "delta":
        event["changes"] = view_change_from_dict(
            payload.get("changes"), aggregate
        )
    else:
        decode = aggregate_results_from_list if aggregate else results_from_list
        event["state"] = decode(payload.get("state", []))
    return event


def apply_changefeed_event(state: Dict[Row, object], event: Mapping) -> None:
    """Replay one decoded changefeed event onto a client-held table.

    ``state`` maps rows to polynomials (plain views) or
    :class:`~repro.aggregate.result.AggregateResult` rows (aggregate
    views) — the shape :func:`results_from_list` and friends produce.
    After replaying every event in cursor order, ``state`` equals the
    server's ``read_view()`` at the last cursor — the differential
    suite asserts it byte-for-byte through the encoders.
    """
    if event["event"] == "reset":
        state.clear()
        state.update(event["state"])
        return
    changes = event["changes"]
    for row in changes["deleted"]:
        state.pop(row, None)
    state.update(changes["updated"])
    state.update(changes["inserted"])


# ----------------------------------------------------------------------
# Whole sessions
# ----------------------------------------------------------------------
def dump_session(
    path: str,
    db: AnnotatedDatabase,
    queries: Mapping[str, Query],
    results: Mapping[str, Mapping[Row, Polynomial]] = (),
) -> None:
    """Write a database, queries and (optionally) results to one file."""
    payload = {
        "database": database_to_dict(db),
        "queries": {name: query_to_text(query) for name, query in queries.items()},
        "results": {
            name: results_to_list(table) for name, table in dict(results).items()
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_session(path: str):
    """Inverse of :func:`dump_session`; returns (db, queries, results)."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except ValueError as exc:
            raise ReproError(
                "session file {!r} is not valid JSON: {}".format(path, exc)
            ) from exc
    if (
        not isinstance(payload, Mapping)
        or "database" not in payload
        or not isinstance(payload.get("queries"), Mapping)
    ):
        raise ReproError(
            "session file {!r} needs 'database' and 'queries' keys".format(
                path
            )
        )
    db = database_from_dict(payload["database"])
    queries = {
        name: query_from_text(text) for name, text in payload["queries"].items()
    }
    results = {
        name: results_from_list(table)
        for name, table in payload.get("results", {}).items()
    }
    return db, queries, results

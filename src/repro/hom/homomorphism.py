"""Query homomorphisms (Def. 2.10) and their special forms.

A homomorphism ``h : Q -> Q'`` maps the atoms of ``Q`` to atoms of
``Q'`` such that

1. relational atoms map to relational atoms over the same relation, and
   disequality atoms map to disequality atoms;
2. the head of ``Q`` maps to the head of ``Q'``;
3. the induced mapping on arguments is a function (all instances of a
   variable map the same way);
4. constants map to themselves.

One pragmatic extension is needed for the homomorphism theorem
(Thm. 3.1) to hold verbatim in the presence of constants: a disequality
of ``Q`` whose endpoints map to two *distinct constants* is accepted
even though the (vacuously true) disequality atom ``c != c'`` cannot
syntactically exist in ``Q'``.

Three refinements of plain homomorphisms matter to the paper:

* **surjective on relational atoms** — Thm. 3.3: a surjective
  homomorphism ``Q' -> Q`` between equivalent queries witnesses
  ``Q <=_P Q'``;
* **bijective on relational atoms (automorphisms)** — Lemma 5.7: the
  number of automorphisms of a p-minimal adjunct is the coefficient of
  its monomials in the core provenance;
* **isomorphisms** — used to deduplicate canonical adjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.query.atoms import Disequality
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Term, Variable, is_constant, is_variable


@dataclass(frozen=True)
class Homomorphism:
    """A homomorphism from a source query to a target query.

    ``variable_map``
        the induced mapping from source variables to target terms,
        as a sorted tuple of pairs (hashable);
    ``atom_map``
        for each source relational atom index, the index of its image
        among the target's relational atoms.
    """

    variable_map: Tuple[Tuple[Variable, Term], ...]
    atom_map: Tuple[int, ...]

    def mapping(self) -> Dict[Variable, Term]:
        """The variable mapping as a dictionary."""
        return dict(self.variable_map)

    def apply(self, term: Term) -> Term:
        """Image of a term (constants map to themselves)."""
        if is_constant(term):
            return term
        return dict(self.variable_map).get(term, term)

    def is_atom_injective(self) -> bool:
        """True when no two source atoms share an image."""
        return len(set(self.atom_map)) == len(self.atom_map)


def homomorphisms(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    surjective: bool = False,
    bijective: bool = False,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms ``source -> target`` (Def. 2.10).

    ``surjective`` restricts to homomorphisms whose relational-atom
    image covers *every* atom of the target (Thm. 3.3);
    ``bijective`` restricts to atom-level bijections (automorphism
    search).  Head arities must agree; head relation names are ignored
    (queries under comparison conventionally share the head ``ans``).
    """
    if source.arity != target.arity:
        return
    if bijective and source.size() != target.size():
        return

    binding: Dict[Variable, Term] = {}

    def bind(source_term: Term, target_term: Term, undo: List[Variable]) -> bool:
        """Extend the variable binding with source_term -> target_term."""
        if is_constant(source_term):
            return source_term == target_term
        bound = binding.get(source_term)
        if bound is None:
            binding[source_term] = target_term
            undo.append(source_term)
            return True
        return bound == target_term

    # Condition 2: the head of the source maps to the head of the target.
    head_undo: List[Variable] = []
    for source_term, target_term in zip(source.head.args, target.head.args):
        if not bind(source_term, target_term, head_undo):
            for var in head_undo:
                del binding[var]
            return

    target_atoms = target.atoms
    by_relation: Dict[Tuple[str, int], List[int]] = {}
    for index, atom in enumerate(target_atoms):
        by_relation.setdefault((atom.relation, atom.arity), []).append(index)

    atom_map: List[int] = []
    used: Set[int] = set()

    def diseqs_ok() -> bool:
        """Condition 1 for disequality atoms, with the constant-pair
        extension described in the module docstring."""
        for dis in source.disequalities:
            left = binding.get(dis.left, dis.left) if is_variable(dis.left) else dis.left
            right = (
                binding.get(dis.right, dis.right)
                if is_variable(dis.right)
                else dis.right
            )
            if left == right:
                return False
            if is_constant(left) and is_constant(right):
                continue  # distinct constants: vacuously true disequality
            if Disequality(left, right) not in target.disequalities:
                return False
        return True

    def extend(index: int) -> Iterator[Homomorphism]:
        if index == len(source.atoms):
            if surjective and len(used) != len(target_atoms):
                return
            if not diseqs_ok():
                return
            yield Homomorphism(
                variable_map=tuple(
                    sorted(binding.items(), key=lambda kv: kv[0].name)
                ),
                atom_map=tuple(atom_map),
            )
            return
        if surjective:
            remaining = len(source.atoms) - index
            uncovered = len(target_atoms) - len(used)
            if remaining < uncovered:
                return
        source_atom = source.atoms[index]
        candidates = by_relation.get((source_atom.relation, source_atom.arity), [])
        for target_index in candidates:
            if bijective and target_index in used:
                continue
            target_atom = target_atoms[target_index]
            undo: List[Variable] = []
            consistent = True
            for source_term, target_term in zip(source_atom.args, target_atom.args):
                if not bind(source_term, target_term, undo):
                    consistent = False
                    break
            if consistent:
                atom_map.append(target_index)
                newly_used = target_index not in used
                if newly_used:
                    used.add(target_index)
                yield from extend(index + 1)
                if newly_used:
                    used.discard(target_index)
                atom_map.pop()
            for var in undo:
                del binding[var]

    yield from extend(0)


def find_homomorphism(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    surjective: bool = False,
) -> Optional[Homomorphism]:
    """The first homomorphism found, or ``None``."""
    for hom in homomorphisms(source, target, surjective=surjective):
        return hom
    return None


def has_homomorphism(source: ConjunctiveQuery, target: ConjunctiveQuery) -> bool:
    """Does any homomorphism ``source -> target`` exist?"""
    return find_homomorphism(source, target) is not None


def has_surjective_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> bool:
    """Does a homomorphism surjective on relational atoms exist?

    Together with equivalence this witnesses ``target <=_P source``
    (Thm. 3.3: a surjective homomorphism ``Q' -> Q`` gives
    ``Q <=_P Q'``; here source plays ``Q'`` and target plays ``Q``).
    """
    return find_homomorphism(source, target, surjective=True) is not None


def automorphisms(query: ConjunctiveQuery) -> List[Homomorphism]:
    """All automorphisms: homomorphisms ``Q -> Q`` bijective on atoms."""
    return list(homomorphisms(query, query, bijective=True))


def count_automorphisms(query: ConjunctiveQuery) -> int:
    """``Aut(Q)`` — the coefficient of Lemma 5.7.

    >>> from repro.query.parser import parse_query
    >>> cycle = parse_query(
    ...     "ans() :- R(x, y), R(y, z), R(z, x), x != y, y != z, x != z")
    >>> count_automorphisms(cycle)
    3
    """
    return len(automorphisms(query))


def is_isomorphic(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Are the queries identical up to variable renaming?

    Decided exactly: some homomorphism ``q1 -> q2`` must be bijective on
    relational atoms, rename variables bijectively onto variables, and
    carry the disequality set of ``q1`` onto that of ``q2``.
    """
    if q1.size() != q2.size():
        return False
    if len(q1.disequalities) != len(q2.disequalities):
        return False
    for hom in homomorphisms(q1, q2, bijective=True):
        if _is_isomorphism_witness(hom, q1, q2):
            return True
    return False


def _is_isomorphism_witness(
    hom: Homomorphism, q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> bool:
    mapping = hom.mapping()
    images = list(mapping.values())
    if not all(is_variable(image) for image in images):
        return False
    if len(set(images)) != len(images):
        return False
    mapped_diseqs = {dis.substitute(mapping) for dis in q1.disequalities}
    return mapped_diseqs == q2.disequalities

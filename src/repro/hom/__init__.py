"""Homomorphisms between queries, containment and equivalence.

* :mod:`repro.hom.homomorphism` — Def. 2.10 homomorphisms, surjective
  homomorphisms (the provenance-order witness of Thm. 3.3),
  automorphisms (the coefficients of Lemma 5.7), isomorphism;
* :mod:`repro.hom.containment` — Def. 2.8 containment and equivalence
  for CQ, cCQ≠, CQ≠ and UCQ≠, via the homomorphism theorem (Thm. 3.1)
  and the completion argument (Lemma 4.9).
"""

from repro.hom.containment import (
    is_contained,
    is_contained_canonical_db,
    is_equivalent,
)
from repro.hom.homomorphism import (
    Homomorphism,
    automorphisms,
    count_automorphisms,
    find_homomorphism,
    has_homomorphism,
    has_surjective_homomorphism,
    homomorphisms,
    is_isomorphic,
)

__all__ = [
    "Homomorphism",
    "homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "has_surjective_homomorphism",
    "automorphisms",
    "count_automorphisms",
    "is_isomorphic",
    "is_contained",
    "is_contained_canonical_db",
    "is_equivalent",
]

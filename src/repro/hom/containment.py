"""Query containment and equivalence (Def. 2.8).

Decision procedures, by class:

* **CQ ⊆ CQ** (no disequalities): the Chandra-Merlin homomorphism
  theorem — ``Q ⊆ Q'`` iff a homomorphism ``Q' -> Q`` exists
  (Thm. 3.1); for unions, containment holds iff every adjunct of the
  left query is contained in some adjunct of the right one
  (Sagiv-Yannakakis).
* **cCQ≠ ⊆ CQ≠** (complete left side): the same homomorphism criterion
  (Thm. 3.1, after Karvounarakis-Tannen), extended to union targets by
  Lemma 4.9.
* **general CQ≠/UCQ≠**: homomorphisms are *not* complete for
  containment (Example 3.2).  We rewrite the left-hand side into its
  possible completions w.r.t. all constants of both queries
  (Def. 4.1) — each completion is complete, so the previous criterion
  applies.  This is sound and complete, at an exponential price that
  Thm. 4.10 shows unavoidable.

A canonical-database procedure for disequality-free queries is included
as an independent oracle for differential testing.
"""

from __future__ import annotations

from typing import List

from repro.hom.homomorphism import has_homomorphism
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import is_variable
from repro.query.ucq import Query, adjuncts_of


def is_contained(q1: Query, q2: Query) -> bool:
    """Decide ``q1 ⊆ q2`` for CQ≠/UCQ≠ queries.

    >>> from repro.query.parser import parse_query
    >>> q = parse_query("ans() :- R(x, y), R(y, z), x != z")
    >>> qp = parse_query("ans() :- R(x, y), x != y")
    >>> is_contained(q, qp)          # Example 3.2: containment holds...
    True
    >>> from repro.hom.homomorphism import has_homomorphism
    >>> has_homomorphism(qp, q)      # ...but no homomorphism witnesses it
    False
    """
    left = adjuncts_of(q1)
    right = adjuncts_of(q2)
    if left[0].arity != right[0].arity:
        return False
    if not any(a.has_disequalities() for a in left + right):
        # Chandra-Merlin / Sagiv-Yannakakis fast path: without
        # disequalities, containment holds iff every left adjunct admits
        # a homomorphism from some right adjunct.
        return all(
            any(has_homomorphism(r, adj) for r in right) for adj in left
        )
    constants = set()
    for adjunct in left + right:
        constants.update(adjunct.constants())
    for adjunct in left:
        for completion in _completions_for_containment(adjunct, constants):
            if not any(has_homomorphism(r, completion) for r in right):
                return False
    return True


def _completions_for_containment(
    adjunct: ConjunctiveQuery, constants
) -> List[ConjunctiveQuery]:
    """The left-hand sides to test: the adjunct itself when already
    complete w.r.t. ``constants``, otherwise its possible completions.

    Disequality-free adjuncts still require the completion argument when
    the right-hand side carries disequalities, so only the fully
    complete case short-circuits.
    """
    if adjunct.is_complete(constants):
        return [adjunct]
    from repro.minimize.canonical import possible_completions  # lazy: avoid cycle

    return possible_completions(adjunct, constants)


def is_contained_cq_fast(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Chandra-Merlin fast path for disequality-free CQs.

    Sound and complete only when *both* queries are in CQ; used
    internally by standard minimization and as a test oracle.
    """
    if q1.has_disequalities() or q2.has_disequalities():
        raise ValueError("fast path requires disequality-free queries")
    return has_homomorphism(q2, q1)


def is_equivalent(q1: Query, q2: Query) -> bool:
    """Decide ``q1 ≡ q2`` (Def. 2.8): containment in both directions."""
    return is_contained(q1, q2) and is_contained(q2, q1)


def canonical_database(query: ConjunctiveQuery):
    """Freeze a disequality-free CQ into its canonical database.

    Every variable becomes a fresh constant ``@name``; the frozen head
    is returned alongside.  ``q1 ⊆ q2`` iff the frozen head of ``q1``
    is in ``q2(canonical_database(q1))`` — the classic Chandra-Merlin
    construction, valid only without disequalities.
    """
    from repro.db.instance import AnnotatedDatabase

    if query.has_disequalities():
        raise ValueError("canonical databases require disequality-free queries")

    def freeze(term):
        if is_variable(term):
            return "@{}".format(term.name)
        return term.value

    db = AnnotatedDatabase()
    for atom in query.atoms:
        db.add(atom.relation, tuple(freeze(t) for t in atom.args))
    frozen_head = tuple(freeze(t) for t in query.head.args)
    return db, frozen_head


def is_contained_canonical_db(q1: ConjunctiveQuery, q2: Query) -> bool:
    """Containment via canonical databases (CQ left-hand side only).

    An independent oracle for :func:`is_contained`, used by the
    differential tests.
    """
    from repro.engine.evaluate import evaluate

    db, frozen_head = canonical_database(q1)
    return frozen_head in evaluate(q2, db)

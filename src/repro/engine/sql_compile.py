"""Compilation of CQ≠ to SQL over annotation-carrying tables.

Each relation ``R`` of arity ``k`` is stored as a table ``R`` with value
columns ``c0..c{k-1}`` and a ``prov`` column holding the annotation
symbol.  A conjunctive query compiles to a single ``SELECT`` with one
table alias per relational atom:

* repeated variables become join equalities,
* constants become parameterized equality predicates,
* disequality atoms become ``<>`` predicates,
* the projection returns the provenance column of every atom plus the
  value column of every head variable.

Every result row of the compiled statement corresponds one-to-one to an
assignment of the query (Def. 2.6), so the provenance polynomial is the
sum over rows of the product of the ``prov`` columns — exactly
Def. 2.12.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import UnsupportedQueryError
from repro.query.aggregate import AggregateQuery, head_terms_to_str
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Variable, is_variable

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


@dataclass(frozen=True)
class CompiledQuery:
    """A compiled conjunctive query.

    ``sql``
        the parameterized SELECT statement;
    ``parameters``
        positional parameters (constant values);
    ``head_slots``
        for each head position, either ``("column", index)`` — the index
        of a projected column — or ``("const", value)``;
    ``prov_count``
        number of leading provenance columns in the projection (one per
        relational atom).
    """

    sql: str
    parameters: Tuple[object, ...]
    head_slots: Tuple[Tuple[str, object], ...]
    prov_count: int


def _quote_identifier(name: str) -> str:
    if not _NAME_RE.match(name):
        raise UnsupportedQueryError(
            "relation name {!r} is not a valid SQL identifier".format(name)
        )
    return '"{}"'.format(name)


def compile_cq_to_sql(query: ConjunctiveQuery) -> CompiledQuery:
    """Compile one conjunctive query to a parameterized SELECT.

    >>> from repro.query.parser import parse_query
    >>> compiled = compile_cq_to_sql(parse_query("ans(x) :- R(x, y), x != y"))
    >>> print(compiled.sql)
    SELECT t0.prov, t0.c0 FROM "R" t0 WHERE t0.c0 <> t0.c1
    """
    canonical_column: Dict[Variable, str] = {}
    where: List[str] = []
    parameters: List[object] = []
    from_parts: List[str] = []

    for index, atom in enumerate(query.atoms):
        alias = "t{}".format(index)
        from_parts.append("{} {}".format(_quote_identifier(atom.relation), alias))
        for position, term in enumerate(atom.args):
            column = "{}.c{}".format(alias, position)
            if is_variable(term):
                if term in canonical_column:
                    where.append("{} = {}".format(column, canonical_column[term]))
                else:
                    canonical_column[term] = column
            else:
                where.append("{} = ?".format(column))
                parameters.append(term.value)

    for dis in sorted(query.disequalities, key=lambda d: d.sort_key()):
        refs = []
        for term in dis.pair:
            if is_variable(term):
                refs.append(canonical_column[term])
            else:
                refs.append("?")
                parameters.append(term.value)
        where.append("{} <> {}".format(refs[0], refs[1]))

    select_columns = ["t{}.prov".format(i) for i in range(len(query.atoms))]
    head_slots: List[Tuple[str, object]] = []
    projected: Dict[Variable, int] = {}
    for term in query.head.args:
        if is_variable(term):
            if term not in projected:
                projected[term] = len(select_columns)
                select_columns.append(canonical_column[term])
            head_slots.append(("column", projected[term]))
        else:
            head_slots.append(("const", term.value))

    sql = "SELECT {} FROM {}".format(
        ", ".join(select_columns), ", ".join(from_parts)
    )
    if where:
        sql += " WHERE {}".format(" AND ".join(where))
    return CompiledQuery(
        sql=sql,
        parameters=tuple(parameters),
        head_slots=tuple(head_slots),
        prov_count=len(query.atoms),
    )


@dataclass(frozen=True)
class CompiledAggregate:
    """A compiled aggregate query.

    ``rules``
        one :class:`CompiledQuery` per adjunct rule, compiled from the
        rule's *inner* CQ (grouping columns first, aggregated columns
        after) — every fetched row is one contribution;
    ``group_arity``
        number of leading grouping positions in each decoded head;
    ``header``
        the rendered aggregate head (for EXPLAIN-style output).
    """

    rules: Tuple[CompiledQuery, ...]
    group_arity: int
    header: str


def compile_aggregate_to_sql(query: AggregateQuery) -> CompiledAggregate:
    """Compile an aggregate query's rules to per-contribution SELECTs.

    Aggregation itself happens client-side in the semimodule — SQL
    ``GROUP BY`` would collapse the per-assignment rows the tensor
    construction needs — so each rule compiles exactly like its inner
    CQ and the accumulator folds the fetched contributions.

    >>> from repro.query.parser import parse_query
    >>> compiled = compile_aggregate_to_sql(
    ...     parse_query("sales(c, sum(v)) :- S(c, v)"))
    >>> print(compiled.rules[0].sql)
    SELECT t0.prov, t0.c0, t0.c1 FROM "S" t0
    >>> compiled.group_arity
    1
    """
    return CompiledAggregate(
        rules=tuple(compile_cq_to_sql(rule.inner) for rule in query.rules),
        group_arity=query.group_arity,
        header=head_terms_to_str(
            query.head_relation, query.rules[0].head_terms
        ),
    )


def decode_row(
    compiled: CompiledQuery, row: Sequence[object]
) -> Tuple[Tuple[object, ...], Tuple[str, ...]]:
    """Split a fetched SQL row into ``(head_tuple, prov_symbols)``."""
    symbols = tuple(str(value) for value in row[: compiled.prov_count])
    head: List[object] = []
    for kind, payload in compiled.head_slots:
        if kind == "column":
            head.append(row[payload])
        else:
            head.append(payload)
    return tuple(head), symbols

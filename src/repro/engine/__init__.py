"""Provenance-aware query evaluation.

Two independent engines compute the same annotated results:

* :mod:`repro.engine.evaluate` — a backtracking assignment enumerator
  that implements Defs. 2.6 and 2.12 literally;
* :mod:`repro.engine.sql_compile` +
  :class:`repro.db.sqlite_backend.SQLiteDatabase` — compilation of CQ≠
  to SQL self-joins executed by SQLite, with provenance reassembled from
  the per-tuple annotation column.

Tests use them as differential oracles for each other.
"""

from repro.engine.evaluate import (
    Assignment,
    assignments,
    evaluate,
    provenance,
    provenance_of_boolean,
)
from repro.engine.sql_compile import compile_cq_to_sql

__all__ = [
    "Assignment",
    "assignments",
    "evaluate",
    "provenance",
    "provenance_of_boolean",
    "compile_cq_to_sql",
]

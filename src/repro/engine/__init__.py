"""Provenance-aware query evaluation.

Three independent engines compute the same annotated results:

* :mod:`repro.engine.hashjoin` — the default: set-at-a-time hash joins
  over K-relations with interned monomials
  (:mod:`repro.algebra.intern`) and a cardinality-banded plan cache
  (:mod:`repro.engine.plan_cache`);
* :mod:`repro.engine.evaluate` — a backtracking assignment enumerator
  that implements Defs. 2.6 and 2.12 literally;
* :mod:`repro.engine.sql_compile` +
  :class:`repro.db.sqlite_backend.SQLiteDatabase` — compilation of CQ≠
  to SQL self-joins executed by SQLite, with provenance reassembled from
  the per-tuple annotation column;
* :mod:`repro.engine.sharded` — the hash-join plans fanned out across
  hash-partitioned shards (:mod:`repro.db.sharding`) evaluated by a
  worker pool, with shard-local intern tables merged back into global
  ids.

Tests use them as differential oracles for one another.
"""

from repro.engine.evaluate import (
    ENGINES,
    Assignment,
    assignments,
    evaluate,
    evaluate_backtracking,
    provenance,
    provenance_of_boolean,
)
from repro.engine.hashjoin import (
    clear_plan_cache,
    default_plan_cache,
    evaluate_aggregate_hashjoin,
    evaluate_hashjoin,
)
from repro.engine.plan_cache import PlanCache, cardinality_band
from repro.engine.sharded import (
    ShardedExecutor,
    evaluate_aggregate_sharded,
    evaluate_sharded,
)
from repro.engine.sql_compile import compile_cq_to_sql

__all__ = [
    "ENGINES",
    "Assignment",
    "assignments",
    "evaluate",
    "evaluate_backtracking",
    "evaluate_hashjoin",
    "evaluate_aggregate_hashjoin",
    "evaluate_sharded",
    "evaluate_aggregate_sharded",
    "ShardedExecutor",
    "provenance",
    "provenance_of_boolean",
    "compile_cq_to_sql",
    "PlanCache",
    "cardinality_band",
    "default_plan_cache",
    "clear_plan_cache",
]

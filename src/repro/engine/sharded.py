"""Shard-parallel hash-join execution of CQ≠/UCQ≠ and aggregates.

Scales the set-at-a-time engine (:mod:`repro.engine.hashjoin`) across
cores: the database is hash-partitioned into N shards
(:mod:`repro.db.sharding`), each conjunctive plan is **anchored** on
one join step over a partitioned relation, and shard ``i`` runs the
plan with the anchor step scanning only the rows it owns (every other
step scans a replicated copy).  Every Def. 2.6 assignment maps the
anchor atom to exactly one owned row, so the shard results partition
the assignment space and their union is annotation-identical to the
Def. 2.12 sum over assignments — the cross-shard differential suite
asserts this against the backtracking engine for every shard count.

Two result paths exist, selected by the ``columnar`` flag:

* **Columnar** (default): workers keep a *persistent* shard-local
  :class:`~repro.algebra.intern.InternTable` for the lifetime of the
  pool, cache their per-snapshot join-step indexes, and return results
  as flat :class:`~repro.algebra.columnar.ColumnarTable` columns plus
  an *incremental* intern export (only the symbols/monomials minted
  since the previous task).  The parent accumulates each worker's
  export log, maintains a dense ``local id -> global id`` array per
  (worker, target-table) pair, and remaps whole result columns in one
  gather (numpy-vectorized when available).  Thread-mode workers
  intern straight into the caller's table — no remap at all.
* **Legacy dict** (``columnar=False``): fresh intern table per task,
  dict-of-dict results, per-monomial remapping merge — kept as the
  reference the columnar-vs-dict differential suite runs against.

Execution backends: a ``concurrent.futures`` process pool whose
:class:`~repro.db.sharding.ShardPayload` ships once per database epoch
— through a ``multiprocessing.shared_memory`` segment holding the
offset-based encoding (:func:`repro.db.sharding.encode_payload`) on the
columnar path, pickled initargs otherwise — with a thread-pool fallback
when process spawning is unavailable.  :class:`ShardedExecutor` owns
pool, segment and partitioning, and is what a
:class:`~repro.session.QuerySession` keeps warm across a batch.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import uuid
import weakref
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.algebra.columnar import ColumnarTable, decode_polynomials
from repro.algebra.intern import InternRemapper, InternTable, shared_intern
from repro.db.instance import AnnotatedDatabase
from repro.db.sharding import (
    ShardedDatabase,
    ShardPayload,
    decode_payload,
    encode_payload,
)
from repro.engine.hashjoin import HeadTuple, _Annotation, _execute, plan_for
from repro.engine.plan_cache import PlanCache
from repro.errors import EvaluationError
from repro.obs.trace import current_tracer
from repro.query.aggregate import AggregateQuery
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import Query, adjuncts_of
from repro.semiring.polynomial import Polynomial

#: Default number of shards when the caller does not choose one.
DEFAULT_SHARDS = 4

#: What one shard returns for one plan on the legacy dict path:
#: interned annotations plus the shard-local table snapshot they are
#: encoded against.
ShardResult = Tuple[
    Dict[HeadTuple, _Annotation], Tuple[List[str], List[Tuple[int, ...]]]
]

_EXECUTOR_MODES = ("process", "thread")


class _ColumnarShard(NamedTuple):
    """One shard's columnar result plus its incremental intern export.

    ``token`` identifies the worker's persistent intern table (``None``
    for thread-mode results, whose ids are already global).  The export
    continues the worker's log at ``symbol_start``/``monomial_start`` —
    the parent splices contiguous deltas into a full replica.
    """

    token: Optional[str]
    symbol_start: int
    monomial_start: int
    symbols: List[str]
    monomial_keys: List[Tuple[int, ...]]
    table: ColumnarTable


def _release_shm(shm) -> None:
    """Close and unlink a shared-memory segment, ignoring races."""
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - teardown race
        pass


def _shutdown_pool(pool, shm=None) -> None:
    """Finalizer target: release a leaked executor's pool and segment.

    Registered through :func:`weakref.finalize` (never ``__del__``) so
    a session dropped without :meth:`ShardedExecutor.close` — an
    exception path, a forgotten context manager — cannot strand a
    process pool or leak its shared-memory segment.  The callback must
    not reference the executor, or the reference cycle would keep it
    alive forever.
    """
    pool.shutdown(wait=False)
    if shm is not None:
        _release_shm(shm)


# ----------------------------------------------------------------------
# Shard tasks (run in workers: top-level, picklable by reference)
# ----------------------------------------------------------------------
def _facts_fn(payload, anchor_step: Optional[int], shard_index: int):
    def facts(step_index, step):
        if step_index == anchor_step:
            return payload.owned_facts(step.relation, shard_index)
        return payload.facts(step.relation)

    return facts


def _index_key_fn(plan, anchor_step: Optional[int], shard_index: int, token: int):
    """Cache keys for one plan run's join-step indexes.

    Non-anchor steps scan the full relation, so their index is shared
    across shards (owner slot ``-1``); the anchor step's index covers
    one shard's fragment only.  The intern token pins the symbol ids
    the index stores to the table that minted them.
    """

    def index_key(step_index):
        owner = shard_index if step_index == anchor_step else -1
        return (token, plan, step_index, owner)

    return index_key


def _run_plan(
    payload, plan, anchor_step: Optional[int], shard_index: int
) -> ShardResult:
    """Legacy dict path: one plan, one shard, a fresh local table."""
    intern = InternTable()
    results = _execute(
        plan, None, intern, facts_fn=_facts_fn(payload, anchor_step, shard_index)
    )
    return results, intern.export_state()


def _run_plan_columnar(
    payload,
    plan,
    anchor_step: Optional[int],
    shard_index: int,
    intern: InternTable,
) -> ColumnarTable:
    """Columnar path: run one plan on one shard into ``intern``'s ids.

    Join-step indexes are cached on the payload snapshot, so re-running
    the same plan over an unchanged snapshot (the steady state of a
    refresh loop) skips the build scans and goes straight to probing.
    """
    results = _execute(
        plan,
        None,
        intern,
        facts_fn=_facts_fn(payload, anchor_step, shard_index),
        index_cache=payload.index_cache,
        index_key=_index_key_fn(plan, anchor_step, shard_index, intern.token),
    )
    return ColumnarTable.from_results(results)


def _run_plan_columnar_local(
    payload, plan, anchor_step, shard_index, intern: InternTable
) -> _ColumnarShard:
    """Thread-mode columnar task: interns directly into the caller's
    table, so the result needs no export and no remap."""
    table = _run_plan_columnar(payload, plan, anchor_step, shard_index, intern)
    return _ColumnarShard(None, 0, 0, [], [], table)


def _run_aggregate(
    payload,
    query: AggregateQuery,
    plans: Sequence,
    anchors: Sequence[Optional[int]],
    shard_index: int,
    intern: Optional[InternTable] = None,
):
    """Fold one shard's rule contributions into an accumulator state.

    Rules whose plans have no partitioned anchor run on shard 0 only
    (their work cannot be split); anchored rules run everywhere.  With
    a persistent ``intern`` (process workers), join-step indexes are
    cached on the snapshot like the columnar plan path.
    """
    # Imported here: repro.aggregate reaches back into repro.engine
    # during package initialization (same cycle hashjoin dodges).
    from repro.aggregate.result import AggregateAccumulator

    persistent = intern is not None
    intern = InternTable() if intern is None else intern
    accumulator = AggregateAccumulator(query)
    for rule, plan, anchor in zip(query.rules, plans, anchors):
        if anchor is None and shard_index != 0:
            continue
        results = _execute(
            plan,
            None,
            intern,
            facts_fn=_facts_fn(payload, anchor, shard_index),
            index_cache=payload.index_cache if persistent else None,
            index_key=(
                _index_key_fn(plan, anchor, shard_index, intern.token)
                if persistent
                else None
            ),
        )
        for head, annotation in sorted(
            results.items(), key=lambda kv: repr(kv[0])
        ):
            accumulator.add(rule, head, intern.polynomial(annotation))
    return accumulator.results()


#: Worker-process globals: the payload installed by the pool initializer
#: (plus the shared-memory segment backing it, kept mapped for the
#: pool's lifetime) and the persistent shard-local intern table.
_WORKER_PAYLOAD = None
_WORKER_SHM = None
_WORKER_INTERN: Optional[InternTable] = None
_WORKER_TOKEN: Optional[str] = None
_WORKER_EXPORTED = [0, 0]


def _init_worker(payload: ShardPayload) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _init_worker_shm(name: str) -> None:
    """Pool initializer for the shared-memory shipping path.

    Attaches to the parent's segment by name and opens the offset-based
    payload view over its buffer.  The *parent* owns the segment's
    lifecycle, but attaching registers it with a resource tracker
    (bpo-39959): under ``spawn``/``forkserver`` the worker's tracker is
    not the parent's and would unlink the segment on worker exit, so
    the registration is withdrawn; under ``fork`` the tracker *is* the
    parent's (its name-set already holds the segment, the duplicate
    register is a no-op) and withdrawing would erase the parent's own
    registration instead.
    """
    global _WORKER_PAYLOAD, _WORKER_SHM
    import multiprocessing
    from multiprocessing import resource_tracker, shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() != "fork":
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
    _WORKER_SHM = shm
    _WORKER_PAYLOAD = decode_payload(shm.buf)


def _worker_intern() -> InternTable:
    """The worker's persistent intern table, created on first use.

    Living as long as the worker process does, it keeps the
    ``times_symbol`` memoization warm across evaluations — the single
    biggest per-task cost of the fresh-table-per-task design it
    replaces.  The token names this table in parent-side export logs.
    """
    global _WORKER_INTERN, _WORKER_TOKEN, _WORKER_EXPORTED
    if _WORKER_INTERN is None:
        _WORKER_INTERN = InternTable()
        _WORKER_TOKEN = uuid.uuid4().hex
        _WORKER_EXPORTED = [0, 0]
    return _WORKER_INTERN


def _run_plan_in_worker(plan, anchor_step, shard_index):
    return _run_plan(_WORKER_PAYLOAD, plan, anchor_step, shard_index)


def _run_plan_columnar_in_worker(plan, anchor_step, shard_index):
    intern = _worker_intern()
    table = _run_plan_columnar(
        _WORKER_PAYLOAD, plan, anchor_step, shard_index, intern
    )
    symbol_start, monomial_start = _WORKER_EXPORTED
    symbols, monomial_keys = intern.export_range(symbol_start, monomial_start)
    _WORKER_EXPORTED[0] = symbol_start + len(symbols)
    _WORKER_EXPORTED[1] = monomial_start + len(monomial_keys)
    return _ColumnarShard(
        _WORKER_TOKEN, symbol_start, monomial_start, symbols, monomial_keys,
        table,
    )


def _run_aggregate_in_worker(query, plans, anchors, shard_index):
    return _run_aggregate(
        _WORKER_PAYLOAD, query, plans, anchors, shard_index,
        intern=_worker_intern(),
    )


# ----------------------------------------------------------------------
# Parent-side merging
# ----------------------------------------------------------------------
def _merge_shard_results(
    intern: InternTable,
    shard_outputs: Sequence[ShardResult],
) -> Dict[HeadTuple, _Annotation]:
    """Union per-shard annotation dictionaries under global intern ids.

    Remapping preserves each monomial as a symbol multiset, and dict
    union adds coefficients — polynomial addition in ``N[X]`` — so the
    merged table equals the single-table evaluation exactly.  (The
    legacy dict path; the columnar path remaps flat columns instead.)
    """
    merged: Dict[HeadTuple, _Annotation] = {}
    for results, state in shard_outputs:
        remap = intern.remapper(*state)
        for head, annotation in results.items():
            bucket = merged.get(head)
            if bucket is None:
                bucket = merged[head] = {}
            for monomial, coefficient in annotation.items():
                key = remap(monomial)
                bucket[key] = bucket.get(key, 0) + coefficient
    return merged


def sum_adjunct_annotations(
    adjuncts: Sequence[ConjunctiveQuery],
    table: Dict[ConjunctiveQuery, Dict[HeadTuple, _Annotation]],
) -> Dict[HeadTuple, _Annotation]:
    """Add up per-adjunct interned annotations (UCQ union semantics).

    ``adjuncts`` may repeat — each occurrence contributes once, exactly
    as :func:`repro.engine.hashjoin.evaluate_hashjoin` sums adjuncts.
    """
    merged: Dict[HeadTuple, _Annotation] = {}
    for adjunct in adjuncts:
        for head, annotation in table[adjunct].items():
            bucket = merged.get(head)
            if bucket is None:
                merged[head] = dict(annotation)
                continue
            for monomial, coefficient in annotation.items():
                bucket[monomial] = bucket.get(monomial, 0) + coefficient
    return merged


class _WorkerLog:
    """The parent's accumulated replica of one worker intern table.

    Workers ship contiguous export deltas; :meth:`absorb` splices them
    in order (tasks of one worker complete in submission order, so
    sorting a wave by ``monomial_start`` restores the mint order).  Per
    target intern table, an :class:`InternRemapper` is grown lazily to
    the log's current length — the dense remap array is built once per
    monomial, not once per evaluation.
    """

    __slots__ = ("symbols", "keys", "remappers")

    def __init__(self):  # noqa: D107
        self.symbols: List[str] = []
        self.keys: List[Tuple[int, ...]] = []
        self.remappers: Dict[int, InternRemapper] = {}

    def absorb(self, shard: _ColumnarShard) -> None:
        if (
            shard.monomial_start != len(self.keys)
            or shard.symbol_start != len(self.symbols)
        ):
            if (
                shard.monomial_start + len(shard.monomial_keys)
                <= len(self.keys)
                and shard.symbol_start + len(shard.symbols)
                <= len(self.symbols)
            ):
                return  # duplicate delivery of an already-spliced delta
            raise EvaluationError(
                "worker intern export arrived out of order "
                "(expected offset {}, got {})".format(
                    len(self.keys), shard.monomial_start
                )
            )
        self.symbols.extend(shard.symbols)
        self.keys.extend(shard.monomial_keys)

    def remapper_for(self, intern: InternTable) -> InternRemapper:
        remapper = self.remappers.get(intern.token)
        if remapper is None:
            remapper = self.remappers[intern.token] = InternRemapper(intern)
        if remapper.mapped_monomials < len(self.keys):
            remapper.extend(
                self.symbols[remapper.mapped_symbols:],
                self.keys[remapper.mapped_monomials:],
            )
        return remapper


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ShardedExecutor:
    """Owns one database's partitioning, worker pool and shipped payload.

    Reuse it (directly or through a
    :class:`~repro.session.QuerySession`) to amortize partitioning,
    payload shipping and worker start-up across many queries; the pool
    re-ships its payload only when :meth:`refresh` detects a new
    database epoch.

    ``mode`` is ``"process"`` (true parallelism, shared-memory or
    pickled payloads) or ``"thread"`` (shared payload, cheap start-up —
    the fallback used automatically when process pools cannot start).
    ``columnar`` selects the flat-column result path (default) or the
    legacy dict-of-dicts path.
    """

    def __init__(
        self,
        db: AnnotatedDatabase,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        mode: str = "process",
        broadcast_threshold: Optional[int] = None,
        columnar: bool = True,
    ):  # noqa: D107
        if mode not in _EXECUTOR_MODES:
            raise EvaluationError(
                "unknown executor mode {!r}; supported: {}".format(
                    mode, ", ".join(_EXECUTOR_MODES)
                )
            )
        shards = DEFAULT_SHARDS if shards is None else shards
        self._db = db
        self._sharded = ShardedDatabase(
            db, shards, broadcast_threshold=broadcast_threshold
        )
        self._workers = (
            max(1, min(shards, os.cpu_count() or 1))
            if workers is None
            else max(1, workers)
        )
        self._mode = mode
        self._columnar = bool(columnar)
        self._pool = None
        self._pool_epoch: Optional[int] = None
        self._shm = None
        self._finalizer: Optional[weakref.finalize] = None
        self._worker_logs: Dict[str, _WorkerLog] = {}
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    @property
    def sharded_db(self) -> ShardedDatabase:
        """The parent-side partitioning this executor evaluates over."""
        return self._sharded

    @property
    def shard_count(self) -> int:
        """Number of shards each anchored plan fans out to."""
        return self._sharded.shard_count

    @property
    def workers(self) -> int:
        """Worker-pool size."""
        return self._workers

    @property
    def mode(self) -> str:
        """The currently effective execution mode."""
        return self._mode

    @property
    def columnar(self) -> bool:
        """Whether results travel as flat columns (vs legacy dicts)."""
        return self._columnar

    def refresh(self) -> bool:
        """Re-sync partitioning with the database; True when it changed."""
        return self._sharded.refresh()

    def close(self) -> None:
        """Shut the worker pool down, unlink the segment (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._release_pool(wait=True)
            self._pool_epoch = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- pool management ------------------------------------------------
    def _adopt_pool(self, pool, shm=None) -> None:
        """Install ``pool`` (and its segment) and arm the leak finalizer.

        The finalizer closes over the *pool and segment*, not the
        executor, so dropping the executor without :meth:`close` still
        shuts the workers down and unlinks the shared memory when the
        garbage collector reclaims it.
        """
        self._pool = pool
        self._shm = shm
        self._finalizer = weakref.finalize(self, _shutdown_pool, pool, shm)

    def _release_pool(self, wait: bool) -> None:
        """Shut the pool down, unlink its segment, disarm the finalizer."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._pool.shutdown(wait=wait)
        self._pool = None
        if self._shm is not None:
            _release_shm(self._shm)
            self._shm = None
        # Tokens belong to worker processes of the released pool; any
        # future pool mints fresh tables, so the logs are dead weight.
        self._worker_logs.clear()

    def _ensure_pool(self):
        if self._closed:
            raise EvaluationError("executor is closed")
        epoch = self._sharded.epoch
        if self._pool is not None and (
            # Thread workers read payload() per submit and hold no epoch
            # state, so only process pools (whose initializer installed
            # a snapshot) must be recreated when the database changes.
            self._mode == "thread" or self._pool_epoch == epoch
        ):
            return self._pool
        if self._pool is not None:
            self._release_pool(wait=True)
        if self._mode == "process":
            shm = None
            try:
                # The span covers snapshotting the payload and starting
                # the pool — the "ship" cost a new epoch pays before any
                # worker computes.  Columnar payloads are encoded once
                # into a shared-memory segment every worker maps;
                # otherwise (or when no segment can be created) initargs
                # pickle the payload per worker as the processes spawn.
                with current_tracer().span(
                    "shard.ship", workers=self._workers
                ) as span:
                    payload = self._sharded.payload()
                    span.set(facts=payload.fact_count())
                    initializer, initargs = _init_worker, (payload,)
                    if self._columnar:
                        shm = self._create_segment(payload, span)
                        if shm is not None:
                            initializer, initargs = _init_worker_shm, (shm.name,)
                    if shm is None:
                        span.set(transport="pickle")
                    self._adopt_pool(
                        concurrent.futures.ProcessPoolExecutor(
                            max_workers=self._workers,
                            initializer=initializer,
                            initargs=initargs,
                        ),
                        shm,
                    )
            except (OSError, ValueError):
                if shm is not None:
                    _release_shm(shm)
                self._mode = "thread"
        if self._pool is None:
            self._adopt_pool(
                concurrent.futures.ThreadPoolExecutor(max_workers=self._workers)
            )
        self._pool_epoch = epoch
        return self._pool

    @staticmethod
    def _create_segment(payload: ShardPayload, span):
        """Encode ``payload`` into a fresh shared-memory segment.

        Returns ``None`` when the platform cannot provide one (no
        ``/dev/shm``, permission trouble, unencodable payload) — the
        caller then falls back to pickled initargs.
        """
        try:
            from multiprocessing import shared_memory

            data = encode_payload(payload)
            shm = shared_memory.SharedMemory(create=True, size=max(1, len(data)))
            shm.buf[: len(data)] = data
            span.set(transport="shm", bytes=len(data))
            return shm
        except Exception:
            return None

    def _submit(self, pool, kind: str, args, intern):
        if self._mode == "process":
            if kind == "plan":
                worker = (
                    _run_plan_columnar_in_worker
                    if self._columnar
                    else _run_plan_in_worker
                )
                return pool.submit(worker, *args)
            return pool.submit(_run_aggregate_in_worker, *args)
        payload = self._sharded.payload()
        if kind == "plan":
            if self._columnar:
                return pool.submit(
                    _run_plan_columnar_local, payload, *args, intern
                )
            return pool.submit(_run_plan, payload, *args)
        return pool.submit(_run_aggregate, payload, *args)

    def _run_tasks(
        self, kind: str, task_args: Sequence[Tuple], intern=None
    ) -> List:
        """Fan a task list out to the pool, falling back to threads when
        the process pool dies (spawn failure, unpicklable payloads)."""
        pool = self._ensure_pool()
        try:
            futures = [
                self._submit(pool, kind, args, intern) for args in task_args
            ]
            return [future.result() for future in futures]
        except (BrokenProcessPool, pickle.PicklingError, OSError):
            if self._mode != "process":
                raise
            self._mode = "thread"
            self._release_pool(wait=False)
            pool = self._ensure_pool()
            futures = [
                self._submit(pool, kind, args, intern) for args in task_args
            ]
            return [future.result() for future in futures]

    # -- columnar ingestion ---------------------------------------------
    def _ingest_columnar(
        self, outputs: Sequence[_ColumnarShard], intern: InternTable
    ) -> List[ColumnarTable]:
        """Splice worker intern exports and remap result columns.

        Thread-mode results (token ``None``) already carry global ids;
        process results are rewritten through the per-worker dense remap
        array — one gather per shard result instead of one dict walk
        per monomial.
        """
        by_token: Dict[str, List[_ColumnarShard]] = {}
        for output in outputs:
            if output.token is not None:
                by_token.setdefault(output.token, []).append(output)
        for token, shards in by_token.items():
            log = self._worker_logs.get(token)
            if log is None:
                log = self._worker_logs[token] = _WorkerLog()
            for shard in sorted(shards, key=lambda s: s.monomial_start):
                log.absorb(shard)
        tables: List[ColumnarTable] = []
        for output in outputs:
            table = output.table
            if output.token is not None:
                remapper = self._worker_logs[output.token].remapper_for(intern)
                table.remap(remapper.mapping())
            tables.append(table)
        return tables

    # -- evaluation -----------------------------------------------------
    def evaluate_adjuncts(
        self,
        adjuncts: Sequence[ConjunctiveQuery],
        intern: InternTable,
        cache: Optional[PlanCache] = None,
    ) -> Dict[ConjunctiveQuery, object]:
        """Evaluate distinct adjuncts, merged into ``intern``'s ids.

        All (adjunct × shard) tasks of the batch are submitted in one
        wave, so a batch of small queries still fills every worker.
        Plans without a partitioned anchor run on shard 0 only.
        Returns ``{adjunct: ColumnarTable}`` on the columnar path and
        ``{adjunct: {head: {mid: coeff}}}`` on the legacy path — both
        are accepted by :func:`~repro.algebra.columnar.decode_polynomials`.
        """
        tracer = current_tracer()
        with tracer.span("shard.refresh"):
            self.refresh()
        unique = list(dict.fromkeys(adjuncts))
        task_args = []
        spans = []  # (start, count) into task_args per adjunct
        for adjunct in unique:
            plan = plan_for(adjunct, self._db, cache)
            anchor = self._sharded.anchor_step_for(plan)
            shard_indices = (
                range(self._sharded.shard_count)
                if anchor is not None
                else range(1)
            )
            spans.append((len(task_args), len(shard_indices)))
            for shard_index in shard_indices:
                task_args.append((plan, anchor, shard_index))
        with tracer.span(
            "join",
            engine="sharded",
            shards=self._sharded.shard_count,
            tasks=len(task_args),
            columnar=self._columnar,
        ) as fanout:
            outputs = self._run_tasks("plan", task_args, intern)
            fanout.set(mode=self._mode)  # after any fallback flip
        merged: Dict[ConjunctiveQuery, object] = {}
        with tracer.span("shard.merge", adjuncts=len(unique)) as merge_span:
            if self._columnar:
                tables = self._ingest_columnar(outputs, intern)
                for adjunct, (start, count) in zip(unique, spans):
                    merged[adjunct] = ColumnarTable.concat(
                        tables[start:start + count]
                    )
                merge_span.set(
                    tuples=sum(
                        table.tuple_count() for table in merged.values()
                    ),
                    pairs=sum(
                        table.pair_count() for table in merged.values()
                    ),
                )
            else:
                for adjunct, (start, count) in zip(unique, spans):
                    merged[adjunct] = _merge_shard_results(
                        intern, outputs[start:start + count]
                    )
                merge_span.set(
                    tuples=sum(len(table) for table in merged.values())
                )
        return merged

    def evaluate(
        self,
        query: Query,
        cache: Optional[PlanCache] = None,
        intern: Optional[InternTable] = None,
    ) -> Dict[HeadTuple, Polynomial]:
        """Evaluate a CQ≠/UCQ≠ across the shards (Def. 2.12 polynomials)."""
        if isinstance(query, AggregateQuery):
            raise EvaluationError(
                "aggregate queries produce semimodule annotations; use "
                "evaluate_aggregate_sharded instead of evaluate_sharded"
            )
        intern = shared_intern() if intern is None else intern
        adjuncts = list(adjuncts_of(query))
        table = self.evaluate_adjuncts(adjuncts, intern, cache)
        with current_tracer().span("merge") as span:
            results = decode_polynomials(
                [table[adjunct] for adjunct in adjuncts], intern
            )
            span.set(tuples=len(results))
        return results

    def evaluate_aggregate(
        self,
        query: AggregateQuery,
        cache: Optional[PlanCache] = None,
    ):
        """Evaluate an aggregate query across the shards.

        Each shard folds its contributions into a local accumulator;
        the states merge through the monoid/semimodule layer, yielding
        the exact aggregated K-relation of the serial engines (addition
        in ``N[X]`` and ``N[X] ⊗ M`` is commutative and normal-form
        stable).  ``condense()`` stays on demand, as everywhere else.
        """
        from repro.aggregate.result import merge_aggregate_results

        tracer = current_tracer()
        with tracer.span("shard.refresh"):
            self.refresh()
        plans = [plan_for(rule.inner, self._db, cache) for rule in query.rules]
        anchors = [self._sharded.anchor_step_for(plan) for plan in plans]
        shard_count = (
            self._sharded.shard_count
            if any(anchor is not None for anchor in anchors)
            else 1
        )
        with tracer.span(
            "join", engine="sharded", shards=shard_count, tasks=shard_count
        ) as fanout:
            outputs = self._run_tasks(
                "aggregate",
                [
                    (query, plans, anchors, shard_index)
                    for shard_index in range(shard_count)
                ],
            )
            fanout.set(mode=self._mode)
        with tracer.span("shard.merge", adjuncts=len(plans)):
            return merge_aggregate_results(outputs)


# ----------------------------------------------------------------------
# Public one-shot API (the ``engine="sharded"`` dispatch target)
# ----------------------------------------------------------------------
def evaluate_sharded(
    query: Query,
    db: AnnotatedDatabase,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    mode: str = "process",
    broadcast_threshold: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    intern: Optional[InternTable] = None,
    executor: Optional[ShardedExecutor] = None,
    columnar: bool = True,
) -> Dict[HeadTuple, Polynomial]:
    """Evaluate one query shard-parallel, returning Def. 2.12 polynomials.

    One-shot convenience: builds (and tears down) a
    :class:`ShardedExecutor` unless ``executor`` is given.  Batches
    should go through :class:`~repro.session.QuerySession`, which keeps
    the partitioning, pool, plans and intern table warm.

    >>> db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "a")]})
    >>> from repro.query.parser import parse_query
    >>> query = parse_query("ans(x) :- R(x, y), R(y, x)")
    >>> result = evaluate_sharded(
    ...     query, db, shards=2, workers=2, mode="thread",
    ...     broadcast_threshold=0)
    >>> sorted(str(p) for p in result.values())
    ['s1*s2', 's1*s2']
    """
    own = executor is None
    if own:
        executor = ShardedExecutor(
            db,
            shards=shards,
            workers=workers,
            mode=mode,
            broadcast_threshold=broadcast_threshold,
            columnar=columnar,
        )
    try:
        return executor.evaluate(query, cache=cache, intern=intern)
    finally:
        if own:
            executor.close()


def evaluate_aggregate_sharded(
    query: AggregateQuery,
    db: AnnotatedDatabase,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    mode: str = "process",
    broadcast_threshold: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    executor: Optional[ShardedExecutor] = None,
    columnar: bool = True,
):
    """Evaluate an aggregate query shard-parallel (semimodule results).

    >>> from repro.query.parser import parse_query
    >>> db = AnnotatedDatabase.from_rows({"S": [("nyc", 5), ("nyc", 2)]})
    >>> q = parse_query("sales(city, sum(cost)) :- S(city, cost)")
    >>> result = evaluate_aggregate_sharded(
    ...     q, db, shards=2, workers=2, mode="thread",
    ...     broadcast_threshold=0)
    >>> print(result[("nyc",)])
    ⟨s1 + s2⟩ sum[s2⊗2 + s1⊗5]
    """
    own = executor is None
    if own:
        executor = ShardedExecutor(
            db,
            shards=shards,
            workers=workers,
            mode=mode,
            broadcast_threshold=broadcast_threshold,
            columnar=columnar,
        )
    try:
        return executor.evaluate_aggregate(query, cache=cache)
    finally:
        if own:
            executor.close()

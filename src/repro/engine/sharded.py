"""Shard-parallel hash-join execution of CQ≠/UCQ≠ and aggregates.

Scales the set-at-a-time engine (:mod:`repro.engine.hashjoin`) across
cores: the database is hash-partitioned into N shards
(:mod:`repro.db.sharding`), each conjunctive plan is **anchored** on
one join step over a partitioned relation, and shard ``i`` runs the
plan with the anchor step scanning only the rows it owns (every other
step scans a replicated copy).  Every Def. 2.6 assignment maps the
anchor atom to exactly one owned row, so the shard results partition
the assignment space and their union is annotation-identical to the
Def. 2.12 sum over assignments — the cross-shard differential suite
asserts this against the backtracking engine for every shard count.

Workers intern provenance into **shard-local**
:class:`~repro.algebra.intern.InternTable`\\ s (worker processes cannot
share the parent's); results come home as ``{head: {local monomial id:
coefficient}}`` plus the table snapshot, and a merge step remaps every
monomial through :meth:`InternTable.remapper` while unioning the
per-binding annotation dictionaries — polynomial addition on globally
interned ids.  Aggregate rules fold shard-locally into
:class:`~repro.aggregate.result.AggregateAccumulator` states that are
merged through the monoid/semimodule layer
(:func:`repro.aggregate.result.merge_aggregate_results`).

Execution backends: a ``concurrent.futures`` process pool fed pickled
:class:`~repro.db.sharding.ShardPayload` snapshots (shipped once per
database epoch via the pool initializer, then reused for every query
of a batch), with a thread-pool fallback when process spawning is
unavailable.  :class:`ShardedExecutor` owns both and is what a
:class:`~repro.session.QuerySession` keeps warm across a batch.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import weakref
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.intern import InternTable, shared_intern
from repro.db.instance import AnnotatedDatabase
from repro.db.sharding import ShardedDatabase, ShardPayload
from repro.engine.hashjoin import HeadTuple, _Annotation, _execute, plan_for
from repro.engine.plan_cache import PlanCache
from repro.errors import EvaluationError
from repro.obs.trace import current_tracer
from repro.query.aggregate import AggregateQuery
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import Query, adjuncts_of
from repro.semiring.polynomial import Polynomial

#: Default number of shards when the caller does not choose one.
DEFAULT_SHARDS = 4

#: What one shard returns for one plan: interned annotations plus the
#: shard-local table snapshot they are encoded against.
ShardResult = Tuple[
    Dict[HeadTuple, _Annotation], Tuple[List[str], List[Tuple[int, ...]]]
]

_EXECUTOR_MODES = ("process", "thread")


def _shutdown_pool(pool) -> None:
    """Finalizer target: release a leaked executor's worker pool.

    Registered through :func:`weakref.finalize` (never ``__del__``) so
    a session dropped without :meth:`ShardedExecutor.close` — an
    exception path, a forgotten context manager — cannot strand a
    process pool.  The callback must not reference the executor, or the
    reference cycle would keep it alive forever.
    """
    pool.shutdown(wait=False)


# ----------------------------------------------------------------------
# Shard tasks (run in workers: top-level, picklable by reference)
# ----------------------------------------------------------------------
def _facts_fn(payload: ShardPayload, anchor_step: Optional[int], shard_index: int):
    def facts(step_index, step):
        if step_index == anchor_step:
            return payload.owned_facts(step.relation, shard_index)
        return payload.facts(step.relation)

    return facts


def _run_plan(
    payload: ShardPayload, plan, anchor_step: Optional[int], shard_index: int
) -> ShardResult:
    """Execute one plan on one shard into a fresh local intern table."""
    intern = InternTable()
    results = _execute(
        plan, None, intern, facts_fn=_facts_fn(payload, anchor_step, shard_index)
    )
    return results, intern.export_state()


def _run_aggregate(
    payload: ShardPayload,
    query: AggregateQuery,
    plans: Sequence,
    anchors: Sequence[Optional[int]],
    shard_index: int,
):
    """Fold one shard's rule contributions into an accumulator state.

    Rules whose plans have no partitioned anchor run on shard 0 only
    (their work cannot be split); anchored rules run everywhere.
    """
    # Imported here: repro.aggregate reaches back into repro.engine
    # during package initialization (same cycle hashjoin dodges).
    from repro.aggregate.result import AggregateAccumulator

    intern = InternTable()
    accumulator = AggregateAccumulator(query)
    for rule, plan, anchor in zip(query.rules, plans, anchors):
        if anchor is None and shard_index != 0:
            continue
        results = _execute(
            plan, None, intern, facts_fn=_facts_fn(payload, anchor, shard_index)
        )
        for head, annotation in sorted(
            results.items(), key=lambda kv: repr(kv[0])
        ):
            accumulator.add(rule, head, intern.polynomial(annotation))
    return accumulator.results()


#: Worker-process global: the payload installed by the pool initializer.
_WORKER_PAYLOAD: Optional[ShardPayload] = None


def _init_worker(payload: ShardPayload) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _run_plan_in_worker(plan, anchor_step, shard_index):
    return _run_plan(_WORKER_PAYLOAD, plan, anchor_step, shard_index)


def _run_aggregate_in_worker(query, plans, anchors, shard_index):
    return _run_aggregate(_WORKER_PAYLOAD, query, plans, anchors, shard_index)


# ----------------------------------------------------------------------
# Parent-side merging
# ----------------------------------------------------------------------
def _merge_shard_results(
    intern: InternTable,
    shard_outputs: Sequence[ShardResult],
) -> Dict[HeadTuple, _Annotation]:
    """Union per-shard annotation dictionaries under global intern ids.

    Remapping preserves each monomial as a symbol multiset, and dict
    union adds coefficients — polynomial addition in ``N[X]`` — so the
    merged table equals the single-table evaluation exactly.
    """
    merged: Dict[HeadTuple, _Annotation] = {}
    for results, state in shard_outputs:
        remap = intern.remapper(*state)
        for head, annotation in results.items():
            bucket = merged.get(head)
            if bucket is None:
                bucket = merged[head] = {}
            for monomial, coefficient in annotation.items():
                key = remap(monomial)
                bucket[key] = bucket.get(key, 0) + coefficient
    return merged


def sum_adjunct_annotations(
    adjuncts: Sequence[ConjunctiveQuery],
    table: Dict[ConjunctiveQuery, Dict[HeadTuple, _Annotation]],
) -> Dict[HeadTuple, _Annotation]:
    """Add up per-adjunct interned annotations (UCQ union semantics).

    ``adjuncts`` may repeat — each occurrence contributes once, exactly
    as :func:`repro.engine.hashjoin.evaluate_hashjoin` sums adjuncts.
    """
    merged: Dict[HeadTuple, _Annotation] = {}
    for adjunct in adjuncts:
        for head, annotation in table[adjunct].items():
            bucket = merged.get(head)
            if bucket is None:
                merged[head] = dict(annotation)
                continue
            for monomial, coefficient in annotation.items():
                bucket[monomial] = bucket.get(monomial, 0) + coefficient
    return merged


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ShardedExecutor:
    """Owns one database's partitioning and worker pool.

    Reuse it (directly or through a
    :class:`~repro.session.QuerySession`) to amortize partitioning,
    payload pickling and worker start-up across many queries; the pool
    re-ships its payload only when :meth:`refresh` detects a new
    database epoch.

    ``mode`` is ``"process"`` (true parallelism, pickled payloads) or
    ``"thread"`` (shared payload, cheap start-up — the fallback used
    automatically when process pools cannot start).
    """

    def __init__(
        self,
        db: AnnotatedDatabase,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        mode: str = "process",
        broadcast_threshold: Optional[int] = None,
    ):  # noqa: D107
        if mode not in _EXECUTOR_MODES:
            raise EvaluationError(
                "unknown executor mode {!r}; supported: {}".format(
                    mode, ", ".join(_EXECUTOR_MODES)
                )
            )
        shards = DEFAULT_SHARDS if shards is None else shards
        self._db = db
        self._sharded = ShardedDatabase(
            db, shards, broadcast_threshold=broadcast_threshold
        )
        self._workers = (
            max(1, min(shards, os.cpu_count() or 1))
            if workers is None
            else max(1, workers)
        )
        self._mode = mode
        self._pool = None
        self._pool_epoch: Optional[int] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    @property
    def sharded_db(self) -> ShardedDatabase:
        """The parent-side partitioning this executor evaluates over."""
        return self._sharded

    @property
    def shard_count(self) -> int:
        """Number of shards each anchored plan fans out to."""
        return self._sharded.shard_count

    @property
    def workers(self) -> int:
        """Worker-pool size."""
        return self._workers

    @property
    def mode(self) -> str:
        """The currently effective execution mode."""
        return self._mode

    def refresh(self) -> bool:
        """Re-sync partitioning with the database; True when it changed."""
        return self._sharded.refresh()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._release_pool(wait=True)
            self._pool_epoch = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- pool management ------------------------------------------------
    def _adopt_pool(self, pool) -> None:
        """Install ``pool`` and arm its leak finalizer.

        The finalizer closes over the *pool*, not the executor, so
        dropping the executor without :meth:`close` still shuts the
        workers down when the garbage collector reclaims it.
        """
        self._pool = pool
        self._finalizer = weakref.finalize(self, _shutdown_pool, pool)

    def _release_pool(self, wait: bool) -> None:
        """Shut the current pool down and disarm its finalizer."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._pool.shutdown(wait=wait)
        self._pool = None

    def _ensure_pool(self):
        if self._closed:
            raise EvaluationError("executor is closed")
        epoch = self._sharded.epoch
        if self._pool is not None and (
            # Thread workers read payload() per submit and hold no epoch
            # state, so only process pools (whose initializer installed
            # a snapshot) must be recreated when the database changes.
            self._mode == "thread" or self._pool_epoch == epoch
        ):
            return self._pool
        if self._pool is not None:
            self._release_pool(wait=True)
        if self._mode == "process":
            try:
                # The span covers snapshotting the payload and starting
                # the pool — the "ship" cost a new epoch pays before any
                # worker computes (initargs pickle the payload per
                # worker as the processes spawn).
                with current_tracer().span(
                    "shard.ship", workers=self._workers
                ) as span:
                    payload = self._sharded.payload()
                    span.set(facts=payload.fact_count())
                    self._adopt_pool(
                        concurrent.futures.ProcessPoolExecutor(
                            max_workers=self._workers,
                            initializer=_init_worker,
                            initargs=(payload,),
                        )
                    )
            except (OSError, ValueError):
                self._mode = "thread"
        if self._pool is None:
            self._adopt_pool(
                concurrent.futures.ThreadPoolExecutor(max_workers=self._workers)
            )
        self._pool_epoch = epoch
        return self._pool

    def _submit(self, pool, task, *args):
        if self._mode == "process":
            worker = (
                _run_plan_in_worker
                if task is _run_plan
                else _run_aggregate_in_worker
            )
            return pool.submit(worker, *args)
        return pool.submit(task, self._sharded.payload(), *args)

    def _run_tasks(self, task, task_args: Sequence[Tuple]) -> List:
        """Fan a task list out to the pool, falling back to threads when
        the process pool dies (spawn failure, unpicklable payloads)."""
        pool = self._ensure_pool()
        try:
            futures = [self._submit(pool, task, *args) for args in task_args]
            return [future.result() for future in futures]
        except (BrokenProcessPool, pickle.PicklingError, OSError):
            if self._mode != "process":
                raise
            self._mode = "thread"
            self._release_pool(wait=False)
            pool = self._ensure_pool()
            futures = [self._submit(pool, task, *args) for args in task_args]
            return [future.result() for future in futures]

    # -- evaluation -----------------------------------------------------
    def evaluate_adjuncts(
        self,
        adjuncts: Sequence[ConjunctiveQuery],
        intern: InternTable,
        cache: Optional[PlanCache] = None,
    ) -> Dict[ConjunctiveQuery, Dict[HeadTuple, _Annotation]]:
        """Evaluate distinct adjuncts, merged into ``intern``'s ids.

        All (adjunct × shard) tasks of the batch are submitted in one
        wave, so a batch of small queries still fills every worker.
        Plans without a partitioned anchor run on shard 0 only.
        """
        tracer = current_tracer()
        with tracer.span("shard.refresh"):
            self.refresh()
        unique = list(dict.fromkeys(adjuncts))
        planned = []
        task_args = []
        spans = []  # (start, count) into task_args per adjunct
        for adjunct in unique:
            plan = plan_for(adjunct, self._db, cache)
            anchor = self._sharded.anchor_step_for(plan)
            shard_indices = (
                range(self._sharded.shard_count)
                if anchor is not None
                else range(1)
            )
            spans.append((len(task_args), len(shard_indices)))
            planned.append(plan)
            for shard_index in shard_indices:
                task_args.append((plan, anchor, shard_index))
        with tracer.span(
            "join",
            engine="sharded",
            shards=self._sharded.shard_count,
            tasks=len(task_args),
        ) as fanout:
            outputs = self._run_tasks(_run_plan, task_args)
            fanout.set(mode=self._mode)  # after any fallback flip
        merged: Dict[ConjunctiveQuery, Dict[HeadTuple, _Annotation]] = {}
        with tracer.span("shard.merge", adjuncts=len(unique)) as merge_span:
            for adjunct, (start, count) in zip(unique, spans):
                merged[adjunct] = _merge_shard_results(
                    intern, outputs[start:start + count]
                )
            merge_span.set(
                tuples=sum(len(table) for table in merged.values())
            )
        return merged

    def evaluate(
        self,
        query: Query,
        cache: Optional[PlanCache] = None,
        intern: Optional[InternTable] = None,
    ) -> Dict[HeadTuple, Polynomial]:
        """Evaluate a CQ≠/UCQ≠ across the shards (Def. 2.12 polynomials)."""
        if isinstance(query, AggregateQuery):
            raise EvaluationError(
                "aggregate queries produce semimodule annotations; use "
                "evaluate_aggregate_sharded instead of evaluate_sharded"
            )
        intern = shared_intern() if intern is None else intern
        adjuncts = list(adjuncts_of(query))
        table = self.evaluate_adjuncts(adjuncts, intern, cache)
        merged = sum_adjunct_annotations(adjuncts, table)
        return {
            head: intern.polynomial(annotation)
            for head, annotation in merged.items()
        }

    def evaluate_aggregate(
        self,
        query: AggregateQuery,
        cache: Optional[PlanCache] = None,
    ):
        """Evaluate an aggregate query across the shards.

        Each shard folds its contributions into a local accumulator;
        the states merge through the monoid/semimodule layer, yielding
        the exact aggregated K-relation of the serial engines (addition
        in ``N[X]`` and ``N[X] ⊗ M`` is commutative and normal-form
        stable).  ``condense()`` stays on demand, as everywhere else.
        """
        from repro.aggregate.result import merge_aggregate_results

        tracer = current_tracer()
        with tracer.span("shard.refresh"):
            self.refresh()
        plans = [plan_for(rule.inner, self._db, cache) for rule in query.rules]
        anchors = [self._sharded.anchor_step_for(plan) for plan in plans]
        shard_count = (
            self._sharded.shard_count
            if any(anchor is not None for anchor in anchors)
            else 1
        )
        with tracer.span(
            "join", engine="sharded", shards=shard_count, tasks=shard_count
        ) as fanout:
            outputs = self._run_tasks(
                _run_aggregate,
                [
                    (query, plans, anchors, shard_index)
                    for shard_index in range(shard_count)
                ],
            )
            fanout.set(mode=self._mode)
        with tracer.span("shard.merge", adjuncts=len(plans)):
            return merge_aggregate_results(outputs)


# ----------------------------------------------------------------------
# Public one-shot API (the ``engine="sharded"`` dispatch target)
# ----------------------------------------------------------------------
def evaluate_sharded(
    query: Query,
    db: AnnotatedDatabase,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    mode: str = "process",
    broadcast_threshold: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    intern: Optional[InternTable] = None,
    executor: Optional[ShardedExecutor] = None,
) -> Dict[HeadTuple, Polynomial]:
    """Evaluate one query shard-parallel, returning Def. 2.12 polynomials.

    One-shot convenience: builds (and tears down) a
    :class:`ShardedExecutor` unless ``executor`` is given.  Batches
    should go through :class:`~repro.session.QuerySession`, which keeps
    the partitioning, pool, plans and intern table warm.

    >>> db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "a")]})
    >>> from repro.query.parser import parse_query
    >>> query = parse_query("ans(x) :- R(x, y), R(y, x)")
    >>> result = evaluate_sharded(
    ...     query, db, shards=2, workers=2, mode="thread",
    ...     broadcast_threshold=0)
    >>> sorted(str(p) for p in result.values())
    ['s1*s2', 's1*s2']
    """
    own = executor is None
    if own:
        executor = ShardedExecutor(
            db,
            shards=shards,
            workers=workers,
            mode=mode,
            broadcast_threshold=broadcast_threshold,
        )
    try:
        return executor.evaluate(query, cache=cache, intern=intern)
    finally:
        if own:
            executor.close()


def evaluate_aggregate_sharded(
    query: AggregateQuery,
    db: AnnotatedDatabase,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    mode: str = "process",
    broadcast_threshold: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    executor: Optional[ShardedExecutor] = None,
):
    """Evaluate an aggregate query shard-parallel (semimodule results).

    >>> from repro.query.parser import parse_query
    >>> db = AnnotatedDatabase.from_rows({"S": [("nyc", 5), ("nyc", 2)]})
    >>> q = parse_query("sales(city, sum(cost)) :- S(city, cost)")
    >>> result = evaluate_aggregate_sharded(
    ...     q, db, shards=2, workers=2, mode="thread",
    ...     broadcast_threshold=0)
    >>> print(result[("nyc",)])
    ⟨s1 + s2⟩ sum[s2⊗2 + s1⊗5]
    """
    own = executor is None
    if own:
        executor = ShardedExecutor(
            db,
            shards=shards,
            workers=workers,
            mode=mode,
            broadcast_threshold=broadcast_threshold,
        )
    try:
        return executor.evaluate_aggregate(query, cache=cache)
    finally:
        if own:
            executor.close()

"""Greedy join ordering for the backtracking engine.

The backtracking enumerator of :mod:`repro.engine.evaluate` processes
relational atoms in presentation order; a bad order (e.g. a cartesian
product first) can be exponentially slower than a good one.  This
module reorders atoms greedily — prefer atoms with more already-bound
variables, break ties by smaller relation cardinality and fewer free
variables — before evaluation.

Provenance is untouched by reordering: a monomial is the *multiset* of
the annotations used (Def. 2.12), independent of atom order.  The
tests assert polynomial-level equality between ordered and unordered
evaluation; ``benchmarks/bench_planner.py`` measures the speedup.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate as _evaluate
from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Variable
from repro.query.ucq import Query, UnionQuery, adjuncts_of


def order_atoms(
    query: ConjunctiveQuery, db: AnnotatedDatabase
) -> ConjunctiveQuery:
    """Reorder the relational atoms of ``query`` for evaluation on ``db``.

    Greedy heuristic: repeatedly pick the atom maximizing the number of
    its variables already bound by chosen atoms; ties go to the atom
    over the smaller relation, then to the atom binding fewer new
    variables (a selectivity proxy).  The head and disequalities are
    unchanged, so the reordered query is the same query — only its
    presentation differs.
    """
    remaining: List[Atom] = list(query.atoms)
    bound: Set[Variable] = set()
    ordered: List[Atom] = []
    cardinality: Dict[str, int] = {}
    for atom in remaining:
        if atom.relation not in cardinality:
            cardinality[atom.relation] = len(db.rows(atom.relation))

    while remaining:
        def badness(atom: Atom):
            atom_vars = set(atom.variables())
            bound_count = len(atom_vars & bound)
            free_count = len(atom_vars - bound)
            return (-bound_count, cardinality[atom.relation], free_count)

        best_index = min(range(len(remaining)), key=lambda i: badness(remaining[i]))
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound.update(chosen.variables())
    return ConjunctiveQuery(query.head, ordered, query.disequalities)


def plan_query(query: Query, db: AnnotatedDatabase) -> Query:
    """Reorder every adjunct of ``query`` for evaluation on ``db``."""
    adjuncts = [order_atoms(adjunct, db) for adjunct in adjuncts_of(query)]
    if isinstance(query, ConjunctiveQuery):
        return adjuncts[0]
    return UnionQuery(adjuncts)


def evaluate_planned(query: Query, db: AnnotatedDatabase):
    """Evaluate with greedy join ordering; identical polynomials to the
    unplanned evaluation (atom order never changes a monomial)."""
    return _evaluate(plan_query(query, db), db)

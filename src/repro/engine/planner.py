"""Greedy join ordering for the backtracking engine.

The backtracking enumerator of :mod:`repro.engine.evaluate` processes
relational atoms in presentation order; a bad order (e.g. a cartesian
product first) can be exponentially slower than a good one.  This
module reorders atoms greedily — prefer atoms with more already-bound
variables, break ties by smaller relation cardinality and fewer free
variables — before evaluation.  The heuristic itself is shared with the
hash-join engine (:func:`repro.engine.plan_cache.greedy_order`).

Relation cardinalities are interned **once per planning call**: every
adjunct of a union reuses the same ``{relation: size}`` map instead of
re-measuring the database per atom occurrence.

Provenance is untouched by reordering: a monomial is the *multiset* of
the annotations used (Def. 2.12), independent of atom order, and the
disequality atoms are carried over verbatim — a reordered query is the
same query, only its presentation differs.  The tests assert
polynomial-level equality between ordered and unordered evaluation;
``benchmarks/bench_planner.py`` measures the speedup.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate as _evaluate
from repro.engine.plan_cache import greedy_order
from repro.query.cq import ConjunctiveQuery
from repro.query.ucq import Query, UnionQuery, adjuncts_of


def relation_cardinalities(
    query: Query, db: AnnotatedDatabase
) -> Dict[str, int]:
    """Measure every relation the query touches, exactly once each."""
    relations = set()
    for adjunct in adjuncts_of(query):
        relations.update(adjunct.relations())
    return {relation: db.cardinality(relation) for relation in relations}


def order_atoms(
    query: ConjunctiveQuery,
    db: AnnotatedDatabase,
    cardinalities: Optional[Mapping[str, int]] = None,
) -> ConjunctiveQuery:
    """Reorder the relational atoms of ``query`` for evaluation on ``db``.

    Greedy heuristic: repeatedly pick the atom maximizing the number of
    its variables already bound by chosen atoms; ties go to the atom
    over the smaller relation, then to the atom binding fewer new
    variables (a selectivity proxy).  The head and disequalities are
    unchanged, so the reordered query is the same query — only its
    presentation differs.  Pass ``cardinalities`` to reuse sizes
    measured by an enclosing planning call.
    """
    if cardinalities is None:
        cardinalities = relation_cardinalities(query, db)
    order = greedy_order(query.atoms, cardinalities)
    ordered = [query.atoms[index] for index in order]
    return ConjunctiveQuery(query.head, ordered, query.disequalities)


def plan_query(query: Query, db: AnnotatedDatabase) -> Query:
    """Reorder every adjunct of ``query`` for evaluation on ``db``.

    The returned query has the same type, head, disequalities and atom
    multiset as the input — only atom order changes.  Cardinalities are
    interned once and shared across all adjuncts.
    """
    cardinalities = relation_cardinalities(query, db)
    adjuncts = [
        order_atoms(adjunct, db, cardinalities)
        for adjunct in adjuncts_of(query)
    ]
    if isinstance(query, ConjunctiveQuery):
        return adjuncts[0]
    return UnionQuery(adjuncts)


def evaluate_planned(query: Query, db: AnnotatedDatabase):
    """Evaluate with greedy join ordering; identical polynomials to the
    unplanned evaluation (atom order never changes a monomial).

    Runs on the *backtracking* engine on purpose: it is the only engine
    whose cost depends on presentation order (the hash-join engine
    replans internally), so this is where atom ordering matters — and
    where the ordering-invariance tests have teeth.
    """
    return _evaluate(plan_query(query, db), db, engine="backtrack")

"""Backtracking evaluation of CQ≠/UCQ≠ with provenance (Defs. 2.6, 2.12).

An *assignment* maps the relational atoms of a query to database tuples,
consistently binding variables, mapping constants to themselves and
respecting the disequalities.  The provenance of an output tuple ``t``
is the polynomial

``P(t, Q, D) = Σ_{σ ∈ A(t,Q,D)} Π_{Ri ∈ body(Q)} P(σ(Ri))``

— one monomial per assignment, one factor per atom.  For unions the
polynomials of the adjuncts add up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.config import EngineConfig, resolve_engine_config
from repro.db.instance import AnnotatedDatabase, Row, Value
from repro.errors import EvaluationError
from repro.query.aggregate import AggregateQuery
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Term, Variable, is_variable
from repro.query.ucq import Query, adjuncts_of
from repro.semiring.polynomial import Monomial, Polynomial

HeadTuple = Tuple[Value, ...]


@dataclass(frozen=True)
class Assignment:
    """One satisfying assignment of a conjunctive query (Def. 2.6).

    ``atom_rows[i]`` is the database tuple assigned to the ``i``-th
    relational atom; ``binding`` is the induced mapping of variables to
    domain values.
    """

    query: ConjunctiveQuery
    atom_rows: Tuple[Row, ...]
    binding: Tuple[Tuple[Variable, Value], ...]

    def binding_dict(self) -> Dict[Variable, Value]:
        """The variable binding as a dictionary."""
        return dict(self.binding)

    def head_tuple(self) -> HeadTuple:
        """``σ(head(Q))`` — the output tuple produced (Def. 2.6)."""
        values = dict(self.binding)
        result: List[Value] = []
        for term in self.query.head.args:
            if is_variable(term):
                result.append(values[term])
            else:
                result.append(term.value)
        return tuple(result)

    def monomial(self, db: AnnotatedDatabase) -> Monomial:
        """The provenance monomial of this assignment (Def. 2.12)."""
        symbols = [
            db.annotation_of(atom.relation, row)
            for atom, row in zip(self.query.atoms, self.atom_rows)
        ]
        return Monomial(symbols)


def assignments(
    query: ConjunctiveQuery, db: AnnotatedDatabase
) -> Iterator[Assignment]:
    """Enumerate ``A(Q, D)``: all satisfying assignments (Def. 2.6).

    Backtracks atom by atom; a disequality is checked as soon as both of
    its endpoints are bound.
    """
    atoms = query.atoms
    disequalities = list(query.disequalities)
    missing = object()  # sentinel: None is a legitimate domain value

    def value_of(term: Term, binding: Dict[Variable, Value]):
        if isinstance(term, Constant):
            return term.value
        return binding.get(term, missing)

    def diseqs_hold(binding: Dict[Variable, Value]) -> bool:
        for dis in disequalities:
            left = value_of(dis.left, binding)
            right = value_of(dis.right, binding)
            if left is not missing and right is not missing and left == right:
                return False
        return True

    def extend(
        index: int,
        binding: Dict[Variable, Value],
        chosen: List[Row],
    ) -> Iterator[Assignment]:
        if index == len(atoms):
            yield Assignment(
                query=query,
                atom_rows=tuple(chosen),
                binding=tuple(sorted(binding.items(), key=lambda kv: kv[0].name)),
            )
            return
        atom = atoms[index]
        for row in db.rows(atom.relation):
            if len(row) != atom.arity:
                continue
            new_bindings: Dict[Variable, Value] = {}
            consistent = True
            for term, value in zip(atom.args, row):
                if isinstance(term, Constant):
                    if term.value != value:
                        consistent = False
                        break
                else:
                    bound = binding.get(term, new_bindings.get(term, missing))
                    if bound is missing:
                        new_bindings[term] = value
                    elif bound != value:
                        consistent = False
                        break
            if not consistent:
                continue
            binding.update(new_bindings)
            if diseqs_hold(binding):
                chosen.append(row)
                yield from extend(index + 1, binding, chosen)
                chosen.pop()
            for var in new_bindings:
                del binding[var]

    yield from extend(0, {}, [])


def evaluate_backtracking(
    query: Query, db: AnnotatedDatabase
) -> Dict[HeadTuple, Polynomial]:
    """Evaluate by backtracking assignment enumeration (Defs. 2.6/2.12).

    The literal reference implementation: one monomial per assignment,
    adjunct polynomials summed.  Tuples with zero provenance never
    appear.
    """
    if isinstance(query, AggregateQuery):
        raise EvaluationError(
            "aggregate queries produce semimodule annotations; use "
            "repro.aggregate.evaluate_aggregate instead of evaluate"
        )
    results: Dict[HeadTuple, Polynomial] = {}
    for adjunct in adjuncts_of(query):
        for assignment in assignments(adjunct, db):
            head = assignment.head_tuple()
            monomial = assignment.monomial(db)
            previous = results.get(head, Polynomial.zero())
            results[head] = previous + Polynomial({monomial: 1})
    return results


#: In-memory engine names accepted by :func:`evaluate`.  The CLI builds
#: its ``--engine`` choices on top of these (adding the SQLite and
#: algebra backends plus legacy aliases) — see ``repro.cli``.
ENGINES = ("hashjoin", "backtrack", "sharded")


def evaluate(
    query: Query,
    db: AnnotatedDatabase,
    config: Union[EngineConfig, str, None] = None,
    engine: Optional[str] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
) -> Dict[HeadTuple, Polynomial]:
    """Evaluate a CQ≠ or UCQ≠, returning ``{output tuple: provenance}``.

    Implements Def. 2.12: one monomial per assignment, adjunct
    polynomials summed.  Tuples with zero provenance never appear.

    ``config`` is an :class:`~repro.config.EngineConfig` (or a bare
    engine name).  The default ``hashjoin`` engine evaluates
    set-at-a-time with a cardinality-banded plan cache
    (:mod:`repro.engine.hashjoin`); ``backtrack`` is the
    tuple-at-a-time reference implementation; ``sharded`` fans the
    hash-join plans out across hash-partitioned shards evaluated by
    parallel workers (:mod:`repro.engine.sharded`) — batches should
    prefer a warm :class:`~repro.session.QuerySession`.  All engines
    return identical polynomials on every input — the differential
    suites assert it — so the choice is purely about speed.  The
    ``engine=``/``shards=``/``workers=`` keywords are deprecated shims
    over the matching config fields.

    Aggregate queries annotate their values in a semimodule, not a
    polynomial — they have their own evaluator,
    :func:`repro.aggregate.evaluate.evaluate_aggregate`, built on the
    same engines.
    """
    config = resolve_engine_config(
        config, "evaluate", engine=engine, shards=shards, workers=workers
    )
    if config.engine in ("hashjoin", "sharded"):
        if isinstance(query, AggregateQuery):
            raise EvaluationError(
                "aggregate queries produce semimodule annotations; use "
                "repro.aggregate.evaluate_aggregate instead of evaluate"
            )
        # Imported lazily: these engines' import chains reach the
        # repro.aggregate package, whose evaluator imports this module —
        # a top-level import here would close that cycle during
        # package initialization.
        if config.engine == "sharded":
            from repro.engine.sharded import evaluate_sharded

            return evaluate_sharded(
                query,
                db,
                shards=config.shards,
                workers=config.workers,
                mode=config.mode,
                broadcast_threshold=config.broadcast_threshold,
                columnar=config.columnar,
            )
        from repro.engine.hashjoin import evaluate_hashjoin

        return evaluate_hashjoin(query, db)
    if config.engine == "backtrack":
        return evaluate_backtracking(query, db)
    raise EvaluationError(
        "unknown engine {!r}; supported: {}".format(
            config.engine, ", ".join(ENGINES)
        )
    )


def provenance(
    query: Query,
    db: AnnotatedDatabase,
    output: Sequence[Value],
    config: Union[EngineConfig, str, None] = None,
    engine: Optional[str] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
) -> Polynomial:
    """``P(t, Q, D)`` for one output tuple (zero when absent)."""
    config = resolve_engine_config(
        config, "provenance", engine=engine, shards=shards, workers=workers
    )
    return evaluate(query, db, config).get(tuple(output), Polynomial.zero())


def provenance_of_boolean(query: Query, db: AnnotatedDatabase) -> Polynomial:
    """``P(Q, D)`` for a boolean query (Def. 2.12, boolean case)."""
    return provenance(query, db, ())


def result_tuples(query: Query, db: AnnotatedDatabase) -> List[HeadTuple]:
    """``Q(D)`` under set semantics, sorted deterministically."""
    return sorted(evaluate(query, db).keys(), key=lambda row: tuple(map(repr, row)))

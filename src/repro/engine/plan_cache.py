"""Cardinality-banded plan caching and greedy join ordering.

Join-order quality depends on the query and on *rough* relation sizes:
a plan chosen for ``|R| = 900`` is still the right plan at
``|R| = 1000``, but probably not at ``|R| = 3``.  Plans are therefore
keyed by the query together with a **cardinality profile** — each
relation's size collapsed to its power-of-two band — so that

* repeated evaluation of the same query (the incremental-maintenance
  refresh loop, a benchmark's inner loop) hits the cache, while
* growth or shrinkage past a band boundary invalidates exactly the
  plans whose ordering decisions it could change.

The greedy ordering heuristic lives here too, shared by the
backtracking planner (:mod:`repro.engine.planner`) and the hash-join
compiler (:mod:`repro.engine.hashjoin`): prefer atoms with more
already-bound variables, break ties by smaller relation cardinality,
then by fewer newly-bound variables.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.query.atoms import Atom
from repro.query.terms import Variable

#: A cache key: the query plus its cardinality profile.
PlanKey = Tuple[Hashable, Tuple[Tuple[str, int, int], ...]]


def cardinality_band(cardinality: int) -> int:
    """The power-of-two band of a relation size (0 / 1 / 2-3 / 4-7 -> 0..3).

    >>> [cardinality_band(n) for n in (0, 1, 2, 3, 4, 8, 1000)]
    [0, 1, 2, 2, 3, 4, 10]
    """
    return cardinality.bit_length()


def cardinality_profile(
    relations: Mapping[str, Tuple[Optional[int], int]]
) -> Tuple[Tuple[str, int, int], ...]:
    """A hashable ``(relation, arity, band)`` profile for cache keying.

    ``relations`` maps each relation to ``(arity or None, cardinality)``;
    the arity participates in the key because a plan compiled against a
    mismatched arity degenerates to the empty plan.
    """
    return tuple(
        (relation, -1 if arity is None else arity, cardinality_band(cardinality))
        for relation, (arity, cardinality) in sorted(relations.items())
    )


def greedy_order(
    atoms: Sequence[Atom], cardinalities: Mapping[str, int]
) -> List[int]:
    """Greedy join order over atom indices.

    Repeatedly pick the atom maximizing the number of variables already
    bound by chosen atoms; ties go to the smaller relation, then to the
    atom binding fewer new variables (a selectivity proxy), then to
    presentation order for determinism.

    >>> from repro.query.build import atom
    >>> greedy_order([atom("Big", "x", "y"), atom("Small", "x")],
    ...              {"Big": 100, "Small": 1})
    [1, 0]
    """
    remaining = list(range(len(atoms)))
    bound: Set[Variable] = set()
    order: List[int] = []
    while remaining:
        def badness(index: int):
            atom_vars = set(atoms[index].variables())
            return (
                -len(atom_vars & bound),
                cardinalities.get(atoms[index].relation, 0),
                len(atom_vars - bound),
                index,
            )

        best = min(remaining, key=badness)
        remaining.remove(best)
        order.append(best)
        bound.update(atoms[best].variables())
    return order


class PlanCache:
    """An LRU cache of compiled plans keyed by (query, profile).

    Thread-safe: the engine's process-wide default cache is shared by
    concurrent evaluations, and an unsynchronized LRU bump could race
    a concurrent eviction.

    >>> cache = PlanCache(capacity=2)
    >>> cache.store(("q1", ()), "plan-1")
    >>> cache.lookup(("q1", ()))
    'plan-1'
    >>> cache.stats()["hits"]
    1
    """

    def __init__(self, capacity: int = 512):  # noqa: D107
        if capacity < 1:
            raise ValueError("plan cache capacity must be positive")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._plans: "OrderedDict[PlanKey, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def lookup(self, key: PlanKey):
        """The cached plan for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self._misses += 1
                return None
            self._plans.move_to_end(key)
            self._hits += 1
            return plan

    def store(self, key: PlanKey, plan) -> None:
        """Cache ``plan``, evicting the least recently used on overflow."""
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self._capacity:
                self._plans.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._plans),
                "capacity": self._capacity,
            }

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        with self._lock:
            self._plans.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __repr__(self) -> str:
        return "<PlanCache {size}/{capacity}, {hits} hits, {misses} misses>".format(
            **self.stats()
        )

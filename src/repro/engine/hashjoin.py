"""Set-at-a-time hash-join evaluation of CQ≠/UCQ≠ with interned provenance.

The backtracking engine (:mod:`repro.engine.evaluate`) enumerates
assignments one tuple at a time and builds each provenance monomial
from scratch.  This engine evaluates whole K-relations instead: a
conjunctive adjunct becomes a sequence of **hash joins** over
intermediate annotated relations

``{binding tuple: {interned monomial id: coefficient}}``

where each step hashes one base relation on the positions bound so far,
extends every intermediate binding with the matching rows, multiplies
annotations through the global intern table
(:mod:`repro.algebra.intern` — monomial × symbol is a memoized lookup)
and projects away variables no longer needed.  Projection and union
merge annotation dictionaries by *adding* coefficients, which is
exactly polynomial addition in ``N[X]``; by distributivity the final
polynomials equal the Def. 2.12 sum over assignments monomial for
monomial — an equality the three-engine differential suite asserts on
every workload.

Join orders come from the shared greedy heuristic and are cached in a
:class:`~repro.engine.plan_cache.PlanCache` keyed by the query and the
cardinality band profile of its relations, so repeated evaluation —
the incremental-maintenance refresh loop, benchmarks, view audits —
compiles nothing after the first call.

Aggregate queries reuse the same machinery: each rule's inner CQ is
evaluated set-at-a-time and its per-group annotation polynomials are
folded through the shared
:class:`~repro.aggregate.result.AggregateAccumulator`, producing
tensor-identical semimodule annotations to the other engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algebra.intern import InternTable, shared_intern
from repro.db.instance import AnnotatedDatabase, Value
from repro.engine.plan_cache import (
    PlanCache,
    cardinality_profile,
    greedy_order,
)
from repro.errors import EvaluationError, SchemaError
from repro.obs.trace import current_tracer
from repro.query.aggregate import AggregateQuery
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Constant, Variable
from repro.query.ucq import Query, adjuncts_of
from repro.semiring.polynomial import Polynomial

HeadTuple = Tuple[Value, ...]

#: Interned annotation of one intermediate tuple.
_Annotation = Dict[int, int]

#: Value sources of compiled slots (carried tuple / fresh row / literal).
CARRIED = 0
NEW = 1
CONST = 2

_Src = Tuple[int, object]


@dataclass(frozen=True)
class JoinStep:
    """One compiled hash-join step of a conjunctive plan.

    ``key_positions``/``key_indices`` pair row positions with carried
    tuple indices to form the join key; ``ext_positions`` are the row
    positions contributing newly bound variables; ``diseq_checks`` are
    the disequalities whose endpoints all become bound at this step;
    ``carry`` rebuilds the next carried tuple from ``(CARRIED, i)`` and
    ``(NEW, j)`` sources.
    """

    relation: str
    const_checks: Tuple[Tuple[int, object], ...]
    intra_checks: Tuple[Tuple[int, int], ...]
    key_positions: Tuple[int, ...]
    key_indices: Tuple[int, ...]
    ext_positions: Tuple[int, ...]
    diseq_checks: Tuple[Tuple[_Src, _Src], ...]
    carry: Tuple[_Src, ...]


@dataclass(frozen=True)
class CQPlan:
    """A compiled conjunctive adjunct: join steps plus head assembly.

    ``satisfiable`` is ``False`` when some atom's relation is unknown
    to the database or declared with a different arity — the adjunct
    then contributes nothing (matching the row-level arity check of the
    backtracking engine).
    """

    steps: Tuple[JoinStep, ...]
    head_slots: Tuple[_Src, ...]
    satisfiable: bool


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _db_arity(db: AnnotatedDatabase, relation: str) -> Optional[int]:
    try:
        return db.arity(relation)
    except SchemaError:
        return None


def _measure(query: ConjunctiveQuery, db: AnnotatedDatabase):
    """``{relation: (arity or None, cardinality)}``, each measured once."""
    return {
        relation: (_db_arity(db, relation), db.cardinality(relation))
        for relation in query.relations()
    }


def compile_cq(
    query: ConjunctiveQuery,
    db: AnnotatedDatabase,
    measured: Optional[Dict[str, Tuple[Optional[int], int]]] = None,
) -> CQPlan:
    """Compile one conjunctive adjunct into a hash-join plan for ``db``.

    ``measured`` lets :func:`plan_for` reuse the arity/cardinality map
    it already built for the cache key.
    """
    if measured is None:
        measured = _measure(query, db)
    atoms = query.atoms
    for atom in atoms:
        arity = measured[atom.relation][0]
        if arity is None or arity != atom.arity:
            return CQPlan(steps=(), head_slots=(), satisfiable=False)

    cardinalities = {
        relation: cardinality
        for relation, (_arity, cardinality) in measured.items()
    }
    order = greedy_order(atoms, cardinalities)

    # First step (in plan order) at which each variable becomes bound.
    bind_step: Dict[Variable, int] = {}
    for step_number, atom_index in enumerate(order):
        for variable in atoms[atom_index].variables():
            bind_step.setdefault(variable, step_number)

    # A disequality is checked at the step binding its last endpoint.
    checks_at: Dict[int, List] = {}
    for dis in sorted(query.disequalities, key=lambda d: d.sort_key()):
        step_number = max(
            bind_step[variable] for variable in dis.variables()
        )
        checks_at.setdefault(step_number, []).append(dis)

    def needed_after(step_number: int) -> set:
        needed = {
            term
            for term in query.head.args
            if isinstance(term, Variable)
        }
        for later in order[step_number + 1:]:
            needed.update(atoms[later].variables())
        for check_step, checks in checks_at.items():
            if check_step > step_number:
                for dis in checks:
                    needed.update(dis.variables())
        return needed

    steps: List[JoinStep] = []
    carried: List[Variable] = []
    for step_number, atom_index in enumerate(order):
        atom = atoms[atom_index]
        const_checks: List[Tuple[int, object]] = []
        intra_checks: List[Tuple[int, int]] = []
        key_positions: List[int] = []
        key_indices: List[int] = []
        ext_positions: List[int] = []
        new_index: Dict[Variable, int] = {}
        first_position: Dict[Variable, int] = {}
        for position, term in enumerate(atom.args):
            if isinstance(term, Constant):
                const_checks.append((position, term.value))
            elif term in carried:
                key_positions.append(position)
                key_indices.append(carried.index(term))
            elif term in new_index:
                intra_checks.append((first_position[term], position))
            else:
                new_index[term] = len(ext_positions)
                first_position[term] = position
                ext_positions.append(position)

        def resolve(term) -> _Src:
            if isinstance(term, Constant):
                return (CONST, term.value)
            if term in new_index:
                return (NEW, new_index[term])
            return (CARRIED, carried.index(term))

        diseq_checks = tuple(
            (resolve(dis.left), resolve(dis.right))
            for dis in checks_at.get(step_number, ())
        )

        needed = needed_after(step_number)
        carry: List[_Src] = []
        next_carried: List[Variable] = []
        for index, variable in enumerate(carried):
            if variable in needed:
                carry.append((CARRIED, index))
                next_carried.append(variable)
        for variable, index in new_index.items():
            if variable in needed:
                carry.append((NEW, index))
                next_carried.append(variable)
        steps.append(
            JoinStep(
                relation=atom.relation,
                const_checks=tuple(const_checks),
                intra_checks=tuple(intra_checks),
                key_positions=tuple(key_positions),
                key_indices=tuple(key_indices),
                ext_positions=tuple(ext_positions),
                diseq_checks=diseq_checks,
                carry=tuple(carry),
            )
        )
        carried = next_carried

    head_slots: List[_Src] = []
    for term in query.head.args:
        if isinstance(term, Constant):
            head_slots.append((CONST, term.value))
        else:
            head_slots.append((CARRIED, carried.index(term)))
    return CQPlan(
        steps=tuple(steps), head_slots=tuple(head_slots), satisfiable=True
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _merge_into(target: _Annotation, source: _Annotation) -> None:
    """Polynomial addition on interned annotations: coefficients add."""
    for monomial, coefficient in source.items():
        target[monomial] = target.get(monomial, 0) + coefficient


#: Soft bound on a payload-scoped join-index cache; crossing it clears
#: the cache wholesale (steady-state workloads reuse a handful of keys,
#: so eviction sophistication buys nothing).
_INDEX_CACHE_LIMIT = 512


def _build_step_index(
    step: JoinStep,
    source,
    symbol_id,
) -> Dict[Tuple[Value, ...], List[Tuple[Tuple[Value, ...], int]]]:
    """Hash one step's rows on the join key, applying row-local checks.

    The annotation symbols are interned here — the index stores interned
    ids, which is why cached indexes are keyed by the intern table's
    token (see :func:`_execute`).
    """
    index: Dict[Tuple[Value, ...], List[Tuple[Tuple[Value, ...], int]]] = {}
    for row, annotation in source:
        if any(row[p] != value for p, value in step.const_checks):
            continue
        if any(row[a] != row[b] for a, b in step.intra_checks):
            continue
        key = tuple(row[p] for p in step.key_positions)
        extension = tuple(row[p] for p in step.ext_positions)
        index.setdefault(key, []).append((extension, symbol_id(annotation)))
    return index


def _execute(
    plan: CQPlan,
    db: Optional[AnnotatedDatabase],
    intern: InternTable,
    facts_fn=None,
    index_cache: Optional[Dict] = None,
    index_key=None,
) -> Dict[HeadTuple, _Annotation]:
    """Run a compiled plan; ``facts_fn(step_index, step)`` overrides the
    row source of each step (the sharded engine anchors one step on a
    shard's owned fragment this way).

    ``index_cache``/``index_key`` enable per-snapshot join-index reuse:
    when both are given, each step's hash index is cached in
    ``index_cache`` under ``index_key(step_index)`` — steady-state
    re-evaluation over an unchanged snapshot becomes probe-only.  The
    key must capture everything the index depends on: the plan, the
    step, the row source (anchored fragment vs full relation) and the
    intern table the symbol ids belong to.
    """
    if not plan.satisfiable:
        return {}
    tracer = current_tracer()
    state: Dict[Tuple[Value, ...], _Annotation] = {(): {intern.one: 1}}
    symbol_id = intern.symbol_id
    times = intern.times_symbol
    for step_index, step in enumerate(plan.steps):
        # One span per *join step*, never per tuple: the inner loops run
        # untouched, so a null tracer leaves the engine loop as it was.
        step_span_cm = tracer.span("join.step", relation=step.relation)
        step_span = step_span_cm.__enter__()
        cached = None
        cache_key = None
        if index_cache is not None and index_key is not None:
            cache_key = index_key(step_index)
            cached = index_cache.get(cache_key)
        if cached is None:
            source = (
                db.facts(step.relation)
                if facts_fn is None
                else facts_fn(step_index, step)
            )
            rows = len(source)
            index = _build_step_index(step, source, symbol_id)
            if cache_key is not None:
                if len(index_cache) >= _INDEX_CACHE_LIMIT:
                    index_cache.clear()
                index_cache[cache_key] = (index, rows)
                step_span.set(cache="miss")
        else:
            index, rows = cached
            step_span.set(cache="hit")

        diseq_checks = step.diseq_checks
        carry = step.carry
        key_indices = step.key_indices
        new_state: Dict[Tuple[Value, ...], _Annotation] = {}
        for bindings, annotation in state.items():
            matches = index.get(tuple(bindings[i] for i in key_indices))
            if not matches:
                continue
            for extension, symbol in matches:
                if diseq_checks:
                    violated = False
                    for (lk, lv), (rk, rv) in diseq_checks:
                        left = (
                            bindings[lv]
                            if lk == CARRIED
                            else extension[lv] if lk == NEW else lv
                        )
                        right = (
                            bindings[rv]
                            if rk == CARRIED
                            else extension[rv] if rk == NEW else rv
                        )
                        if left == right:
                            violated = True
                            break
                    if violated:
                        continue
                out = tuple(
                    bindings[i] if kind == CARRIED else extension[i]
                    for kind, i in carry
                )
                bucket = new_state.get(out)
                if bucket is None:
                    bucket = new_state[out] = {}
                for monomial, coefficient in annotation.items():
                    product = times(monomial, symbol)
                    bucket[product] = bucket.get(product, 0) + coefficient
        state = new_state
        step_span.set(rows=rows, bindings=len(state))
        step_span_cm.__exit__(None, None, None)
        if not state:
            return {}

    results: Dict[HeadTuple, _Annotation] = {}
    for bindings, annotation in state.items():
        head = tuple(
            bindings[i] if kind == CARRIED else i
            for kind, i in plan.head_slots
        )
        bucket = results.get(head)
        if bucket is None:
            results[head] = dict(annotation)
        else:
            _merge_into(bucket, annotation)
    return results


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
#: The process-wide default plan cache (see :func:`default_plan_cache`).
_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The shared plan cache used when no explicit cache is passed."""
    return _DEFAULT_CACHE


def clear_plan_cache() -> None:
    """Drop every cached plan from the shared cache (tests, tooling)."""
    _DEFAULT_CACHE.clear()


def plan_for(
    query: ConjunctiveQuery,
    db: AnnotatedDatabase,
    cache: Optional[PlanCache] = None,
) -> CQPlan:
    """The (cached) hash-join plan of one conjunctive adjunct on ``db``."""
    cache = _DEFAULT_CACHE if cache is None else cache
    with current_tracer().span("plan") as span:
        measured = _measure(query, db)
        key = (query, cardinality_profile(measured))
        plan = cache.lookup(key)
        if plan is None:
            span.set(cache="miss")
            plan = compile_cq(query, db, measured)
            cache.store(key, plan)
        else:
            span.set(cache="hit")
    return plan


def evaluate_hashjoin(
    query: Query,
    db: AnnotatedDatabase,
    cache: Optional[PlanCache] = None,
    intern: Optional[InternTable] = None,
) -> Dict[HeadTuple, Polynomial]:
    """Evaluate a CQ≠/UCQ≠ set-at-a-time, returning Def. 2.12 polynomials.

    >>> db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "a")]})
    >>> from repro.query.parser import parse_query
    >>> result = evaluate_hashjoin(parse_query("ans(x) :- R(x, y), R(y, x)"), db)
    >>> sorted(str(p) for p in result.values())
    ['s1*s2', 's1*s2']
    """
    if isinstance(query, AggregateQuery):
        raise EvaluationError(
            "aggregate queries produce semimodule annotations; use "
            "evaluate_aggregate_hashjoin instead of evaluate_hashjoin"
        )
    intern = shared_intern() if intern is None else intern
    tracer = current_tracer()
    merged: Dict[HeadTuple, _Annotation] = {}
    for adjunct in adjuncts_of(query):
        plan = plan_for(adjunct, db, cache)
        with tracer.span("join", engine="hashjoin"):
            executed = _execute(plan, db, intern)
        for head, annotation in executed.items():
            bucket = merged.get(head)
            if bucket is None:
                merged[head] = annotation
            else:
                _merge_into(bucket, annotation)
    with tracer.span("merge", tuples=len(merged)):
        return {
            head: intern.polynomial(annotation)
            for head, annotation in merged.items()
        }


def evaluate_aggregate_hashjoin(
    query: AggregateQuery,
    db: AnnotatedDatabase,
    cache: Optional[PlanCache] = None,
    intern: Optional[InternTable] = None,
):
    """Evaluate an aggregate query set-at-a-time to semimodule annotations.

    Each rule's inner CQ runs through the hash-join pipeline; the
    per-group annotation polynomials feed the shared accumulator, so
    the aggregated K-relation is tensor-identical to the other engines'.

    >>> from repro.query.parser import parse_query
    >>> db = AnnotatedDatabase.from_rows({"S": [("nyc", 5), ("nyc", 2)]})
    >>> q = parse_query("sales(city, sum(cost)) :- S(city, cost)")
    >>> print(evaluate_aggregate_hashjoin(q, db)[("nyc",)])
    ⟨s1 + s2⟩ sum[s2⊗2 + s1⊗5]
    """
    # Imported here: repro.aggregate pulls the algebra compiler, whose
    # imports reach back into repro.engine — a top-level import would be
    # circular through the package __init__ modules.
    from repro.aggregate.result import AggregateAccumulator

    intern = shared_intern() if intern is None else intern
    tracer = current_tracer()
    accumulator = AggregateAccumulator(query)
    for rule in query.rules:
        plan = plan_for(rule.inner, db, cache)
        with tracer.span("join", engine="hashjoin"):
            executed = _execute(plan, db, intern)
        with tracer.span("aggregate.fold", groups=len(executed)):
            for head, annotation in sorted(
                executed.items(), key=lambda kv: repr(kv[0])
            ):
                accumulator.add(rule, head, intern.polynomial(annotation))
    return accumulator.results()

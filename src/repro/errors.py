"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library errors without catching
programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the ``repro`` library."""


class QueryConstructionError(ReproError):
    """A query object violates the well-formedness rules of Def. 2.1.

    Examples: a disequality between two constants, a disequality whose
    variable does not occur in any relational atom, or a distinguished
    (head) variable that does not occur in the body.
    """


class ParseError(ReproError):
    """The rule-based query text could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class SchemaError(ReproError):
    """A relation is used with inconsistent arity."""


class UnsatisfiableQueryError(QueryConstructionError):
    """The query can never produce results (e.g. contains ``x != x``)."""


class NotAbstractlyTaggedError(ReproError):
    """An operation requiring an abstractly-tagged database (every tuple
    annotated with a *distinct* provenance variable, Sec. 2.3) was applied
    to a database that is not abstractly tagged."""


class UnknownAnnotationError(ReproError):
    """A provenance annotation does not identify any tuple of the
    database at hand (needed by the direct-computation pipeline of
    Sec. 5, which inverts annotations back to tuples)."""


class UnsupportedQueryError(ReproError):
    """The operation is only defined for a more restricted query class
    than the one supplied (e.g. Chandra-Merlin minimization on a query
    with disequalities)."""


class EvaluationError(ReproError):
    """Query evaluation failed (e.g. a relation mentioned by the query is
    absent from the database and strict mode was requested)."""


class DurabilityError(ReproError):
    """Persistent state (snapshot or write-ahead log) could not be read
    or written."""


class SnapshotError(DurabilityError):
    """A snapshot file is missing, truncated, or fails its checksum."""


class WalError(DurabilityError):
    """A write-ahead log file is malformed beyond the recoverable
    torn-tail case (bad magic, unsupported version, corrupt header)."""

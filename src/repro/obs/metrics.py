"""Thread-safe metrics primitives and a Prometheus-compatible registry.

Stdlib-only counters, gauges and fixed-bucket histograms, each guarded
by its own lock (one metric's hot counter never serializes another's),
with Prometheus-style label support:

>>> registry = MetricsRegistry()
>>> requests = registry.counter(
...     "demo_requests_total", "Requests served", ("endpoint",))
>>> requests.inc(endpoint="/query")
>>> requests.value(endpoint="/query")
1.0
>>> "demo_requests_total" in registry.render()
True

The **null registry** is the opt-out: :meth:`NullRegistry.counter` (and
friends) hand back one shared no-op metric, so a component constructed
against :data:`NULL_REGISTRY` pays a no-op attribute lookup per
observation and nothing else — no locks, no dictionaries, no
allocation.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format (``text/plain; version=0.0.4``): ``# HELP``/``# TYPE`` headers,
escaped label values, and cumulative ``_bucket``/``_sum``/``_count``
series for histograms.  The serving tier's ``GET /metrics`` endpoint is
exactly this string.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets (seconds): micro-benchmark to human scale.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: The exposition content type the ``/metrics`` endpoint serves.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects.

    Integral values print without a fractional part (``12`` not
    ``12.0``) so counters read as the counts they are.
    """
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_string(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    return "{{{}}}".format(
        ",".join(
            '{}="{}"'.format(name, _escape_label(str(value)))
            for name, value in zip(names, values)
        )
    )


class _Metric:
    """Base of the three instrument types: name, help, labels, lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):  # noqa: A002, D107
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                "metric {} takes labels {!r}, got {!r}".format(
                    self.name, self.labelnames, tuple(sorted(labels))
                )
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append("# HELP {} {}".format(self.name, _escape_help(self.help)))
        lines.append("# TYPE {} {}".format(self.name, self.kind))
        lines.extend(self._sample_lines())
        return lines

    def _sample_lines(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name, help, labelnames=()):  # noqa: A002, D107
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be non-negative) to one labelled series."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of one labelled series (0.0 when never hit)."""
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def series(self) -> Dict[Tuple[str, ...], float]:
        """A snapshot of every labelled series."""
        with self._lock:
            return dict(self._values)

    def _sample_lines(self) -> List[str]:
        with self._lock:
            return [
                "{}{} {}".format(
                    self.name,
                    _label_string(self.labelnames, key),
                    _format_value(value),
                )
                for key, value in sorted(self._values.items())
            ]


class Gauge(_Metric):
    """A value that can go up and down (in-flight requests, pool sizes)."""

    kind = "gauge"

    def __init__(self, name, help, labelnames=()):  # noqa: A002, D107
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels) -> None:
        """Set one labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to one labelled series."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount`` from one labelled series."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """Current value of one labelled series (0.0 when never set)."""
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def _sample_lines(self) -> List[str]:
        with self._lock:
            return [
                "{}{} {}".format(
                    self.name,
                    _label_string(self.labelnames, key),
                    _format_value(value),
                )
                for key, value in sorted(self._values.items())
            ]


class _HistogramSeries:
    """Per-labelset histogram state: bucket counts, sum, count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):  # noqa: D107
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram of observed values (latencies, sizes).

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound is >= the value (the Prometheus cumulative convention is
    applied at render time).  Percentiles come from
    :meth:`percentile` — bucket-resolution estimates, exact enough to
    tell a 2 ms p50 from a 200 ms p99.
    """

    kind = "histogram"

    def __init__(self, name, help, labelnames=(), buckets=None):  # noqa: A002, D107
        super().__init__(name, help, labelnames)
        bounds = tuple(DEFAULT_BUCKETS if buckets is None else buckets)
        if not bounds or tuple(sorted(bounds)) != bounds:
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = bounds
        self._series: Dict[Tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into one labelled series."""
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def snapshot(self) -> Dict[Tuple[str, ...], Dict[str, object]]:
        """``{labels: {"counts", "sum", "count"}}`` (counts per bucket)."""
        with self._lock:
            return {
                key: {
                    "counts": list(series.counts),
                    "sum": series.sum,
                    "count": series.count,
                }
                for key, series in self._series.items()
            }

    def percentile(self, quantile: float, **labels) -> Optional[float]:
        """Bucket-resolution estimate of one series' quantile.

        Interpolates linearly inside the bucket containing the target
        rank; observations past the last finite bound report that bound
        (the histogram cannot see further).  ``None`` when the series
        has no observations.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.count == 0:
                return None
            counts = list(series.counts)
            total = series.count
        rank = quantile * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):
                    return self.buckets[-1]  # beyond the last finite bound
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index else 0.0
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.buckets[-1]

    def _sample_lines(self) -> List[str]:
        lines: List[str] = []
        for key, data in sorted(self.snapshot().items()):
            cumulative = 0
            for bound, count in zip(
                self.buckets + (float("inf"),), data["counts"]
            ):
                cumulative += count
                labels = _label_string(
                    self.labelnames + ("le",), key + (_format_value(bound),)
                )
                lines.append(
                    "{}_bucket{} {}".format(self.name, labels, cumulative)
                )
            label_string = _label_string(self.labelnames, key)
            lines.append(
                "{}_sum{} {}".format(
                    self.name, label_string, _format_value(data["sum"])
                )
            )
            lines.append(
                "{}_count{} {}".format(self.name, label_string, data["count"])
            )
        return lines


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    Re-registering a name returns the existing instrument (so modules
    can declare their metrics independently) but re-registering with a
    different type or label set is a programming error and raises.
    """

    def __init__(self):  # noqa: D107
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    #: Distinguishes a live registry from :class:`NullRegistry` without
    #: an isinstance check at every call site.
    enabled = True

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):  # noqa: A002
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(
                    name, help, labelnames, **kwargs
                )
                return metric
        if type(metric) is not cls or metric.labelnames != tuple(labelnames):
            raise ValueError(
                "metric {!r} is already registered as a {} with labels "
                "{!r}".format(name, metric.kind, metric.labelnames)
            )
        return metric

    def counter(self, name, help="", labelnames=()) -> Counter:  # noqa: A002
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:  # noqa: A002
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(), buckets=None) -> Histogram:  # noqa: A002
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric of that name, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[_Metric]:
        """Every registered metric, in name order."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render(self) -> str:
        """The Prometheus text exposition of every metric."""
        lines: List[str] = []
        for metric in self.collect():
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")


class _NullMetric:
    """The shared no-op instrument every :class:`NullRegistry` hands out.

    Accepts every instrument call with no locking and no state, so the
    disabled observability path costs one attribute lookup plus an
    empty call.
    """

    def inc(self, amount=1.0, **labels) -> None:  # noqa: D102
        pass

    def dec(self, amount=1.0, **labels) -> None:  # noqa: D102
        pass

    def set(self, value, **labels) -> None:  # noqa: D102
        pass

    def observe(self, value, **labels) -> None:  # noqa: D102
        pass

    def value(self, **labels) -> float:  # noqa: D102
        return 0.0

    def series(self) -> dict:  # noqa: D102
        return {}

    def snapshot(self) -> dict:  # noqa: D102
        return {}

    def percentile(self, quantile, **labels):  # noqa: D102
        return None


#: The one no-op instrument (identity-tested by the overhead suite).
NULL_METRIC = _NullMetric()


class NullRegistry:
    """The opt-out registry: every instrument is :data:`NULL_METRIC`."""

    enabled = False

    def counter(self, name, help="", labelnames=()) -> _NullMetric:  # noqa: A002, D102
        return NULL_METRIC

    def gauge(self, name, help="", labelnames=()) -> _NullMetric:  # noqa: A002, D102
        return NULL_METRIC

    def histogram(self, name, help="", labelnames=(), buckets=None) -> _NullMetric:  # noqa: A002, D102
        return NULL_METRIC

    def get(self, name: str) -> None:  # noqa: D102
        return None

    def collect(self) -> list:  # noqa: D102
        return []

    def render(self) -> str:  # noqa: D102
        return ""


#: The process-wide null registry (shared, stateless).
NULL_REGISTRY = NullRegistry()

#: The process-wide default registry; see :func:`default_registry`.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry (library-level metrics)."""
    return _DEFAULT


def set_default_registry(registry):
    """Swap the process-wide default registry; returns the previous one.

    Pass :data:`NULL_REGISTRY` to turn library-level metrics off
    entirely — components that captured instrument handles earlier keep
    their handles, so the swap governs *new* lookups (the serving tier
    constructs its own registry per server instead, which is the
    recommended pattern for anything with a lifecycle).
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous


def histogram_percentiles(
    histogram, quantiles=(0.5, 0.95, 0.99), **labels
) -> Dict[str, Optional[float]]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for one labelled series.

    Works on :class:`Histogram` and :data:`NULL_METRIC` alike (the null
    metric reports every percentile as ``None``).
    """
    return {
        "p{:g}".format(quantile * 100): histogram.percentile(quantile, **labels)
        for quantile in quantiles
    }

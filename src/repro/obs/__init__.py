"""Observability: metrics registry, tracing spans, Prometheus exposition.

The engine pipeline and the serving tier are instrumented through two
primitives that share one design rule — **disabled means free**:

* :mod:`repro.obs.metrics` — thread-safe counters, gauges and
  fixed-bucket histograms with label support, collected in a
  :class:`MetricsRegistry` that renders the Prometheus text exposition
  format (the server's ``GET /metrics``).  The :class:`NullRegistry`
  hands out one shared no-op instrument, so a component built with
  metrics off pays a no-op method call per observation.
* :mod:`repro.obs.trace` — context-manager :class:`Span`\\ s nested
  under a per-request :class:`Tracer`, installed ambiently via
  :func:`tracing`/:func:`current_tracer` (context-local, thread-safe).
  With no tracer installed, every instrumentation point hits the
  :data:`NULL_TRACER`, whose ``span()`` returns one reusable no-op
  context manager.

See the README's "Observability" section for the endpoint surface and
the span naming conventions.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    EXPOSITION_CONTENT_TYPE,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    histogram_percentiles,
    set_default_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    format_trace,
    tracing,
    tree_stage_names,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "EXPOSITION_CONTENT_TYPE",
    "default_registry",
    "set_default_registry",
    "histogram_percentiles",
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "current_tracer",
    "tracing",
    "format_trace",
    "tree_stage_names",
]

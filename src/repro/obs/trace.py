"""Lightweight per-query tracing spans for the evaluation pipeline.

A :class:`Tracer` records a tree of timed :class:`Span`\\ s —
``perf_counter_ns`` timestamps, parent/child nesting via a plain stack,
per-span attributes — covering the full query pipeline: parse → plan
(cache hit/miss) → join steps → shard fan-out/ship/merge → result-cache
lookups.  The tree exports as plain JSON (:meth:`Tracer.tree`) and, when
the tracer is given a metrics registry, every finished span also folds
its duration into the registry's ``repro_stage_seconds`` histogram — so
ad-hoc traces and long-run aggregates come from one instrumentation
pass.

Instrumented code never takes a tracer parameter; it asks for the
**ambient** tracer::

    from repro.obs.trace import current_tracer

    with current_tracer().span("join.step", relation=name) as span:
        ...
        span.set(rows=len(rows))

and by default :func:`current_tracer` answers :data:`NULL_TRACER`, whose
``span()`` returns one shared, reusable no-op context manager: the
disabled path is an attribute lookup and an empty ``with`` block — no
allocation, no clock reads, no lock.  :func:`tracing` installs a live
tracer for the current context (:mod:`contextvars`, so concurrent
request threads trace independently and pool worker threads stay null).

>>> with tracing("demo") as tracer:
...     with tracer.span("plan", cache="miss"):
...         pass
>>> tree = tracer.tree()
>>> tree["name"], [child["name"] for child in tree["children"]]
('demo', ['plan'])
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Dict, List, Optional


class Span:
    """One timed stage of a trace: name, window, attributes, children."""

    __slots__ = ("name", "attrs", "children", "start_ns", "end_ns")

    def __init__(self, name: str, attrs: Optional[dict] = None):  # noqa: D107
        self.name = name
        self.attrs = attrs or {}
        self.children: List["Span"] = []
        self.start_ns = perf_counter_ns()
        self.end_ns: Optional[int] = None

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (row counts, outcomes)."""
        self.attrs.update(attrs)

    def end(self) -> None:
        """Close the span's time window (idempotent)."""
        if self.end_ns is None:
            self.end_ns = perf_counter_ns()

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (to now while the span is still open)."""
        return (self.end_ns or perf_counter_ns()) - self.start_ns

    @property
    def duration_s(self) -> float:
        """Elapsed seconds."""
        return self.duration_ns / 1e9

    def to_dict(self) -> dict:
        """The JSON-ready subtree rooted at this span."""
        node: Dict[str, object] = {
            "name": self.name,
            "duration_ms": round(self.duration_ns / 1e6, 4),
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def walk(self):
        """Iterate the subtree depth-first (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return "<Span {} {:.3f}ms {} children>".format(
            self.name, self.duration_ns / 1e6, len(self.children)
        )


class _SpanContext:
    """Context manager pairing one span with its tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):  # noqa: D107
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *_exc) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Records one span tree; single-threaded by design.

    Each request (or CLI invocation) builds its own tracer; the ambient
    plumbing (:func:`tracing`) is context-local, so tracers are never
    shared across threads — worker threads and processes see the null
    tracer and contribute no spans.

    ``registry`` is optional: given one, every closed span's duration is
    folded into its ``repro_stage_seconds{stage=<span name>}`` histogram
    so traces double as the source of per-stage latency aggregates.
    """

    def __init__(self, name: str = "trace", registry=None):  # noqa: D107
        self._root = Span(name)
        self._stack: List[Span] = [self._root]
        self._stage_histogram = (
            None
            if registry is None or not registry.enabled
            else registry.histogram(
                "repro_stage_seconds",
                "Per-stage pipeline durations from traced requests",
                ("stage",),
            )
        )

    @property
    def root(self) -> Span:
        """The root span (named after the tracer)."""
        return self._root

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a child span of the innermost open span."""
        span = Span(name, attrs)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _pop(self, span: Span) -> None:
        span.end()
        # Tolerate exits out of order (an exception unwinding through
        # several spans): pop everything down to and including ours.
        while len(self._stack) > 1:
            top = self._stack.pop()
            top.end()
            if top is span:
                break
        if self._stage_histogram is not None:
            self._stage_histogram.observe(span.duration_s, stage=span.name)

    def finish(self) -> Span:
        """Close every open span (idempotent); returns the root."""
        while len(self._stack) > 1:
            self._stack.pop().end()
        self._root.end()
        if self._stage_histogram is not None:
            self._stage_histogram.observe(
                self._root.duration_s, stage=self._root.name
            )
        return self._root

    def tree(self) -> dict:
        """The finished trace as a JSON-ready dict."""
        self.finish()
        return self._root.to_dict()

    def stage_names(self) -> List[str]:
        """Every span name in the tree, depth-first (tests, tooling)."""
        return [span.name for span in self._root.walk()]

    def __repr__(self) -> str:
        return "<Tracer {} ({} open)>".format(
            self._root.name, len(self._stack)
        )


class _NullSpan:
    """The span no-one is recording: every method is a no-op."""

    __slots__ = ()

    def set(self, **attrs) -> None:  # noqa: D102
        pass

    def end(self) -> None:  # noqa: D102
        pass


class _NullSpanContext:
    """One shared, reusable context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *_exc) -> None:
        pass


#: The shared no-op span and its context manager (identity-tested).
NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: ``span()`` returns one shared no-op context."""

    def span(self, name: str, **attrs) -> _NullSpanContext:  # noqa: D102
        return _NULL_SPAN_CONTEXT

    def finish(self) -> None:  # noqa: D102
        return None

    def tree(self) -> dict:  # noqa: D102
        return {}


#: The process-wide null tracer: what :func:`current_tracer` answers
#: unless :func:`tracing` installed a live one for this context.
NULL_TRACER = NullTracer()

_ACTIVE: "contextvars.ContextVar" = contextvars.ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)


def current_tracer():
    """The ambient tracer of the calling context (null by default)."""
    return _ACTIVE.get()


@contextmanager
def tracing(name: str = "trace", registry=None):
    """Install a live :class:`Tracer` for the duration of the block.

    The tracer is finished (all spans closed, stage histogram fed) on
    the way out, even on exceptions, and the previous ambient tracer is
    restored — nested ``tracing`` blocks produce independent trees.
    """
    tracer = Tracer(name, registry=registry)
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
        tracer.finish()


def tree_stage_names(tree: dict) -> List[str]:
    """Every span name in an exported trace tree, depth-first."""
    if not tree:
        return []
    names = [tree.get("name", "")]
    for child in tree.get("children", ()):
        names.extend(tree_stage_names(child))
    return names


def format_trace(tree: dict, indent: int = 0) -> str:
    """Pretty-print an exported trace tree, one span per line.

    The layout the ``repro-prov trace`` subcommand prints::

        query (12.41 ms)
          parse (0.08 ms)
          plan (0.21 ms) cache=miss
          join (10.02 ms) engine=hashjoin
            join.step (6.77 ms) relation=R rows=10000
    """
    if not tree:
        return "(empty trace)"
    attrs = tree.get("attrs") or {}
    line = "{}{} ({:.2f} ms){}".format(
        "  " * indent,
        tree.get("name", "?"),
        tree.get("duration_ms", 0.0),
        "".join(
            " {}={}".format(key, attrs[key]) for key in sorted(attrs)
        ),
    )
    lines = [line]
    for child in tree.get("children", ()):
        lines.append(format_trace(child, indent + 1))
    return "\n".join(lines)

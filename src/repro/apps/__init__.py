"""Provenance-consuming applications (the paper's Introduction).

Provenance polynomials exist to feed "advanced data management tools":
view maintenance, trust assessment, probabilistic query answering,
cost/clearance analysis.  Each submodule implements one such tool on
top of the semiring framework, and documents whether it may be fed the
*core* provenance instead of the full provenance:

* absorptive analyses (trust, cheapest derivation, clearance, best
  confidence) — identical answers on core provenance;
* non-absorptive analyses (counting, probability) — answers may change;
  the core is a derivation-minimal summary, not a lossless compressed
  form, for these.
"""

from repro.apps.causality import (
    actual_causes,
    counterfactual_causes,
    responsibility,
    responsibility_ranking,
    sensitivity,
)
from repro.apps.clearance import required_clearance
from repro.apps.cost import cheapest_derivation, derivation_cost
from repro.apps.deletion import (
    delete_tuples,
    partition_by_survival,
    propagate_deletion,
    survives_deletion,
)
from repro.apps.probability import tuple_probability
from repro.apps.trust import is_trusted, minimal_trust_sets

__all__ = [
    "delete_tuples",
    "partition_by_survival",
    "propagate_deletion",
    "survives_deletion",
    "is_trusted",
    "minimal_trust_sets",
    "tuple_probability",
    "derivation_cost",
    "cheapest_derivation",
    "required_clearance",
    "actual_causes",
    "counterfactual_causes",
    "responsibility",
    "responsibility_ranking",
    "sensitivity",
]

"""Trust assessment from provenance polynomials.

An output tuple is *trusted* when it has a derivation using trusted
input tuples only — the Boolean-semiring specialization of its
provenance.  Because the Boolean semiring is absorptive, the answer is
identical on the core provenance (verified by property tests), which is
the paper's "compact input to data management tools" argument made
concrete.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

from repro.semiring.boolean import BooleanSemiring
from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.polynomial import Polynomial

_BOOLEAN = BooleanSemiring()


def is_trusted(polynomial: Polynomial, trusted: Iterable[str]) -> bool:
    """Is the tuple derivable from the ``trusted`` annotations alone?

    >>> p = Polynomial.parse("s1*s2 + s3")
    >>> is_trusted(p, ["s3"])
    True
    >>> is_trusted(p, ["s1"])
    False
    """
    trusted = set(trusted)
    return evaluate_polynomial(
        polynomial, _BOOLEAN, lambda symbol: symbol in trusted
    )


def minimal_trust_sets(polynomial: Polynomial) -> List[FrozenSet[str]]:
    """The minimal sets of input tuples whose trust suffices.

    These are exactly the supports of the core monomials: trusting any
    one of the returned sets makes the tuple trusted, and no proper
    subset of any of them does.
    """
    from repro.direct.core_polynomial import core_monomials

    return [frozenset(m.symbols) for m in core_monomials(polynomial)]

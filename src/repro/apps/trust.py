"""Trust assessment from provenance polynomials.

An output tuple is *trusted* when it has a derivation using trusted
input tuples only — the Boolean-semiring specialization of its
provenance.  Because the Boolean semiring is absorptive, the answer is
identical on the core provenance (verified by property tests), which is
the paper's "compact input to data management tools" argument made
concrete.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List

from repro.algebra.semimodule import SemimoduleElement
from repro.semiring.boolean import BooleanSemiring
from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.polynomial import Polynomial

_BOOLEAN = BooleanSemiring()


def is_trusted(polynomial: Polynomial, trusted: Iterable[str]) -> bool:
    """Is the tuple derivable from the ``trusted`` annotations alone?

    >>> p = Polynomial.parse("s1*s2 + s3")
    >>> is_trusted(p, ["s3"])
    True
    >>> is_trusted(p, ["s1"])
    False
    """
    trusted = set(trusted)
    return evaluate_polynomial(
        polynomial, _BOOLEAN, lambda symbol: symbol in trusted
    )


def minimal_trust_sets(polynomial: Polynomial) -> List[FrozenSet[str]]:
    """The minimal sets of input tuples whose trust suffices.

    These are exactly the supports of the core monomials: trusting any
    one of the returned sets makes the tuple trusted, and no proper
    subset of any of them does.
    """
    from repro.direct.core_polynomial import core_monomials

    return [frozenset(m.symbols) for m in core_monomials(polynomial)]


def trusted_aggregate_value(
    element: SemimoduleElement, trusted: Iterable[str]
) -> Hashable:
    """The aggregate computed over trusted derivations only.

    Untrusted annotations specialize to multiplicity 0, trusted ones to
    1 — the aggregate "as if" only trusted inputs existed, read off the
    cached semimodule annotation with no re-evaluation.  The monoid
    identity (``0`` / :data:`~repro.algebra.monoid.ABSENT`) means no
    contribution is fully trusted.

    >>> from repro.algebra.monoid import monoid_for
    >>> e = (SemimoduleElement.tensor("s1", 5, monoid_for("sum"))
    ...      + SemimoduleElement.tensor("s2", 2, monoid_for("sum")))
    >>> trusted_aggregate_value(e, ["s2"])
    2
    >>> trusted_aggregate_value(e, [])
    0
    """
    allowed = set(trusted)
    return element.specialize(lambda symbol: 1 if symbol in allowed else 0)

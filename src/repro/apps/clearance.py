"""Access-control analysis (security-semiring specialization).

Each input tuple carries a clearance level; seeing an output tuple
requires the minimum over derivations of the maximum level inside the
derivation.  Absorptive, hence computable from the core provenance.
"""

from __future__ import annotations

from typing import Mapping

from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.polynomial import Polynomial
from repro.semiring.security import Clearance, SecuritySemiring

_SECURITY = SecuritySemiring()


def required_clearance(
    polynomial: Polynomial,
    levels: Mapping[str, Clearance],
) -> Clearance:
    """The clearance needed to observe the annotated tuple.

    >>> p = Polynomial.parse("s1*s2 + s3")
    >>> required_clearance(p, {
    ...     "s1": Clearance.PUBLIC,
    ...     "s2": Clearance.SECRET,
    ...     "s3": Clearance.CONFIDENTIAL,
    ... }).name
    'CONFIDENTIAL'
    """
    return evaluate_polynomial(polynomial, _SECURITY, dict(levels))

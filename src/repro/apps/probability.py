"""Exact tuple probability over a tuple-independent database.

Every input tuple is present independently with a given probability;
the probability of an output tuple is the probability that at least one
of its derivations is fully present.  Computed exactly by enumerating
possible worlds over the polynomial's support (exponential in the
number of distinct annotations — exact probabilistic inference is
#P-hard in general, and the polynomial support is small in provenance
workloads).

Probability depends only on which *minimal* witness sets exist, so it
is invariant under the core-provenance transform — unlike bag-semantics
counting, which is not.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.semiring.polynomial import Polynomial


def tuple_probability(
    polynomial: Polynomial,
    probabilities: Mapping[str, float],
) -> float:
    """Exact probability that the annotated tuple is derivable.

    ``probabilities`` maps every annotation in the polynomial's support
    to its marginal; tuples are independent.

    >>> p = Polynomial.parse("s1*s2")
    >>> round(tuple_probability(p, {"s1": 0.5, "s2": 0.5}), 4)
    0.25
    """
    support = sorted(polynomial.support())
    for symbol in support:
        if symbol not in probabilities:
            raise KeyError("no probability for annotation {}".format(symbol))
    witnesses = [frozenset(m.symbols) for m in polynomial.terms]
    total = 0.0
    for world in itertools.product((False, True), repeat=len(support)):
        present = {s for s, bit in zip(support, world) if bit}
        if not any(witness <= present for witness in witnesses):
            continue
        weight = 1.0
        for symbol, bit in zip(support, world):
            weight *= probabilities[symbol] if bit else 1.0 - probabilities[symbol]
        total += weight
    return total

"""Exact tuple probability over a tuple-independent database.

Every input tuple is present independently with a given probability;
the probability of an output tuple is the probability that at least one
of its derivations is fully present.  Computed exactly by enumerating
possible worlds over the polynomial's support (exponential in the
number of distinct annotations — exact probabilistic inference is
#P-hard in general, and the polynomial support is small in provenance
workloads).

Probability depends only on which *minimal* witness sets exist, so it
is invariant under the core-provenance transform — unlike bag-semantics
counting, which is not.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Hashable, Mapping, Optional

from repro.algebra.semimodule import SemimoduleElement
from repro.errors import EvaluationError
from repro.semiring.polynomial import Polynomial

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.aggregate.result import AggregateResult


def tuple_probability(
    polynomial: Polynomial,
    probabilities: Mapping[str, float],
) -> float:
    """Exact probability that the annotated tuple is derivable.

    ``probabilities`` maps every annotation in the polynomial's support
    to its marginal; tuples are independent.

    >>> p = Polynomial.parse("s1*s2")
    >>> round(tuple_probability(p, {"s1": 0.5, "s2": 0.5}), 4)
    0.25
    """
    support = sorted(polynomial.support())
    for symbol in support:
        if symbol not in probabilities:
            raise KeyError("no probability for annotation {}".format(symbol))
    witnesses = [frozenset(m.symbols) for m in polynomial.terms]
    total = 0.0
    for world in itertools.product((False, True), repeat=len(support)):
        present = {s for s, bit in zip(support, world) if bit}
        if not any(witness <= present for witness in witnesses):
            continue
        weight = 1.0
        for symbol, bit in zip(support, world):
            weight *= probabilities[symbol] if bit else 1.0 - probabilities[symbol]
        total += weight
    return total


def expected_aggregate(
    element: SemimoduleElement,
    probabilities: Mapping[str, float],
) -> float:
    """Expected SUM/COUNT over a tuple-independent database.

    Linearity of expectation makes this exact and cheap for the linear
    monoids: every tensor ``p ⊗ m`` contributes
    ``m · E[multiplicity of p]``, and a monomial's expected
    multiplicity is its coefficient times the product of its *distinct*
    symbols' marginals (presence indicators are idempotent).  MIN/MAX
    are not linear — use :func:`aggregate_distribution` for them.

    >>> from repro.algebra.monoid import monoid_for
    >>> e = (SemimoduleElement.tensor("s1", 10, monoid_for("sum"))
    ...      + SemimoduleElement.tensor("s2", 4, monoid_for("sum")))
    >>> expected_aggregate(e, {"s1": 0.5, "s2": 0.25})
    6.0
    """
    if not element.monoid.linear:
        raise EvaluationError(
            "expectation by linearity is only defined for the linear "
            "monoids (sum/count), not {}; use "
            "aggregate_distribution".format(element.monoid.name)
        )
    for symbol in sorted(element.support()):
        if symbol not in probabilities:
            raise KeyError("no probability for annotation {}".format(symbol))
    total = 0.0
    for value, polynomial in element:
        for monomial, coefficient in polynomial.terms.items():
            presence = 1.0
            for symbol in monomial.factors.distinct():
                presence *= probabilities[symbol]
            total += value * coefficient * presence
    return total


def aggregate_distribution(
    result: "AggregateResult",
    probabilities: Mapping[str, float],
    aggregate: int = 0,
) -> Dict[Optional[Hashable], float]:
    """Exact distribution of one aggregate slot's value.

    Enumerates possible worlds over the group's annotation support
    (exponential, like :func:`tuple_probability`).  The returned
    mapping sends each attainable value to its probability; the key
    ``None`` carries the probability that the group is absent (no
    derivation survives).  Works for every monoid, including the
    non-linear MIN/MAX.
    """
    element = result.aggregates[aggregate]
    support = sorted(result.provenance.support() | element.support())
    for symbol in support:
        if symbol not in probabilities:
            raise KeyError("no probability for annotation {}".format(symbol))
    witnesses = [frozenset(m.symbols) for m in result.provenance.terms]
    distribution: Dict[Optional[Hashable], float] = {}
    for world in itertools.product((0, 1), repeat=len(support)):
        valuation = dict(zip(support, world))
        present = {symbol for symbol, bit in valuation.items() if bit}
        weight = 1.0
        for symbol, bit in zip(support, world):
            weight *= (
                probabilities[symbol] if bit else 1.0 - probabilities[symbol]
            )
        if any(witness <= present for witness in witnesses):
            outcome: Optional[Hashable] = element.specialize(valuation)
        else:
            outcome = None
        distribution[outcome] = distribution.get(outcome, 0.0) + weight
    return distribution

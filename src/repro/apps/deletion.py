"""Deletion propagation / view maintenance on provenance polynomials.

Deleting an input tuple sets its annotation to the semiring zero; in
``N[X]`` this removes every monomial mentioning the annotation.  A view
tuple survives a deletion iff its polynomial stays nonzero — computable
from recorded provenance with no re-evaluation, which is the classic
view-maintenance use of provenance (Green et al., VLDB 2007).

Survival (a Boolean question) is absorptive, so it can be answered from
the core provenance; the surviving *polynomial* itself is not.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.semiring.polynomial import Polynomial

HeadTuple = Tuple


def delete_tuples(polynomial: Polynomial, deleted: Iterable[str]) -> Polynomial:
    """The provenance after deleting the tuples annotated ``deleted``.

    Symbols that appear in no monomial are simply ignored — deleting
    them is a no-op, not an error.

    >>> p = Polynomial.parse("s1*s2 + s3")
    >>> str(delete_tuples(p, ["s2"]))
    's3'
    >>> str(delete_tuples(p, ["s99"]))
    's1*s2 + s3'
    """
    gone = set(deleted)
    if not gone:
        return polynomial
    return Polynomial(
        {
            monomial: coefficient
            for monomial, coefficient in polynomial.terms.items()
            if not any(symbol in gone for symbol in monomial.symbols)
        }
    )


def survives_deletion(polynomial: Polynomial, deleted: Iterable[str]) -> bool:
    """Does the output tuple survive the deletion?"""
    return not delete_tuples(polynomial, deleted).is_zero()


def propagate_deletion(
    view: Mapping[HeadTuple, Polynomial],
    deleted: Iterable[str],
) -> Dict[HeadTuple, Polynomial]:
    """Maintain a whole view under deletion of input tuples.

    Returns the surviving view tuples with their updated provenance.
    """
    survivors, _killed = partition_by_survival(view, deleted)
    return survivors


def partition_by_survival(
    view: Mapping[HeadTuple, Polynomial],
    deleted: Iterable[str],
) -> Tuple[Dict[HeadTuple, Polynomial], List[HeadTuple]]:
    """Split a view into survivors and casualties of a deletion batch.

    Returns ``(survivors, killed)``: survivors carry their updated
    polynomials, ``killed`` lists the output tuples whose provenance
    became zero.  This is the batch primitive behind provenance-driven
    invalidation in :mod:`repro.incremental` — symbols absent from
    every monomial are harmless no-ops.

    >>> view = {("a",): Polynomial.parse("s1*s2"), ("b",): Polynomial.parse("s3")}
    >>> survivors, killed = partition_by_survival(view, ["s2", "s99"])
    >>> sorted(survivors), killed
    ([('b',)], [('a',)])
    """
    deleted = set(deleted)
    survivors: Dict[HeadTuple, Polynomial] = {}
    killed: List[HeadTuple] = []
    for output, polynomial in view.items():
        updated = delete_tuples(polynomial, deleted)
        if updated.is_zero():
            killed.append(output)
        else:
            survivors[output] = updated
    return survivors, killed

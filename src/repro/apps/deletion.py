"""Deletion propagation / view maintenance on provenance polynomials.

Deleting an input tuple sets its annotation to the semiring zero; in
``N[X]`` this removes every monomial mentioning the annotation.  A view
tuple survives a deletion iff its polynomial stays nonzero — computable
from recorded provenance with no re-evaluation, which is the classic
view-maintenance use of provenance (Green et al., VLDB 2007).

Survival (a Boolean question) is absorptive, so it can be answered from
the core provenance; the surviving *polynomial* itself is not.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.semiring.polynomial import Polynomial

HeadTuple = Tuple


def delete_tuples(polynomial: Polynomial, deleted: Iterable[str]) -> Polynomial:
    """The provenance after deleting the tuples annotated ``deleted``.

    >>> p = Polynomial.parse("s1*s2 + s3")
    >>> str(delete_tuples(p, ["s2"]))
    's3'
    """
    gone = set(deleted)
    return Polynomial(
        {
            monomial: coefficient
            for monomial, coefficient in polynomial.terms.items()
            if not any(symbol in gone for symbol in monomial.symbols)
        }
    )


def survives_deletion(polynomial: Polynomial, deleted: Iterable[str]) -> bool:
    """Does the output tuple survive the deletion?"""
    return not delete_tuples(polynomial, deleted).is_zero()


def propagate_deletion(
    view: Mapping[HeadTuple, Polynomial],
    deleted: Iterable[str],
) -> Dict[HeadTuple, Polynomial]:
    """Maintain a whole view under deletion of input tuples.

    Returns the surviving view tuples with their updated provenance.
    """
    deleted = set(deleted)
    maintained: Dict[HeadTuple, Polynomial] = {}
    for output, polynomial in view.items():
        updated = delete_tuples(polynomial, deleted)
        if not updated.is_zero():
            maintained[output] = updated
    return maintained

"""Deletion propagation / view maintenance on provenance polynomials.

Deleting an input tuple sets its annotation to the semiring zero; in
``N[X]`` this removes every monomial mentioning the annotation.  A view
tuple survives a deletion iff its polynomial stays nonzero — computable
from recorded provenance with no re-evaluation, which is the classic
view-maintenance use of provenance (Green et al., VLDB 2007).

Survival (a Boolean question) is absorptive, so it can be answered from
the core provenance; the surviving *polynomial* itself is not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.algebra.semimodule import SemimoduleElement
from repro.semiring.polynomial import Polynomial

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.aggregate.result import AggregateResult

HeadTuple = Tuple


def delete_tuples(polynomial: Polynomial, deleted: Iterable[str]) -> Polynomial:
    """The provenance after deleting the tuples annotated ``deleted``.

    Symbols that appear in no monomial are simply ignored — deleting
    them is a no-op, not an error.

    >>> p = Polynomial.parse("s1*s2 + s3")
    >>> str(delete_tuples(p, ["s2"]))
    's3'
    >>> str(delete_tuples(p, ["s99"]))
    's1*s2 + s3'
    """
    gone = set(deleted)
    if not gone:
        return polynomial
    return Polynomial(
        {
            monomial: coefficient
            for monomial, coefficient in polynomial.terms.items()
            if not any(symbol in gone for symbol in monomial.symbols)
        }
    )


def survives_deletion(polynomial: Polynomial, deleted: Iterable[str]) -> bool:
    """Does the output tuple survive the deletion?"""
    return not delete_tuples(polynomial, deleted).is_zero()


def propagate_deletion(
    view: Mapping[HeadTuple, Polynomial],
    deleted: Iterable[str],
) -> Dict[HeadTuple, Polynomial]:
    """Maintain a whole view under deletion of input tuples.

    Returns the surviving view tuples with their updated provenance.
    """
    survivors, _killed = partition_by_survival(view, deleted)
    return survivors


def partition_by_survival(
    view: Mapping[HeadTuple, Polynomial],
    deleted: Iterable[str],
) -> Tuple[Dict[HeadTuple, Polynomial], List[HeadTuple]]:
    """Split a view into survivors and casualties of a deletion batch.

    Returns ``(survivors, killed)``: survivors carry their updated
    polynomials, ``killed`` lists the output tuples whose provenance
    became zero.  This is the batch primitive behind provenance-driven
    invalidation in :mod:`repro.incremental` — symbols absent from
    every monomial are harmless no-ops.

    >>> view = {("a",): Polynomial.parse("s1*s2"), ("b",): Polynomial.parse("s3")}
    >>> survivors, killed = partition_by_survival(view, ["s2", "s99"])
    >>> sorted(survivors), killed
    ([('b',)], [('a',)])
    """
    deleted = set(deleted)
    survivors: Dict[HeadTuple, Polynomial] = {}
    killed: List[HeadTuple] = []
    for output, polynomial in view.items():
        updated = delete_tuples(polynomial, deleted)
        if updated.is_zero():
            killed.append(output)
        else:
            survivors[output] = updated
    return survivors, killed


# ----------------------------------------------------------------------
# Aggregates: deletion on semimodule annotations
# ----------------------------------------------------------------------
def delete_from_aggregate(
    element: SemimoduleElement, deleted: Iterable[str]
) -> SemimoduleElement:
    """The semimodule annotation after deleting the ``deleted`` tuples.

    Deletion filters tensors exactly as it filters polynomial
    monomials: a contribution whose annotation mentions a deleted
    symbol vanishes; the value side is untouched.  The result is still
    symbolic and can be specialized or deleted-from again.

    >>> from repro.algebra.monoid import monoid_for
    >>> from repro.algebra.semimodule import SemimoduleElement
    >>> e = (SemimoduleElement.tensor("s1", 5, monoid_for("sum"))
    ...      + SemimoduleElement.tensor("s2", 2, monoid_for("sum")))
    >>> str(delete_from_aggregate(e, ["s1"]))
    'sum[s2⊗2]'
    """
    gone = set(deleted)
    if not gone:
        return element
    return element.map_polynomials(lambda p: delete_tuples(p, gone))


def aggregate_after_deletion(
    element: SemimoduleElement, deleted: Iterable[str]
) -> Hashable:
    """The concrete aggregate value once ``deleted`` are gone.

    Computed from the cached annotation with no re-evaluation: deleted
    symbols specialize to 0, survivors to 1 (their multiplicity).  The
    monoid identity signals an empty group (``0`` for SUM/COUNT,
    ``None`` for MIN/MAX); pair with the group's survival check when
    the distinction matters.

    >>> from repro.algebra.monoid import monoid_for
    >>> from repro.algebra.semimodule import SemimoduleElement
    >>> e = (SemimoduleElement.tensor("s1", 5, monoid_for("sum"))
    ...      + SemimoduleElement.tensor("s2", 2, monoid_for("sum")))
    >>> aggregate_after_deletion(e, ["s1"])
    2
    """
    gone = set(deleted)
    return element.specialize(lambda symbol: 0 if symbol in gone else 1)


def propagate_deletion_aggregates(
    view: Mapping[HeadTuple, "AggregateResult"],
    deleted: Iterable[str],
) -> Tuple[Dict[HeadTuple, "AggregateResult"], List[HeadTuple]]:
    """Maintain a whole aggregated view under deletion of input tuples.

    ``view`` maps groups to
    :class:`~repro.aggregate.result.AggregateResult` rows.  Returns
    ``(survivors, killed)``: survivors carry filtered provenance *and*
    filtered semimodule annotations; groups whose provenance became
    zero are killed — their aggregate has no derivation left.
    """
    gone = set(deleted)
    survivors: Dict[HeadTuple, "AggregateResult"] = {}
    killed: List[HeadTuple] = []
    for group, result in view.items():
        updated = result.map_polynomials(lambda p: delete_tuples(p, gone))
        if updated.provenance.is_zero():
            killed.append(group)
        else:
            survivors[group] = updated
    return survivors, killed

"""Causality and responsibility of input tuples (Meliou et al. [25]).

The paper cites causality analysis as a canonical consumer of
provenance.  Over a Boolean view (the output tuple is present or not),
with the witnesses read off the provenance polynomial:

* an input tuple is a **counterfactual cause** when deleting it removes
  the output tuple (it lies in *every* witness);
* it is an **actual cause** when some contingency set Γ of other tuples
  can be deleted first to make it counterfactual; equivalently, it lies
  in some *minimal* witness;
* its **responsibility** is ``1 / (1 + |Γ|)`` for the smallest such Γ.
  Here Γ must hit every witness avoiding the tuple, so responsibility
  reduces to a minimum hitting-set computation over the witness family
  (exact, exponential in the number of distinct annotations — fine at
  provenance scale, and NP-hard in general per [25]).

Because causality only depends on the *minimal* witnesses, all three
notions are invariant under the core-provenance transform — another
instance of "the core suffices", tested in the suite.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Set

from repro.semiring.polynomial import Polynomial

Witness = FrozenSet[str]


def witnesses_of(polynomial: Polynomial) -> List[Witness]:
    """The minimal witness sets of an output tuple."""
    supports = {frozenset(m.symbols) for m in polynomial.terms}
    return sorted(
        (w for w in supports if not any(o < w for o in supports)),
        key=sorted,
    )


def counterfactual_causes(polynomial: Polynomial) -> Set[str]:
    """Tuples whose deletion alone removes the output tuple.

    >>> sorted(counterfactual_causes(Polynomial.parse("s1*s2 + s1*s3")))
    ['s1']
    """
    witnesses = witnesses_of(polynomial)
    if not witnesses:
        return set()
    common = set(witnesses[0])
    for witness in witnesses[1:]:
        common &= witness
    return common


def actual_causes(polynomial: Polynomial) -> Set[str]:
    """Tuples participating in some minimal witness.

    >>> sorted(actual_causes(Polynomial.parse("s1*s2 + s1*s2*s3")))
    ['s1', 's2']
    """
    causes: Set[str] = set()
    for witness in witnesses_of(polynomial):
        causes |= witness
    return causes


def responsibility(polynomial: Polynomial, symbol: str) -> float:
    """The responsibility of one input tuple for the output tuple.

    ``1 / (1 + k)`` where ``k`` is the size of the smallest contingency
    set: a set of other tuples hitting every witness that avoids
    ``symbol``.  Zero when the tuple is not an actual cause.

    >>> responsibility(Polynomial.parse("s1*s2"), "s1")
    1.0
    >>> responsibility(Polynomial.parse("s1 + s2"), "s1")
    0.5
    """
    witnesses = witnesses_of(polynomial)
    if symbol not in actual_causes(polynomial):
        return 0.0
    avoiding = [w for w in witnesses if symbol not in w]
    if not avoiding:
        return 1.0  # already counterfactual
    candidates: Set[str] = set()
    for witness in avoiding:
        candidates |= witness
    candidates.discard(symbol)
    hitting_size = _minimum_hitting_set_size(avoiding, sorted(candidates))
    return 1.0 / (1.0 + hitting_size)


def responsibility_ranking(polynomial: Polynomial) -> List:
    """All actual causes ranked by responsibility (descending).

    Returns ``(symbol, responsibility)`` pairs; ties break by symbol.
    """
    scored = [
        (symbol, responsibility(polynomial, symbol))
        for symbol in sorted(actual_causes(polynomial))
    ]
    return sorted(scored, key=lambda pair: (-pair[1], pair[0]))


def sensitivity(polynomial: Polynomial, symbol: str, multiplicities: Dict[str, int]) -> int:
    """Bag-semantics sensitivity: ``∂p/∂symbol`` at the multiplicities.

    How much the output multiplicity changes per unit change in the
    multiplicity of the tuple annotated ``symbol`` (first order).
    """
    from repro.semiring.evaluate import evaluate_polynomial
    from repro.semiring.natural import NaturalSemiring

    return evaluate_polynomial(
        polynomial.derivative(symbol), NaturalSemiring(), multiplicities
    )


def _minimum_hitting_set_size(
    families: List[Witness], candidates: List[str]
) -> int:
    """Smallest subset of ``candidates`` intersecting every family.

    Exact search by increasing size; families are small antichains in
    provenance workloads.
    """
    for size in range(0, len(candidates) + 1):
        for subset in itertools.combinations(candidates, size):
            chosen = set(subset)
            if all(chosen & family for family in families):
                return size
    # Unreachable: the union of all candidates hits every family by
    # construction (every avoiding witness is nonempty).
    raise AssertionError("no hitting set found")

"""Cheapest-derivation analysis (tropical specialization).

With a nonnegative cost per input tuple, the cost of a derivation is
the sum over its monomial (with multiplicity) and the cost of an output
tuple is the minimum over derivations — the tropical semiring
specialization of its provenance.  Absorptive, hence computable from
the core provenance.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.polynomial import Monomial, Polynomial
from repro.semiring.tropical import TropicalSemiring

_TROPICAL = TropicalSemiring()


def derivation_cost(polynomial: Polynomial, costs: Mapping[str, float]) -> float:
    """The cost of the cheapest derivation (``inf`` for zero provenance).

    >>> p = Polynomial.parse("s1*s2 + s3")
    >>> derivation_cost(p, {"s1": 1.0, "s2": 2.0, "s3": 5.0})
    3.0
    """
    return evaluate_polynomial(polynomial, _TROPICAL, dict(costs))


def cheapest_derivation(
    polynomial: Polynomial, costs: Mapping[str, float]
) -> Optional[Monomial]:
    """The monomial realizing the cheapest derivation (``None`` when the
    polynomial is zero)."""
    best: Optional[Monomial] = None
    best_cost = float("inf")
    for monomial in polynomial.monomials():
        cost = sum(costs[symbol] for symbol in monomial.symbols)
        if cost < best_cost:
            best = monomial
            best_cost = cost
    return best

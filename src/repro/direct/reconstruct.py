"""Reconstructing the p-minimal adjunct behind a core monomial.

Lemma 5.9: given a core monomial ``m`` of ``P(t, Q, D)``, the database
``D``, the output tuple ``t`` and ``Const(Q)`` — but *not* the query —
the complete adjunct of ``MinProv(Q)`` whose assignments yield ``m``
can be rebuilt, because on an abstractly-tagged database an assignment
of a complete adjunct is invertible:

* every annotation of ``m`` identifies one database tuple (abstract
  tagging);
* each such tuple is the image of exactly one atom (the monomial is in
  support form);
* a value equal to a constant of ``Const(Q)`` must be that constant
  (completeness forbids variables from taking constant values), and
  every other value corresponds to one fresh variable (completeness
  forces distinct variables to take distinct values).

The coefficient of ``m`` in the core provenance is then the number of
automorphisms of the reconstructed adjunct (Lemma 5.7).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence

from repro.db.instance import AnnotatedDatabase
from repro.errors import ReproError
from repro.hom.homomorphism import count_automorphisms
from repro.query.atoms import Atom, Disequality
from repro.query.cq import DEFAULT_HEAD_RELATION, ConjunctiveQuery
from repro.query.terms import Constant, Term, Variable
from repro.semiring.polynomial import Monomial


def reconstruct_adjunct(
    monomial: Monomial,
    db: AnnotatedDatabase,
    output: Sequence[Hashable],
    constants: Iterable[Constant] = (),
    head_relation: str = DEFAULT_HEAD_RELATION,
) -> ConjunctiveQuery:
    """Rebuild the complete adjunct that yields ``monomial`` for
    ``output`` (Lemma 5.9).

    ``monomial`` must be in support form (each annotation once) and
    ``db`` abstractly tagged; ``constants`` is ``Const(Q)``.

    >>> db = AnnotatedDatabase.from_dict({"R": {("a", "a"): "s1"}})
    >>> q = reconstruct_adjunct(Monomial(["s1"]), db, ("a",))
    >>> str(q)
    'ans(v1) :- R(v1, v1)'
    """
    if not monomial.is_linear():
        raise ReproError(
            "core monomials are in support form; got {}".format(monomial)
        )
    constant_values = {c.value for c in constants}
    variable_of: Dict[Hashable, Variable] = {}

    def term_of(value: Hashable) -> Term:
        if value in constant_values:
            return Constant(value)
        if value not in variable_of:
            variable_of[value] = Variable("v{}".format(len(variable_of) + 1))
        return variable_of[value]

    atoms: List[Atom] = []
    for symbol in monomial.symbols:
        relation, row = db.tuple_for_annotation(symbol)
        atoms.append(Atom(relation, tuple(term_of(v) for v in row)))
    head = Atom(head_relation, tuple(term_of(v) for v in output))

    fresh_variables = sorted(variable_of.values())
    disequalities = set()
    for i, x in enumerate(fresh_variables):
        for y in fresh_variables[i + 1:]:
            disequalities.add(Disequality(x, y))
        for value in sorted(constant_values, key=repr):
            disequalities.add(Disequality(x, Constant(value)))
    return ConjunctiveQuery(head, atoms, disequalities)


def monomial_coefficient(
    monomial: Monomial,
    db: AnnotatedDatabase,
    output: Sequence[Hashable],
    constants: Iterable[Constant] = (),
) -> int:
    """The core coefficient of ``monomial``: ``Aut`` of its adjunct
    (Lemmas 5.7 and 5.9).

    >>> db = AnnotatedDatabase.from_dict(
    ...     {"R": {("a", "b"): "s2", ("b", "c"): "s4", ("c", "a"): "s5"}})
    >>> monomial_coefficient(Monomial(["s2", "s4", "s5"]), db, ())
    3
    """
    adjunct = reconstruct_adjunct(monomial, db, output, constants)
    return count_automorphisms(adjunct)

"""Part 2 of Thm. 5.1: exact core provenance, computed off-line.

The full direct pipeline: given the provenance polynomial ``p`` of an
output tuple ``t`` (produced by *any* equivalent query), the database
``D`` and ``Const(Q)`` — but not the query itself —

1. compute the core monomials with the PTIME transform of Cor. 5.6;
2. for each core monomial, reconstruct its unique complete adjunct
   (Lemma 5.9) and set its coefficient to the adjunct's automorphism
   count (Lemma 5.7).

The result equals ``P(t, MinProv(Q), D)`` exactly — verified against
rewrite-then-evaluate by tests and by
``benchmarks/bench_direct_vs_rewrite.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Sequence, Tuple

from repro.db.instance import AnnotatedDatabase
from repro.direct.core_polynomial import core_monomials
from repro.direct.reconstruct import monomial_coefficient
from repro.errors import NotAbstractlyTaggedError
from repro.query.terms import Constant
from repro.semiring.polynomial import Monomial, Polynomial

HeadTuple = Tuple[Hashable, ...]


def core_provenance(
    polynomial: Polynomial,
    db: AnnotatedDatabase,
    output: Sequence[Hashable],
    constants: Iterable[Constant] = (),
) -> Polynomial:
    """The exact core provenance of one output tuple (Thm. 5.1, part 2).

    ``polynomial`` is ``P(t, Q, D)`` as computed by an arbitrary query
    equivalent to ``Q``; ``constants`` is ``Const(Q)``.  Requires an
    abstractly-tagged database — Thm. 6.2 shows the task is impossible
    otherwise, and :class:`~repro.errors.NotAbstractlyTaggedError` is
    raised.
    """
    if not db.is_abstractly_tagged():
        raise NotAbstractlyTaggedError(
            "direct core-provenance computation requires an abstractly-"
            "tagged database (Thm. 6.2 shows it is impossible otherwise)"
        )
    constants = tuple(constants)
    terms: Dict[Monomial, int] = {}
    for monomial in core_monomials(polynomial):
        terms[monomial] = monomial_coefficient(monomial, db, output, constants)
    return Polynomial(terms)


def core_provenance_table(
    results: Mapping[HeadTuple, Polynomial],
    db: AnnotatedDatabase,
    constants: Iterable[Constant] = (),
) -> Dict[HeadTuple, Polynomial]:
    """Apply :func:`core_provenance` to a whole query result.

    ``results`` is the ``{tuple: polynomial}`` mapping returned by
    either evaluation engine.
    """
    constants = tuple(constants)
    return {
        output: core_provenance(polynomial, db, output, constants)
        for output, polynomial in results.items()
    }

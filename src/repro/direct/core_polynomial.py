"""Part 1 of Thm. 5.1: the PTIME polynomial transform (Cor. 5.6).

Given only the provenance polynomial ``p`` of an output tuple — with no
access to the query, the database or the tuple — the core provenance is
obtained *up to coefficients* by

1. replacing every monomial by its support (each annotation exactly
   once; the effect of MinProv step II, Lemma 5.3), and
2. discarding every monomial that strictly contains another monomial
   (the effect of MinProv step III, Lemma 5.5).

Both steps are polynomial in the size of ``p``.  The coefficients of
the surviving monomials cannot be recovered from ``p`` alone; part 2
(:mod:`repro.direct.pipeline`) computes them as automorphism counts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.semiring.polynomial import Monomial, Polynomial


def core_monomials(polynomial: Polynomial) -> List[Monomial]:
    """The monomials of the core provenance (no coefficients).

    These are the minimal elements, under monomial containment, of the
    supports of the monomials of ``p``.

    >>> p = Polynomial.parse("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
    >>> [str(m) for m in core_monomials(p)]          # Example 5.8
    ['s1', 's2*s4*s5']
    """
    supports = {m.support() for m in polynomial.terms}
    minimal = [
        monomial
        for monomial in supports
        if not any(other < monomial for other in supports)
    ]
    return sorted(minimal, key=lambda m: m.symbols)


def core_polynomial_approx(polynomial: Polynomial) -> Polynomial:
    """Cor. 5.6 applied literally: core provenance up to coefficients.

    Each surviving monomial keeps, as an *approximate* coefficient, the
    number of monomial occurrences of ``p`` whose support equals it.
    The paper guarantees this is the core provenance "up to the number
    of occurrences of equal monomials": the monomial set is exact, the
    coefficients may differ from the true core coefficients (which are
    the automorphism counts of Lemma 5.7, computed by
    :func:`repro.direct.pipeline.core_provenance`).
    """
    minimal = set(core_monomials(polynomial))
    coefficients: Dict[Monomial, int] = {}
    for monomial, coefficient in polynomial.terms.items():
        support = monomial.support()
        if support in minimal:
            coefficients[support] = coefficients.get(support, 0) + coefficient
    return Polynomial(coefficients)

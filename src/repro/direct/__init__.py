"""Direct computation of core provenance (Sec. 5, Thm. 5.1).

Instead of rewriting the query and re-evaluating it, the core
provenance of a tuple can be computed from its provenance polynomial:

* :mod:`repro.direct.core_polynomial` — part 1 of Thm. 5.1: the PTIME
  transform of Cor. 5.6 (exact up to coefficients, needing *only* the
  polynomial);
* :mod:`repro.direct.reconstruct` — inverting a core monomial back to
  its (unique) complete adjunct, given the database, the output tuple
  and ``Const(Q)``;
* :mod:`repro.direct.pipeline` — part 2 of Thm. 5.1: exact core
  provenance with coefficients computed as automorphism counts
  (Lemmas 5.7 and 5.9).
"""

from repro.direct.core_polynomial import core_monomials, core_polynomial_approx
from repro.direct.pipeline import core_provenance, core_provenance_table
from repro.direct.reconstruct import monomial_coefficient, reconstruct_adjunct

__all__ = [
    "core_monomials",
    "core_polynomial_approx",
    "reconstruct_adjunct",
    "monomial_coefficient",
    "core_provenance",
    "core_provenance_table",
]

"""A stdlib client for the versioned ``/v1`` serving API.

:class:`Client` wraps :mod:`http.client` — no third-party deps, one
reused connection — and turns the structured ``/v1`` error envelope
(``{"error": {"code", "message", "detail"}}``) into a typed exception
hierarchy, so callers catch :class:`UnknownViewError` instead of
string-matching messages.

Continuous queries ride on top: :meth:`Client.subscribe` registers a
standing query and returns a :class:`Subscription` whose
:meth:`~Subscription.events` iterator speaks *both* changefeed
transports, auto-detected per response:

* ``text/event-stream`` (the async tier) — frames are parsed as
  Server-Sent Events off one held-open response;
* JSON long-poll (the threaded tier) — the iterator re-polls with
  ``?cursor=N&wait=S`` and yields each batch.

Either way the iterator yields *decoded* events (rows as tuples,
values as polynomials / ``N[X] ⊗ M`` tensors, via
:func:`repro.io.changefeed_event_from_dict`), tracks the cursor, and
resumes from it after a dropped connection — the ring buffer on the
server replays what was missed, or sends one ``reset`` carrying the
full table when the cursor fell off the ring.
:meth:`Subscription.apply` folds an event into the locally held
``state`` table, which therefore always equals the server's
``read_view()`` at ``Subscription.cursor``.
"""

from __future__ import annotations

import json
import socket
from http.client import HTTPConnection, HTTPException, HTTPResponse
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import quote

from repro.io import (
    aggregate_results_from_list,
    apply_changefeed_event,
    changefeed_event_from_dict,
    results_from_list,
)

#: Server-side long-poll hold per request (seconds); kept under the
#: server's own 30s cap so every poll returns before the client times
#: its socket out.
DEFAULT_POLL_WAIT = 25.0

#: Socket timeout (seconds).  Above both the long-poll wait and the
#: 15s SSE heartbeat, so a healthy but quiet feed never times out.
DEFAULT_TIMEOUT = 60.0

#: Consecutive transport failures tolerated while following a
#: changefeed before :class:`TransportError` surfaces to the caller.
MAX_RECONNECTS = 3


# ----------------------------------------------------------------------
# Typed errors (mapped from the /v1 error envelope)
# ----------------------------------------------------------------------
class ClientError(Exception):
    """Anything this module raises."""


class TransportError(ClientError):
    """The server could not be reached (or hung up mid-response)."""


class APIError(ClientError):
    """A structured ``/v1`` error response.

    Carries the envelope verbatim: ``status`` (HTTP), ``code`` (stable
    machine-readable string), ``message`` and optional ``detail``.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Optional[str] = None,
    ):  # noqa: D107
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail

    def __repr__(self) -> str:
        return "{}(status={}, code={!r}, message={!r})".format(
            type(self).__name__, self.status, self.code, self.message
        )


class BadRequestError(APIError):
    """400 ``bad_request``: a malformed query, update or body."""


class NotFoundError(APIError):
    """404 ``not_found``: no such route or view."""


class UnknownViewError(NotFoundError):
    """404 ``unknown_view``: subscribing to a view that is not served."""


class UnknownSubscriptionError(NotFoundError):
    """404 ``unknown_subscription``: the subscription was dropped."""


class SubscriptionLimitError(APIError):
    """429 ``subscription_limit``: the server's subscriber cap is hit."""


class CapacityError(APIError):
    """503 ``capacity``: load shedding — retry shortly."""


class ServerInternalError(APIError):
    """5xx from the server's defensive handler."""


_CODE_MAP = {
    "bad_request": BadRequestError,
    "not_found": NotFoundError,
    "unknown_view": UnknownViewError,
    "unknown_subscription": UnknownSubscriptionError,
    "subscription_limit": SubscriptionLimitError,
    "capacity": CapacityError,
    "internal": ServerInternalError,
}


def _raise_for(status: int, body: bytes) -> APIError:
    """Build the typed exception for one error response body."""
    code, message, detail = "error", body.decode("utf-8", "replace"), None
    try:
        envelope = json.loads(body)["error"]
        if isinstance(envelope, dict):
            code = envelope.get("code", code)
            message = envelope.get("message", message)
            detail = envelope.get("detail")
        else:  # legacy {"error": "<message>"} (not served under /v1)
            message = envelope
    except (ValueError, KeyError, TypeError):
        pass
    cls = _CODE_MAP.get(code)
    if cls is None:
        cls = ServerInternalError if status >= 500 else APIError
    return cls(status, code, message, detail)


def decode_table(payload: dict) -> Dict[Tuple, object]:
    """Decode one encoded result table (``{"kind", "results"}``).

    The shape ``/v1/views/<name>``, query responses and subscription
    snapshots share; returns ``{row: polynomial-or-aggregate}``.
    """
    decode = (
        aggregate_results_from_list
        if payload.get("kind") == "aggregate"
        else results_from_list
    )
    return decode(payload.get("results", []))


class Subscription:
    """A standing query: cursor, locally replayed state, event feed.

    Created by :meth:`Client.subscribe`; ``state`` starts as the
    decoded snapshot taken atomically with ``cursor``, and
    :meth:`apply` keeps the pair consistent as events arrive.
    """

    def __init__(self, client: "Client", payload: dict):  # noqa: D107
        self._client = client
        self.id: str = payload["subscription"]
        self.view: str = payload["view"]
        self.aggregate: bool = bool(payload.get("aggregate"))
        self.cursor: int = payload["cursor"]
        self.ring_size: int = payload.get("ring_size", 0)
        self.state: Dict[Tuple, object] = decode_table(
            payload.get("snapshot") or {}
        )

    def apply(self, event: dict) -> None:
        """Fold one decoded event into ``state`` and advance ``cursor``."""
        apply_changefeed_event(self.state, event)
        self.cursor = event["cursor"]

    def events(
        self,
        decode: bool = True,
        poll_wait: float = DEFAULT_POLL_WAIT,
    ) -> Iterator[dict]:
        """Iterate changefeed events from ``cursor``, forever.

        Auto-detects the transport from the response Content-Type (SSE
        on the async tier, JSON long-poll on the threaded tier) and
        resumes from the last seen cursor when a connection drops.
        Yields decoded events (``decode=False`` yields the raw wire
        dicts and leaves ``apply`` to the caller's own decoder).
        Terminates only by raising: :class:`UnknownSubscriptionError`
        once the subscription is dropped (by ``close`` or server-side
        eviction), or :class:`TransportError` when the server stays
        unreachable past :data:`MAX_RECONNECTS` attempts.
        """
        failures = 0
        while True:
            path = "/v1/changefeed/{}?cursor={}&wait={}".format(
                quote(self.id, safe=""), self.cursor, poll_wait
            )
            connection = HTTPConnection(
                self._client.host,
                self._client.port,
                timeout=self._client.timeout,
            )
            try:
                connection.request("GET", path)
                response = connection.getresponse()
            except (HTTPException, socket.timeout, OSError) as error:
                connection.close()
                failures += 1
                if failures >= MAX_RECONNECTS:
                    raise TransportError(
                        "changefeed unreachable after {} attempts: {}".format(
                            failures, error
                        )
                    )
                continue
            try:
                if response.status >= 400:
                    raise _raise_for(response.status, response.read())
                failures = 0
                content_type = response.getheader("Content-Type", "")
                if "text/event-stream" in content_type:
                    source = self._iter_sse(response)
                else:
                    source = self._iter_poll(response)
                try:
                    for payload in source:
                        self.cursor = payload["cursor"]
                        yield changefeed_event_from_dict(
                            payload
                        ) if decode else payload
                except (
                    HTTPException,
                    socket.timeout,
                    ConnectionError,
                    OSError,
                ):
                    continue  # resume from self.cursor
            finally:
                connection.close()

    @staticmethod
    def _iter_sse(response: HTTPResponse) -> Iterator[dict]:
        """Parse ``data:`` payloads off one held-open SSE response."""
        buffer = b""
        while True:
            chunk = response.read1(65536)
            if not chunk:
                return  # server closed the stream (shutdown/eviction)
            buffer += chunk
            while b"\n\n" in buffer:
                frame, buffer = buffer.split(b"\n\n", 1)
                for line in frame.split(b"\n"):
                    if line.startswith(b"data:"):
                        yield json.loads(line[len(b"data:"):].strip())

    @staticmethod
    def _iter_poll(response: HTTPResponse) -> Iterator[dict]:
        """Yield the events of one long-poll JSON response."""
        payload = json.loads(response.read())
        for event in payload.get("events", []):
            yield event

    def close(self) -> None:
        """Drop the subscription server-side (idempotent)."""
        try:
            self._client.unsubscribe(self.id)
        except UnknownSubscriptionError:
            pass

    def __repr__(self) -> str:
        return "Subscription(id={!r}, view={!r}, cursor={})".format(
            self.id, self.view, self.cursor
        )


class Client:
    """A connection-reusing JSON client for one repro server.

    One :class:`~http.client.HTTPConnection` is kept open across calls
    (changefeeds use their own, since SSE holds a response forever); a
    dropped keep-alive is re-dialed once per request before
    :class:`TransportError` surfaces.  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = DEFAULT_TIMEOUT,
    ):  # noqa: D107
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[HTTPConnection] = None

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str, body=None, _retry=True):
        if self._connection is None:
            self._connection = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        encoded = None
        headers = {}
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._connection.request(method, path, body=encoded, headers=headers)
            response = self._connection.getresponse()
            data = response.read()
        except (HTTPException, socket.timeout, OSError) as error:
            self.close()
            if _retry:  # stale keep-alive: re-dial once
                return self._request(method, path, body, _retry=False)
            raise TransportError(
                "{} {} failed: {}".format(method, path, error)
            )
        if response.will_close:
            self.close()
        if response.status >= 400:
            raise _raise_for(response.status, data)
        return json.loads(data)

    # -- the query surface ---------------------------------------------
    def query(self, text: str, trace: bool = False) -> dict:
        """``POST /v1/query``: evaluate one UCQ≠/aggregate query."""
        path = "/v1/query?trace=1" if trace else "/v1/query"
        return self._request("POST", path, {"query": text})

    def batch(self, texts: List[str]) -> dict:
        """``POST /v1/batch``: evaluate many queries in one round trip."""
        return self._request("POST", "/v1/batch", {"queries": list(texts)})

    def update(self, insert=None, delete=None, retag=None) -> dict:
        """``POST /v1/update``: apply one delta batch."""
        payload = {}
        if insert:
            payload["insert"] = insert
        if delete:
            payload["delete"] = delete
        if retag:
            payload["retag"] = retag
        return self._request("POST", "/v1/update", payload)

    def view(self, name: str, base: bool = False) -> dict:
        """``GET /v1/views/<name>``: one materialized view, encoded."""
        path = "/v1/views/{}".format(quote(name, safe=""))
        if base:
            path += "?base=1"
        return self._request("GET", path)

    def view_table(self, name: str, base: bool = False) -> Dict[Tuple, object]:
        """Like :meth:`view`, decoded to ``{row: value}``."""
        return decode_table(self.view(name, base=base))

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self._request("GET", "/v1/stats")

    # -- continuous queries --------------------------------------------
    def subscribe(
        self,
        view: Optional[str] = None,
        query: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Subscription:
        """``POST /v1/subscribe``: open a standing query.

        Pass exactly one of ``view`` (attach to a served view) or
        ``query`` (register rule text as a new maintained view;
        ``name`` optionally names it).
        """
        payload: dict = {}
        if view is not None:
            payload["view"] = view
        if query is not None:
            payload["query"] = query
            if name is not None:
                payload["name"] = name
        return Subscription(
            self, self._request("POST", "/v1/subscribe", payload)
        )

    def unsubscribe(self, sub_id: str) -> dict:
        """``DELETE /v1/changefeed/<id>``: drop a subscription."""
        path = "/v1/changefeed/{}".format(quote(sub_id, safe=""))
        return self._request("DELETE", path)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Close the reused connection (re-dialed lazily if used again)."""
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "Client({}:{})".format(self.host, self.port)

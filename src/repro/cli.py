"""Command-line interface: evaluate, aggregate, minimize, core, sql, maintain.

Usage (installed as ``repro-prov``, or ``python -m repro.cli``)::

    repro-prov eval      -p program.dl -d data.json [--view NAME] [--engine hashjoin|backtrack|sharded|sql|algebra]
                         [--shards N] [--workers N]
    repro-prov aggregate -p program.dl -d data.json [--view NAME] [--engine hashjoin|backtrack|sharded|sql]
                         [--delete s1,s2] [--trust s1,s2] [--probabilities probs.json]
    repro-prov batch     -q queries.json -d data.json [--engine ...] [--shards N] [--workers N]
    repro-prov minimize  -p program.dl [--algorithm minprov|standard] [--trace]
    repro-prov core      -p program.dl -d data.json [--view NAME]
    repro-prov sql       -p program.dl
    repro-prov maintain  -p program.dl -d data.json -u updates.json [--check] [--quiet]
    repro-prov serve     -d data.json [-p program.dl] [--host H] [--port P]
                         [--engine hashjoin|sharded] [--shards N] [--workers N]
                         [--server-mode async|threaded] [--request-timeout S]
                         [--idle-timeout S] [--max-pending N]
                         [--max-subscriptions N] [--ring-size N]
                         [--cache-size N] [--no-metrics] [--log-level LEVEL]
                         [--data-dir DIR] [--snapshot-every N]
    repro-prov snapshot  --data-dir DIR [-d data.json] [-p program.dl]
    repro-prov recover   --data-dir DIR [-p program.dl] [--check]
    repro-prov trace     "<query text>" -d data.json [--engine hashjoin|sharded]
                         [--shards N] [--workers N] [--json]

The program file uses the rule syntax of :mod:`repro.query.parser`
(one or more rules; rules sharing a head relation form a union).  The
data file is JSON: either ``{"R": [["a", "b"], ...]}`` (fresh
annotations are generated, keeping the database abstractly tagged) or
``{"R": [{"row": ["a", "b"], "annotation": "s1"}, ...]}``.

The queries file for ``batch`` is a JSON list of query texts — each
entry one query in rule syntax (multi-rule unions and aggregates join
their rules with ``\\n``).  The whole batch runs through one
:class:`~repro.session.QuerySession`, so repeated or overlapping
queries share plans, shard runs and interned provenance.

The updates file for ``maintain`` is a JSON list of delta batches (a
single object is treated as one batch)::

    [{"insert": {"R": [["a", "b"],
                       {"row": ["c", "d"], "annotation": "s9"}]},
      "delete": {"R": [["b", "a"]]},
      "retag":  {"R": [{"row": ["a", "b"], "annotation": "t1"}]}}]
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Dict, List, Optional

from repro.aggregate.evaluate import evaluate_aggregate
from repro.apps.deletion import propagate_deletion_aggregates
from repro.apps.probability import aggregate_distribution, expected_aggregate
from repro.apps.trust import trusted_aggregate_value
from repro.config import EngineConfig
from repro.db.instance import AnnotatedDatabase
from repro.db.sqlite_backend import SQLiteDatabase
from repro.direct.pipeline import core_provenance_table
from repro.engine.evaluate import ENGINES as MEMORY_ENGINES
from repro.engine.evaluate import evaluate
from repro.errors import ReproError
from repro.incremental.delta import Delta
from repro.incremental.maintain import check_consistency
from repro.incremental.registry import ViewRegistry
from repro.io import deltas_from_payload
from repro.minimize.minprov import min_prov, min_prov_trace
from repro.minimize.standard import minimize_query
from repro.query.aggregate import AggregateQuery, AnyQuery
from repro.query.parser import parse_program, parse_query
from repro.query.printer import query_to_str
from repro.query.ucq import query_constants


def load_database(path: str) -> AnnotatedDatabase:
    """Load an annotated database from a JSON file."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ReproError("data file must hold a JSON object of relations")
    db = AnnotatedDatabase()
    for relation, rows in payload.items():
        for entry in rows:
            if isinstance(entry, dict):
                db.add(
                    relation,
                    tuple(entry["row"]),
                    annotation=entry.get("annotation"),
                )
            else:
                db.add(relation, tuple(entry))
    return db


def load_program(path: str) -> Dict[str, Query]:
    """Load a query program from a rule file."""
    with open(path) as handle:
        return parse_program(handle.read())


def load_deltas(path: str) -> List[Delta]:
    """Load a list of delta batches from a JSON updates file.

    The parsing itself lives in :func:`repro.io.deltas_from_payload` —
    the server's ``POST /update`` bodies use the identical format.
    """
    with open(path) as handle:
        payload = json.load(handle)
    return deltas_from_payload(payload)


def _select_views(
    program: Dict[str, AnyQuery], requested: Optional[str]
) -> Dict[str, AnyQuery]:
    if requested is None:
        return program
    if requested not in program:
        raise ReproError(
            "no view named {!r}; program defines {}".format(
                requested, sorted(program)
            )
        )
    return {requested: program[requested]}


def _print_results(name: str, results, out) -> None:
    print("-- {} ({} tuples)".format(name, len(results)), file=out)
    for output in sorted(results, key=repr):
        print("  {!r:<24} {}".format(output, results[output]), file=out)


#: Engine aliases kept for backward compatibility: ``memory`` was the
#: backtracking engine's historical CLI name, ``sql`` reads better than
#: ``sqlite`` next to ``hashjoin``/``backtrack``.
ENGINE_ALIASES = {"memory": "backtrack", "sql": "sqlite"}

#: All accepted ``--engine`` values: the in-memory engines (from the
#: evaluator's own registry, so a new engine shows up here untouched)
#: plus the SQLite backend, its aliases, and — for plain UCQ evaluation
#: only — the K-relation algebra interpreter.
AGGREGATE_ENGINES = MEMORY_ENGINES + ("sql", "sqlite", "memory")
EVAL_ENGINES = AGGREGATE_ENGINES + ("algebra",)


def _engine_config(args, engine: str) -> EngineConfig:
    """Fold a subcommand's engine flags into one :class:`EngineConfig`.

    The CLI flags are the user interface over the config (not shims):
    they build the config here, and internal calls pass it on.
    """
    return EngineConfig(
        engine=engine,
        shards=getattr(args, "shards", None),
        workers=getattr(args, "workers", None),
        broadcast_threshold=getattr(args, "broadcast_threshold", None),
        columnar=not getattr(args, "no_columnar", False),
        data_dir=getattr(args, "data_dir", None),
    )


def _evaluate_any(
    query: AnyQuery,
    db: AnnotatedDatabase,
    config: EngineConfig,
):
    engine = config.engine
    if isinstance(query, AggregateQuery):
        if engine in MEMORY_ENGINES:
            return evaluate_aggregate(query, db, config)
        if engine == "sqlite":
            store = SQLiteDatabase.from_annotated(db)
            try:
                return store.evaluate_aggregate(query)
            finally:
                store.close()
        raise ReproError(
            "the {} engine does not support aggregate queries; use "
            "--engine hashjoin, backtrack, sharded or sql".format(engine)
        )
    if engine in MEMORY_ENGINES:
        return evaluate(query, db, config)
    if engine == "sqlite":
        store = SQLiteDatabase.from_annotated(db)
        try:
            return store.evaluate(query)
        finally:
            store.close()
    if engine == "algebra":
        from repro.algebra.compile import evaluate_via_algebra

        return evaluate_via_algebra(query, db)
    raise ReproError(  # pragma: no cover - argparse restricts choices
        "unknown engine {!r}".format(engine)
    )


def command_eval(args, out) -> int:
    program = _select_views(load_program(args.program), args.view)
    db = load_database(args.data)
    engine = ENGINE_ALIASES.get(args.engine, args.engine)
    config = _engine_config(args, engine)
    if engine == "sharded":
        # One session for the whole program: the database is
        # partitioned (and shipped to the worker pool) once, not once
        # per view.
        from repro.session import QuerySession

        with QuerySession(db, config) as session:
            for name, query in sorted(program.items()):
                if isinstance(query, AggregateQuery):
                    _print_results(name, session.evaluate_aggregate(query), out)
                else:
                    _print_results(name, session.evaluate(query), out)
        return 0
    for name, query in sorted(program.items()):
        _print_results(name, _evaluate_any(query, db, config), out)
    return 0


def load_queries(path: str) -> List[str]:
    """Load the ``batch`` subcommand's JSON list of query texts."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, list) or not all(
        isinstance(entry, str) for entry in payload
    ):
        raise ReproError(
            "queries file must hold a JSON list of query strings"
        )
    return payload


def command_batch(args, out) -> int:
    texts = load_queries(args.queries)
    queries = [parse_query(text) for text in texts]
    db = load_database(args.data)
    engine = ENGINE_ALIASES.get(args.engine, args.engine)
    config = _engine_config(args, engine)
    if engine in ("sharded", "hashjoin"):
        # One session for the whole batch: shared plan cache, shared
        # shard partitioning/pool, one pinned intern table, and
        # duplicate or overlapping queries evaluated once.
        from repro.session import QuerySession

        with QuerySession(db, config) as session:
            results = session.evaluate_batch(queries)
    else:
        results = [_evaluate_any(query, db, config) for query in queries]
    for index, (text, result) in enumerate(zip(texts, results)):
        _print_results("[{}] {}".format(index, " ".join(text.split())), result, out)
    return 0


def _symbol_set(text: Optional[str]):
    return {part.strip() for part in text.split(",") if part.strip()} if text else None


def command_aggregate(args, out) -> int:
    program = _select_views(load_program(args.program), args.view)
    aggregates = {
        name: query
        for name, query in program.items()
        if isinstance(query, AggregateQuery)
    }
    if not aggregates:
        raise ReproError(
            "the program defines no aggregate queries; heads like "
            "ans(x, sum(y)) are required"
        )
    db = load_database(args.data)
    deleted = _symbol_set(args.delete)
    trusted = _symbol_set(args.trust)
    probabilities = None
    if args.probabilities:
        with open(args.probabilities) as handle:
            try:
                probabilities = {
                    str(symbol): float(p)
                    for symbol, p in json.load(handle).items()
                }
            except (AttributeError, TypeError, ValueError) as error:
                raise ReproError(
                    "probabilities file must map annotations to numbers: "
                    "{}".format(error)
                )
    config = _engine_config(
        args, ENGINE_ALIASES.get(args.engine, args.engine)
    )
    for name, query in sorted(aggregates.items()):
        results = _evaluate_any(query, db, config)
        ops = query.aggregate_ops
        _print_results(name, results, out)
        if deleted is not None:
            survivors, killed = propagate_deletion_aggregates(results, deleted)
            print(
                "-- after deleting {{{}}}".format(", ".join(sorted(deleted))),
                file=out,
            )
            for group in sorted(results, key=repr):
                if group in survivors:
                    values = survivors[group].specialize(
                        lambda s: 0 if s in deleted else 1
                    )
                    print(
                        "  {!r:<24} {}".format(
                            group,
                            " ".join(
                                "{}={!r}".format(op, value)
                                for op, value in zip(ops, values)
                            ),
                        ),
                        file=out,
                    )
            for group in sorted(killed, key=repr):
                print("  {!r:<24} (group deleted)".format(group), file=out)
        if trusted is not None:
            print(
                "-- trusting {{{}}} only".format(", ".join(sorted(trusted))),
                file=out,
            )
            for group in sorted(results, key=repr):
                values = [
                    trusted_aggregate_value(element, trusted)
                    for element in results[group].aggregates
                ]
                print(
                    "  {!r:<24} {}".format(
                        group,
                        " ".join(
                            "{}={!r}".format(op, value)
                            for op, value in zip(ops, values)
                        ),
                    ),
                    file=out,
                )
        if probabilities is not None:
            print("-- under tuple probabilities", file=out)
            for group in sorted(results, key=repr):
                rendered = []
                for index, op in enumerate(ops):
                    element = results[group].aggregates[index]
                    try:
                        if element.monoid.linear:
                            rendered.append(
                                "E[{}]={:.4f}".format(
                                    op,
                                    expected_aggregate(element, probabilities),
                                )
                            )
                        else:
                            distribution = aggregate_distribution(
                                results[group], probabilities, aggregate=index
                            )
                            rendered.append(
                                "P[{}]={{{}}}".format(
                                    op,
                                    ", ".join(
                                        "{!r}: {:.4f}".format(value, p)
                                        for value, p in sorted(
                                            distribution.items(), key=repr
                                        )
                                    ),
                                )
                            )
                    except KeyError as error:
                        raise ReproError(
                            "probabilities file is incomplete: "
                            "{}".format(error.args[0])
                        )
                print("  {!r:<24} {}".format(group, " ".join(rendered)), file=out)
    return 0


def command_minimize(args, out) -> int:
    program = _select_views(load_program(args.program), args.view)
    for name, query in sorted(program.items()):
        if isinstance(query, AggregateQuery):
            raise ReproError(
                "view {!r} is an aggregate query; minimization is defined "
                "for UCQ≠ only".format(name)
            )
        print("-- {}".format(name), file=out)
        if args.algorithm == "standard":
            print(query_to_str(minimize_query(query)), file=out)
        elif args.trace:
            trace = min_prov_trace(query)
            for label, step in (
                ("QI", trace.step1),
                ("QII", trace.step2),
                ("QIII", trace.step3),
            ):
                print("{} ({} adjuncts):".format(label, len(step.adjuncts)), file=out)
                print(query_to_str(step), file=out)
        else:
            print(query_to_str(min_prov(query)), file=out)
    return 0


def command_core(args, out) -> int:
    program = _select_views(load_program(args.program), args.view)
    db = load_database(args.data)
    for name, query in sorted(program.items()):
        if isinstance(query, AggregateQuery):
            raise ReproError(
                "view {!r} is an aggregate query; core provenance is "
                "defined for UCQ≠ results (aggregate annotations are "
                "semimodule elements)".format(name)
            )
        results = evaluate(query, db)
        core = core_provenance_table(results, db, query_constants(query))
        _print_results(name + " (core provenance)", core, out)
    return 0


def command_maintain(args, out) -> int:
    program = load_program(args.program)
    db = load_database(args.data)
    deltas = load_deltas(args.updates)
    # Context-managed like every other CLI session holder: a hashjoin
    # registry has no pool, but forgetting close() on a sharded one
    # would leak its worker threads past the command.
    with ViewRegistry(program, db) as registry:
        stats = registry.stats()
        print(
            "-- materialized {} views ({} tuples) over {} base facts".format(
                len(registry.order), stats["view_tuples"], stats["base_facts"]
            ),
            file=out,
        )
        for index, delta in enumerate(deltas, start=1):
            report = registry.apply(delta)
            print(
                "-- batch {} ({} changes): {}".format(
                    index, delta.size(), report.summary()
                ),
                file=out,
            )
        if args.check:
            audit = check_consistency(registry)
            if not audit.consistent:
                print("consistency: FAILED", file=out)
                for mismatch in audit.mismatches:
                    print("  {}".format(mismatch), file=out)
                return 1
            print("consistency: ok (matches full re-evaluation)", file=out)
        if not args.quiet:
            for name in registry.order:
                _print_results(name, registry.view(name), out)
    return 0


def command_serve(args, out) -> int:
    """Serve the database (and optional view program) over HTTP.

    Everything is context-managed: the server owns a
    :class:`~repro.server.app.ServerState` whose session (and registry)
    worker pools are released on the way out — including on Ctrl-C and
    on errors — so no leaked pool outlives the command.
    """
    from repro.server.app import make_server

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    db = load_database(args.data)
    program = load_program(args.program) if args.program else None
    with make_server(
        db,
        host=args.host,
        port=args.port,
        program=program,
        config=_engine_config(args, args.engine),
        cache_size=args.cache_size,
        metrics=not args.no_metrics,
        snapshot_every=args.snapshot_every,
        server_mode=args.server_mode,
        request_timeout=args.request_timeout,
        idle_timeout=args.idle_timeout,
        max_pending=args.max_pending,
        max_subscriptions=args.max_subscriptions,
        ring_size=args.ring_size,
    ) as server:
        host, port = server.server_address[:2]
        print(
            "listening on http://{}:{} (engine={}, mode={}{}; "
            "Ctrl-C stops)".format(
                host,
                port,
                args.engine,
                args.server_mode,
                ", {} views".format(len(program)) if program else "",
            ),
            file=out,
        )
        recovery = server.state.recovery
        if recovery is not None:
            # After the banner: subprocess harnesses parse the first
            # line for the bound port.
            print(
                "recovered version {} from {} (snapshot {}, {} wal "
                "records replayed)".format(
                    recovery.version,
                    args.data_dir,
                    recovery.snapshot_version,
                    recovery.replayed,
                ),
                file=out,
            )
        out.flush()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", file=out)
    return 0


def command_snapshot(args, out) -> int:
    """Write a fresh durability snapshot into ``--data-dir``.

    With existing durable state the directory is *compacted*: the
    state is recovered (snapshot + WAL replay) and re-snapshotted at
    its current version, so the next boot replays nothing.  An empty
    directory is seeded from ``-d data.json`` (plus ``-p program.dl``
    for a registry-backed server).
    """
    from repro.durability.store import DurableStore

    program = load_program(args.program) if args.program else None
    store = DurableStore(args.data_dir)
    try:
        if store.has_state():
            recovered = store.recover(program=program)
            registry = recovered.registry
            db = registry.serving_db if registry is not None else recovered.db
            intern_state = recovered.intern_state
            action = "compacted ({} wal records folded in)".format(
                recovered.replayed
            )
        elif args.data is None:
            raise ReproError(
                "{} holds no durable state; seed it with -d data.json".format(
                    args.data_dir
                )
            )
        else:
            db = load_database(args.data)
            registry = None
            if program is not None:
                registry = ViewRegistry(program, db)
                db = registry.serving_db
            intern_state = None
            action = "seeded"
        try:
            version = store.snapshot(db, registry, intern_state)
        finally:
            if registry is not None:
                registry.close()
    finally:
        store.close()
    print(
        "snapshot {} in {}: version {}".format(action, args.data_dir, version),
        file=out,
    )
    return 0


def command_recover(args, out) -> int:
    """Recover from ``--data-dir`` and report (optionally audit) it.

    A dry run of exactly what ``serve --data-dir`` does on boot:
    loads the latest valid snapshot, replays the WAL tail, and prints
    the version the state came back at.  ``--check`` additionally
    audits a registry-backed state against full re-evaluation.
    """
    from repro.durability.store import DurableStore

    program = load_program(args.program) if args.program else None
    store = DurableStore(args.data_dir)
    try:
        recovered = store.recover(program=program)
    finally:
        store.close()
    print(
        "recovered version {} (snapshot {}, {} wal records replayed, "
        "{} skipped, {} torn tails truncated)".format(
            recovered.version,
            recovered.snapshot_version,
            recovered.replayed,
            recovered.skipped,
            recovered.truncated,
        ),
        file=out,
    )
    registry = recovered.registry
    if registry is not None:
        try:
            stats = registry.stats()
            print(
                "-- {} views ({} tuples) over {} base facts".format(
                    len(registry.order),
                    stats["view_tuples"],
                    stats["base_facts"],
                ),
                file=out,
            )
            if args.check:
                audit = check_consistency(registry)
                if not audit.consistent:
                    print("consistency: FAILED", file=out)
                    for mismatch in audit.mismatches:
                        print("  {}".format(mismatch), file=out)
                    return 1
                print(
                    "consistency: ok (matches full re-evaluation)", file=out
                )
        finally:
            registry.close()
    elif args.check:
        print(
            "consistency: ok (bare database, {} facts)".format(
                recovered.db.fact_count()
            ),
            file=out,
        )
    return 0


def command_trace(args, out) -> int:
    """Evaluate one query with tracing on and print the span tree.

    The same ambient-tracer plumbing the server's ``?trace=1`` uses,
    pointed at a one-shot :class:`~repro.session.QuerySession` — so the
    printed stages (parse → plan → join → merge, plus the shard
    fan-out under ``--engine sharded``) are exactly what a served
    request would record.
    """
    from repro.obs.trace import format_trace, tracing
    from repro.session import QuerySession

    db = load_database(args.data)
    with tracing("query") as tracer:
        with tracer.span("parse"):
            query = parse_query(args.query)
        config = _engine_config(args, args.engine).with_overrides(
            mode="thread"
        )
        with QuerySession(db, config) as session:
            results = session.evaluate_batch([query])[0]
    tree = tracer.tree()
    if args.json:
        json.dump(tree, out, indent=2, sort_keys=True)
        print(file=out)
    else:
        print(format_trace(tree), file=out)
        print("-- {} result tuples".format(len(results)), file=out)
    return 0


def command_sql(args, out) -> int:
    program = _select_views(load_program(args.program), args.view)
    store = SQLiteDatabase()
    for name, query in sorted(program.items()):
        print("-- {}".format(name), file=out)
        print(store.explain(query), file=out)
    store.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-prov",
        description="Provenance evaluation and minimization "
        "(reproduction of 'On Provenance Minimization', PODS 2011)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub, needs_data):
        sub.add_argument("-p", "--program", required=True, help="rule file")
        if needs_data:
            sub.add_argument("-d", "--data", required=True, help="JSON data file")
        sub.add_argument("--view", help="restrict to one view name")

    def add_parallel(sub):
        sub.add_argument(
            "--shards",
            type=int,
            metavar="N",
            help="shard count for --engine sharded (default: 4)",
        )
        sub.add_argument(
            "--workers",
            type=int,
            metavar="N",
            help="worker-pool size for --engine sharded "
            "(default: min(shards, CPU count))",
        )
        sub.add_argument(
            "--broadcast-threshold",
            type=int,
            metavar="N",
            help="replicate relations smaller than N rows to every "
            "shard instead of partitioning them (--engine sharded)",
        )
        sub.add_argument(
            "--no-columnar",
            action="store_true",
            help="use the legacy dict-of-dicts sharded merge path "
            "instead of columnar results",
        )

    sub_eval = subparsers.add_parser("eval", help="evaluate with provenance")
    add_common(sub_eval, needs_data=True)
    sub_eval.add_argument(
        "--engine",
        choices=EVAL_ENGINES,
        default="hashjoin",
        help="evaluation engine (default: hashjoin; memory/sql are "
        "aliases of backtrack/sqlite)",
    )
    add_parallel(sub_eval)
    sub_eval.set_defaults(handler=command_eval)

    sub_batch = subparsers.add_parser(
        "batch",
        help="evaluate a JSON list of queries through one QuerySession",
    )
    sub_batch.add_argument(
        "-q",
        "--queries",
        required=True,
        help="JSON file: a list of query texts (rule syntax)",
    )
    sub_batch.add_argument("-d", "--data", required=True, help="JSON data file")
    sub_batch.add_argument(
        "--engine",
        choices=EVAL_ENGINES,
        default="sharded",
        help="evaluation engine (default: sharded; sharded/hashjoin "
        "batch through a QuerySession)",
    )
    add_parallel(sub_batch)
    sub_batch.set_defaults(handler=command_batch)

    sub_agg = subparsers.add_parser(
        "aggregate",
        help="evaluate aggregate queries to semimodule annotations",
    )
    add_common(sub_agg, needs_data=True)
    sub_agg.add_argument(
        "--engine",
        choices=AGGREGATE_ENGINES,
        default="hashjoin",
        help="evaluation engine (default: hashjoin; memory/sql are "
        "aliases of backtrack/sqlite)",
    )
    add_parallel(sub_agg)
    sub_agg.add_argument(
        "--delete",
        metavar="SYMS",
        help="comma-separated annotations to delete; prints the "
        "specialized aggregates",
    )
    sub_agg.add_argument(
        "--trust",
        metavar="SYMS",
        help="comma-separated trusted annotations; prints the "
        "trusted-only aggregates",
    )
    sub_agg.add_argument(
        "--probabilities",
        metavar="FILE",
        help="JSON {annotation: probability}; prints expected values "
        "(sum/count) and exact distributions (min/max)",
    )
    sub_agg.set_defaults(handler=command_aggregate)

    sub_min = subparsers.add_parser("minimize", help="rewrite to p-minimal form")
    add_common(sub_min, needs_data=False)
    sub_min.add_argument(
        "--algorithm",
        choices=("minprov", "standard"),
        default="minprov",
        help="minimization algorithm (default: minprov)",
    )
    sub_min.add_argument(
        "--trace", action="store_true", help="print the MinProv steps"
    )
    sub_min.set_defaults(handler=command_minimize)

    sub_core = subparsers.add_parser(
        "core", help="direct core provenance of every output tuple"
    )
    add_common(sub_core, needs_data=True)
    sub_core.set_defaults(handler=command_core)

    sub_sql = subparsers.add_parser("sql", help="show compiled SQL")
    add_common(sub_sql, needs_data=False)
    sub_sql.set_defaults(handler=command_sql)

    sub_maintain = subparsers.add_parser(
        "maintain", help="materialize views and apply update batches incrementally"
    )
    sub_maintain.add_argument("-p", "--program", required=True, help="rule file")
    sub_maintain.add_argument("-d", "--data", required=True, help="JSON data file")
    sub_maintain.add_argument(
        "-u", "--updates", required=True, help="JSON updates file (delta batches)"
    )
    sub_maintain.add_argument(
        "--check",
        action="store_true",
        help="audit the maintained state against full re-evaluation",
    )
    sub_maintain.add_argument(
        "--quiet", action="store_true", help="suppress the final view dump"
    )
    sub_maintain.set_defaults(handler=command_maintain)

    sub_serve = subparsers.add_parser(
        "serve",
        help="serve queries, updates and views over JSON HTTP",
    )
    sub_serve.add_argument("-d", "--data", required=True, help="JSON data file")
    sub_serve.add_argument(
        "-p",
        "--program",
        help="optional rule file; given one, the server fronts a "
        "ViewRegistry (incremental /update, /views/<name> reads)",
    )
    sub_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    sub_serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 picks a free one; the chosen port is printed)",
    )
    sub_serve.add_argument(
        "--engine",
        choices=("hashjoin", "sharded"),
        default="hashjoin",
        help="serving engine (default: hashjoin; sharded runs a "
        "thread-mode shard pool)",
    )
    add_parallel(sub_serve)
    sub_serve.add_argument(
        "--server-mode",
        choices=("async", "threaded"),
        default="async",
        help="serving front end: the asyncio event-loop tier (default; "
        "10k+ concurrent connections) or the one-thread-per-connection "
        "fallback",
    )
    sub_serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request read deadline: a client that stalls sending "
        "headers or the promised body is cut loose after this long "
        "(default: 30)",
    )
    sub_serve.add_argument(
        "--idle-timeout",
        type=float,
        metavar="SECONDS",
        help="async tier: how long a keep-alive connection may idle "
        "between requests (default: 60)",
    )
    sub_serve.add_argument(
        "--max-pending",
        type=int,
        metavar="N",
        help="async tier: engine-bound requests admitted concurrently "
        "before 503 + Retry-After load shedding (default: 256)",
    )
    sub_serve.add_argument(
        "--max-subscriptions",
        type=int,
        metavar="N",
        help="changefeed subscriptions admitted before POST /v1/subscribe "
        "answers 429 (default: 1024)",
    )
    sub_serve.add_argument(
        "--ring-size",
        type=int,
        metavar="N",
        help="per-subscription replay ring: events a disconnected "
        "consumer can resume across before a full reset (default: 256)",
    )
    sub_serve.add_argument(
        "--cache-size",
        type=int,
        default=256,
        metavar="N",
        help="LRU bound of the version-keyed result cache (default: 256)",
    )
    sub_serve.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable the metrics registry (GET /metrics answers 404; "
        "instrumentation points become shared no-ops)",
    )
    sub_serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="stdlib logging level; 'info' emits one structured line "
        "per request on the repro.server logger (default: warning)",
    )
    sub_serve.add_argument(
        "--data-dir",
        metavar="DIR",
        help="durability directory (snapshots + write-ahead log); an "
        "existing state is recovered and served instead of -d",
    )
    sub_serve.add_argument(
        "--snapshot-every",
        type=int,
        metavar="N",
        help="rotate the WAL into a fresh snapshot every N accepted "
        "update batches (default: 512)",
    )
    sub_serve.set_defaults(handler=command_serve)

    sub_snapshot = subparsers.add_parser(
        "snapshot",
        help="write (or compact into) a durability snapshot",
    )
    sub_snapshot.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="durability directory to snapshot into",
    )
    sub_snapshot.add_argument(
        "-d", "--data",
        help="JSON data file to seed an empty directory from",
    )
    sub_snapshot.add_argument(
        "-p", "--program",
        help="rule file (required when the state serves a view program)",
    )
    sub_snapshot.set_defaults(handler=command_snapshot)

    sub_recover = subparsers.add_parser(
        "recover",
        help="dry-run boot recovery from a durability directory",
    )
    sub_recover.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="durability directory to recover from",
    )
    sub_recover.add_argument(
        "-p", "--program",
        help="rule file (required when the state serves a view program)",
    )
    sub_recover.add_argument(
        "--check",
        action="store_true",
        help="audit the recovered views against full re-evaluation",
    )
    sub_recover.set_defaults(handler=command_recover)

    sub_trace = subparsers.add_parser(
        "trace",
        help="evaluate one query with tracing on and print the span tree",
    )
    sub_trace.add_argument("query", help="query text (rule syntax)")
    sub_trace.add_argument("-d", "--data", required=True, help="JSON data file")
    sub_trace.add_argument(
        "--engine",
        choices=("hashjoin", "sharded"),
        default="hashjoin",
        help="evaluation engine (default: hashjoin; sharded shows the "
        "shard fan-out stages)",
    )
    add_parallel(sub_trace)
    sub_trace.add_argument(
        "--json",
        action="store_true",
        help="print the trace tree as JSON instead of the indented view",
    )
    sub_trace.set_defaults(handler=command_trace)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Aggregate provenance: semimodule annotations end to end.

A SUM/MIN/COUNT query over suppliers stays *symbolic* — every
aggregated value is a tensor sum in N[X] ⊗ M — so deletion, trust and
probability questions are answered from the cached annotation with no
re-evaluation, and the incremental registry keeps the aggregate fresh
under updates.

Run:  python examples/aggregate_provenance.py
"""

from repro import AnnotatedDatabase, Delta, ViewRegistry, parse_query
from repro.aggregate import (
    aggregate_after_deletion,
    evaluate_aggregate,
    expected_aggregate,
    trusted_aggregate_value,
)
from repro.incremental.maintain import check_consistency
from repro.query.parser import parse_program


def main():
    # Suppliers ship parts at a cost; each fact carries an annotation.
    db = AnnotatedDatabase.from_dict(
        {
            "Supplier": {("acme", "nyc"): "s1", ("bolt", "nyc"): "s2",
                         ("core", "la"): "s3"},
            "Supplies": {("acme", 5): "s4", ("acme", 3): "s5",
                         ("bolt", 2): "s6", ("core", 9): "s7"},
        }
    )
    query = parse_query(
        "spend(city, sum(cost), min(cost), count(*)) :- "
        "Supplier(s, city), Supplies(s, cost)"
    )
    print("Query:", query)

    results = evaluate_aggregate(query, db)
    print("\nAnnotated aggregates (one tensor per contribution):")
    for group in sorted(results):
        print("  spend{} : {}".format(group, results[group]))

    nyc = results[("nyc",)]
    total, cheapest, howmany = nyc.aggregates

    print("\nSUM under deletion (read off the annotation, no re-run):")
    for doomed in ([], ["s1"], ["s6"], ["s1", "s2"]):
        print(
            "  delete {:<12} -> nyc total = {}".format(
                "{" + ", ".join(doomed) + "}",
                aggregate_after_deletion(total, doomed),
            )
        )
    assert aggregate_after_deletion(total, ["s1"]) == 2

    print("\nTrust: totals derived from trusted tuples only:")
    print("  trust {s1,s4,s5} -> nyc total =",
          trusted_aggregate_value(total, ["s1", "s4", "s5"]))
    print("  trust {s2,s6}    -> nyc min   =",
          trusted_aggregate_value(cheapest, ["s2", "s6"]))

    print("\nExpected SUM/COUNT over a probabilistic database:")
    probabilities = {s: 0.9 for s in nyc.support()}
    print("  E[nyc total] = {:.3f}".format(
        expected_aggregate(total, probabilities)))
    print("  E[nyc count] = {:.3f}".format(
        expected_aggregate(howmany, probabilities)))

    print("\nIncremental maintenance of the aggregate view:")
    registry = ViewRegistry(
        parse_program(
            "spend(city, sum(cost), count(*)) :- "
            "Supplier(s, city), Supplies(s, cost)"
        ),
        db,
    )
    report = registry.apply(
        Delta(inserts=[("Supplies", ("bolt", 6))],
              deletes=[("Supplies", ("acme", 5))])
    )
    print("  batch:", report.summary())
    for group, row in sorted(registry.view("spend").items()):
        print("  spend{} -> {}".format(group, row.specialize(lambda s: 1)))
    audit = check_consistency(registry)
    print("  audit vs full re-evaluation:", "ok" if audit else "FAILED")
    assert audit.consistent


if __name__ == "__main__":
    main()

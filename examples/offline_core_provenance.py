"""Off-line core provenance: Section 5 end to end.

Scenario: a production system evaluated whatever plan its optimizer
chose and recorded provenance polynomials.  Later — without rewriting
or re-running the query, and even without the query text — an auditor
computes the core provenance of each answer directly from the recorded
polynomials (Thm. 5.1).

Run:  python examples/offline_core_provenance.py
"""

from repro import (
    AnnotatedDatabase,
    core_polynomial_approx,
    core_provenance,
    evaluate,
    parse_query,
)


def main():
    # Table 6: the database D̂ of the paper's Section 5 examples.
    db = AnnotatedDatabase.from_dict(
        {
            "R": {
                ("a", "a"): "s1",
                ("a", "b"): "s2",
                ("b", "a"): "s3",
                ("b", "c"): "s4",
                ("c", "a"): "s5",
            }
        }
    )

    # The production system ran the triangle query Q̂ (Figure 3)...
    q_hat = parse_query("ans() :- R(x, y), R(y, z), R(z, x)")
    recorded = evaluate(q_hat, db)[()]
    print("Recorded provenance of ans() (Example 5.2):")
    print("   ", recorded)

    # ...the auditor has only the polynomial. Part 1 of Thm. 5.1:
    # a PTIME transform gives the core up to coefficients.
    approx = core_polynomial_approx(recorded)
    print("\nPTIME core (exact up to coefficients, Cor. 5.6):")
    print("   ", approx)

    # With the database and Const(Q) (here: none), part 2 recovers the
    # exact coefficients as automorphism counts (Lemmas 5.7/5.9).
    exact = core_provenance(recorded, db, ())
    print("\nExact core provenance (Example 5.8):")
    print("   ", exact)

    # Cross-check: rewriting the query with MinProv and re-evaluating
    # gives the same polynomial — but required the query.
    from repro import min_prov

    rewritten = evaluate(min_prov(q_hat), db)[()]
    print("\nRewrite-then-evaluate agrees:", exact == rewritten)

    # Size: the core is a compact input for provenance consumers.
    print(
        "\nMonomial occurrences: {} recorded -> {} core".format(
            recorded.monomial_count(), exact.monomial_count()
        )
    )


if __name__ == "__main__":
    main()

"""Provenance capture on a real SQL engine.

Conjunctive queries with disequalities compile to plain SQL self-joins
over tables carrying a ``prov`` column; SQLite executes them and the
library reassembles N[X] polynomials from the result rows — the
instrumentation approach of systems like Perm/GProM, in miniature.

Run:  python examples/sqlite_provenance.py
"""

from repro import AnnotatedDatabase, SQLiteDatabase, evaluate, parse_query


def main():
    # A reachability-flavoured workload over a road network.
    db = AnnotatedDatabase()
    roads = [
        ("athens", "patras"),
        ("patras", "athens"),
        ("athens", "lamia"),
        ("lamia", "volos"),
        ("volos", "athens"),
    ]
    for source, target in roads:
        db.add("Road", (source, target))

    store = SQLiteDatabase.from_annotated(db)

    queries = {
        "two_hop": parse_query(
            "ans(x, z) :- Road(x, y), Road(y, z), x != z"
        ),
        "round_trip": parse_query("ans(x) :- Road(x, y), Road(y, x)"),
        "triangle": parse_query(
            "ans() :- Road(x, y), Road(y, z), Road(z, x), "
            "x != y, y != z, x != z"
        ),
    }

    for name, query in queries.items():
        print("=" * 60)
        print("Query {}: {}".format(name, query))
        print("\nCompiled SQL:")
        print("   ", store.explain(query).replace("\n", "\n    "))
        via_sql = store.evaluate(query)
        in_memory = evaluate(query, db)
        assert via_sql == in_memory, "engines must agree"
        print("\nAnnotated result ({} tuples):".format(len(via_sql)))
        for output in sorted(via_sql):
            print("  ans{} : {}".format(output, via_sql[output]))
        print()

    store.close()


if __name__ == "__main__":
    main()

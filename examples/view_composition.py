"""Composed views and derivation explanations.

Two things the paper's Section 6 motivates:

1. view outputs feed later queries, so "input" annotations are really
   polynomials over base facts — evaluated here with a three-layer
   view program whose provenance is composed back to base annotations;
2. once tags repeat, only the absorptive summaries survive — we show
   the why/why-not explanations that remain available at every layer.

Run:  python examples/view_composition.py
"""

from repro import AnnotatedDatabase, explain_missing, explain_tuple, parse_program
from repro.views.program import evaluate_program


def main():
    # A supply network: Ships(factory, warehouse), Stocks(warehouse, store).
    db = AnnotatedDatabase()
    for factory, warehouse in [("f1", "w1"), ("f1", "w2"), ("f2", "w2")]:
        db.add("Ships", (factory, warehouse))
    for warehouse, store in [("w1", "s1"), ("w2", "s1"), ("w2", "s2")]:
        db.add("Stocks", (warehouse, store))

    program = parse_program(
        """
        # layer 1: which factory can supply which store
        supplies(f, s) :- Ships(f, w), Stocks(w, s)
        # layer 2: stores sharing a supplier
        shared(s, t) :- supplies(f, s), supplies(f, t), s != t
        # layer 3: stores entangled with s1
        entangled(t) :- shared('s1', t)
        """
    )

    evaluation = evaluate_program(program, db)

    print("Layer 1 — supplies, provenance over base facts:")
    for row, polynomial in sorted(evaluation.base_provenance("supplies").items()):
        print("  supplies{} : {}".format(row, polynomial))

    print("\nLayer 3 — entangled, composed through two view layers:")
    for row, polynomial in sorted(evaluation.base_provenance("entangled").items()):
        print("  entangled{} : {}".format(row, polynomial))

    # Why is s2 entangled with s1? Walk the derivations of layer 2.
    print("\nWhy shared('s1', 's2')?")
    for derivation in explain_tuple(
        program["shared"],
        _with_views(db, evaluation, ["supplies"]),
        ("s1", "s2"),
    ):
        print(derivation.describe())

    # Why is s1 NOT entangled with itself? (the disequality)
    print("\nWhy not shared('s1', 's1')?")
    for explanation in explain_missing(
        program["shared"],
        _with_views(db, evaluation, ["supplies"]),
        ("s1", "s1"),
    ):
        print("  " + explanation.describe())


def _with_views(db, evaluation, names):
    """The base database extended with the named materialized views."""
    extended = AnnotatedDatabase()
    for relation, row, annotation in db.all_facts():
        extended.add(relation, row, annotation=annotation)
    for name in names:
        view = evaluation.views[name]
        for row, symbol in view.symbols.items():
            extended.add(name, row, annotation=symbol)
    return extended


if __name__ == "__main__":
    main()

"""A gallery of provenance-minimization behaviours, one per query class.

Walks through Table 1 of the paper with live queries:

* CQ      — standard minimization is p-minimization in-class, but a
            strictly terser UCQ≠ exists (Thms. 3.9 / 3.11);
* cCQ≠    — duplicate removal is overall p-minimization, in PTIME
            (Thm. 3.12);
* CQ≠     — no p-minimal equivalent may exist in-class (Thm. 3.5);
* UCQ≠    — MinProv always finds the p-minimal equivalent, at an
            unavoidable exponential price (Thms. 4.6 / 4.10).

Run:  python examples/minimization_gallery.py
"""

import time

from repro import is_p_minimal, min_prov, min_prov_trace, minimize_query, parse_query
from repro.paperdata import figure2, theorem_4_10_query


def section(title):
    print("\n" + "=" * 64)
    print(title)
    print("=" * 64)


def main():
    section("CQ: Qconj is its own core, yet not overall p-minimal")
    q_conj = parse_query("ans(x) :- R(x, y), R(y, x)")
    print("standard minimal:", minimize_query(q_conj))
    print("p-minimal in CQ :", is_p_minimal(q_conj) and "yes" or "no (only within CQ)")
    print("MinProv output  :")
    for adjunct in min_prov(q_conj).adjuncts:
        print("   ", adjunct)

    section("cCQ≠: duplicate removal is overall p-minimization (PTIME)")
    complete = parse_query("ans(x) :- R(x, y), R(x, y), x != y")
    print("input           :", complete)
    print("minimized       :", minimize_query(complete))
    print("overall p-minimal:", is_p_minimal(minimize_query(complete)))

    section("CQ≠: the pentagon family has NO p-minimal equivalent in CQ≠")
    pentagon = figure2()
    print("QnoPmin:", pentagon.q_no_pmin)
    print("Qalt   :", pentagon.q_alt)
    print(
        "Equivalent, standard-minimal, but provenance-incomparable:\n"
        "on D (Table 4) Qalt is terser; on D' (Table 5) QnoPmin is.\n"
        "MinProv escapes to UCQ≠ with {} adjuncts.".format(
            len(min_prov(pentagon.q_no_pmin).adjuncts)
        )
    )

    section("UCQ≠: MinProv trace on the triangle query (Figure 3)")
    trace = min_prov_trace(parse_query("ans() :- R(x, y), R(y, z), R(z, x)"))
    for label, step in (("QI", trace.step1), ("QII", trace.step2), ("QIII", trace.step3)):
        print("{} ({} adjuncts):".format(label, len(step.adjuncts)))
        for adjunct in step.adjuncts:
            print("   ", adjunct)

    section("Theorem 4.10: the exponential price of p-minimality")
    print("{:>3} {:>12} {:>16} {:>10}".format("n", "input atoms", "output adjuncts", "seconds"))
    for n in range(1, 4):
        query = theorem_4_10_query(n)
        start = time.perf_counter()
        result = min_prov(query)
        elapsed = time.perf_counter() - start
        print(
            "{:>3} {:>12} {:>16} {:>10.3f}".format(
                n, query.size(), len(result.adjuncts), elapsed
            )
        )


if __name__ == "__main__":
    main()

"""Incremental view maintenance: serve changing data from cached provenance.

The provenance polynomial of a view tuple records every derivation, so
base updates can be pushed through the stored polynomials instead of
re-running the queries: deletions filter monomials, insertions add the
delta join's monomials, annotation updates rename symbols.  This demo
maintains a three-layer view stack under a small update stream and
audits every step against full re-evaluation.

Run:  python examples/incremental_maintenance.py
"""

from repro import AnnotatedDatabase, Delta, ViewRegistry, check_consistency, parse_program


def main():
    db = AnnotatedDatabase()
    for factory, warehouse in [("f1", "w1"), ("f1", "w2"), ("f2", "w2")]:
        db.add("Ships", (factory, warehouse))
    for warehouse, store in [("w1", "s1"), ("w2", "s1"), ("w2", "s2")]:
        db.add("Stocks", (warehouse, store))

    program = parse_program(
        """
        supplies(f, s) :- Ships(f, w), Stocks(w, s)
        shared(s, t) :- supplies(f, s), supplies(f, t), s != t
        entangled(t) :- shared('s1', t)
        """
    )

    registry = ViewRegistry(program, db)
    print("Materialized {} views: {}".format(
        len(registry.order), ", ".join(registry.order)))

    stream = [
        ("a new factory comes online",
         Delta(inserts=[("Ships", ("f3", "w1"))])),
        ("warehouse w2 stops stocking s1",
         Delta(deletes=[("Stocks", ("w2", "s1"))])),
        ("the last s2 supply line is cut",
         Delta(deletes=[("Stocks", ("w2", "s2"))])),
        ("\N{HORIZONTAL ELLIPSIS}and restored under a new audit tag",
         Delta(inserts=[("Stocks", ("w2", "s2"), "audit1")])),
    ]
    for label, delta in stream:
        report = registry.apply(delta)
        audit = check_consistency(registry)
        print("\n{}:".format(label))
        print("  maintenance: {}".format(report.summary()))
        print("  audit vs full re-evaluation: {}".format(
            "ok" if audit.consistent else audit.mismatches))

    print("\nFinal provenance over base facts:")
    for name in registry.order:
        for row, polynomial in sorted(
            registry.base_provenance(name).items(), key=repr
        ):
            print("  {:<12} {!r:<16} {}".format(name, row, polynomial))


if __name__ == "__main__":
    main()

"""Serve provenance over HTTP and query it like a client would.

The serving tier (:mod:`repro.server`) fronts a long-lived
:class:`~repro.session.QuerySession` with a stdlib threading HTTP
server and a **version-keyed result cache**: responses are keyed by
``(canonical query text, db version, engine options)``, so an update
invalidates every stale entry by simply bumping the version — no
scanning — while N concurrent identical requests run the engine once
(single-flight deduplication).

This example boots a server in-process, then acts as the client:

* ``POST /query`` twice — the second response is a cache hit, byte
  identical to the first;
* ``POST /update`` — a delta batch in the ``maintain`` file format;
* ``POST /query`` again — the answer reflects the update, served at
  the new version;
* ``GET /stats`` — the cache hit rate and in-flight counters.

Run it:  python examples/serve_and_query.py
"""

import json
import threading
from http.client import HTTPConnection

from repro.db.generators import random_database
from repro.engine.evaluate import evaluate
from repro.query.parser import parse_query
from repro.server.app import canonical_json, encode_results, make_server

QUERY = "reach(x, z) :- Edge(x, y), Edge(y, z)"


def request(host, port, method, path, body=None):
    conn = HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body))
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def main():
    db = random_database({"Edge": 2}, list(range(25)), n_facts=400, seed=11)
    server = make_server(db, engine="hashjoin")
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        status, first = request(host, port, "POST", "/query", {"query": QUERY})
        status, again = request(host, port, "POST", "/query", {"query": QUERY})
        print("Repeated query served from cache, byte-identical:", first == again)

        # The server's response is exactly the shared codec over an
        # in-process evaluation — the differential suite's invariant.
        expected = canonical_json(
            {
                "version": server.state.session.db_version(),
                **encode_results(evaluate(parse_query(QUERY), db), False),
            }
        )
        print("Server round-trip agrees with in-process evaluation:", first == expected)

        status, _ = request(
            host,
            port,
            "POST",
            "/update",
            {"insert": {"Edge": [[0, 1], [1, 0]]}},
        )
        status, fresh = request(host, port, "POST", "/query", {"query": QUERY})
        print(
            "After /update the version moved and the answer changed:",
            fresh != first,
        )

        status, stats = request(host, port, "GET", "/stats")
        cache = json.loads(stats)["cache"]
        print(
            "Cache: {} hits, {} misses, hit rate {:.0%} at db version {}".format(
                cache["hits"],
                cache["misses"],
                cache["hit_rate"],
                json.loads(stats)["db_version"],
            )
        )
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


if __name__ == "__main__":
    main()

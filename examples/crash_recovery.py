"""Kill a durable server mid-flight and recover it bit-for-bit.

The durability tier (:mod:`repro.durability`) gives the server crash
safety: with ``--data-dir``, every accepted ``/update`` batch is
appended to a write-ahead log and fsynced *before* it is applied, and
snapshots rotate the log (``RPSN``/``RPWL`` formats, see
``DESIGN.md``).  This example runs the whole loop the crash-injection
suite automates:

* boot ``repro-prov serve --data-dir`` in a subprocess;
* apply a handful of update batches and record the served answers;
* ``SIGKILL`` the process — no warning, no flush window;
* reboot on the same directory and compare: the recovered server must
  report the exact pre-crash version and serve byte-identical
  responses, without any update being re-submitted.

Run it:  python examples/crash_recovery.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
from http.client import HTTPConnection

import repro

DATA = {
    "R": [
        {"row": ["a", "b"], "annotation": "s1"},
        {"row": ["b", "c"], "annotation": "s2"},
        {"row": ["c", "a"], "annotation": "s3"},
    ],
    "S": [{"row": ["a"], "annotation": "s4"}],
}

PROGRAM = "V(x, z) :- R(x, y), R(y, z)\nW(x) :- V(x, z), S(z)\n"

QUERY = "ans(x) :- W(x)"

UPDATES = [
    {"insert": {"R": [{"row": ["a", "d"], "annotation": "u1"}]}},
    {"insert": {"S": [{"row": ["d"], "annotation": "u2"}]}},
    {"delete": {"R": [["b", "c"]]}},
    {"retag": {"S": [{"row": ["a"], "annotation": "u3"}]}},
    {"insert": {"R": [{"row": ["d", "a"], "annotation": "u4"}]}},
]


def boot(data_file, program_file, data_dir):
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "-d", data_file, "-p", program_file,
            "--port", "0", "--data-dir", data_dir,
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = process.stdout.readline()
    assert "listening on http://" in banner, banner
    host, port = banner.split("http://", 1)[1].split()[0].split(":")
    return process, host, int(port)


def request(host, port, method, path, body=None):
    conn = HTTPConnection(host, port, timeout=30)
    try:
        conn.request(
            method, path, body=None if body is None else json.dumps(body)
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def served_bytes(host, port):
    return {
        "query": request(host, port, "POST", "/query", {"query": QUERY})[1],
        "V": request(host, port, "GET", "/views/V")[1],
        "W": request(host, port, "GET", "/views/W?base=1")[1],
    }


def main():
    workspace = tempfile.mkdtemp(prefix="repro-crash-recovery-")
    data_file = os.path.join(workspace, "data.json")
    program_file = os.path.join(workspace, "program.dl")
    data_dir = os.path.join(workspace, "state")
    with open(data_file, "w") as handle:
        json.dump(DATA, handle)
    with open(program_file, "w") as handle:
        handle.write(PROGRAM)

    process, host, port = boot(data_file, program_file, data_dir)
    try:
        for update in UPDATES:
            status, body = request(host, port, "POST", "/update", update)
            assert status == 200, body
        before = served_bytes(host, port)
        version = json.loads(request(host, port, "GET", "/stats")[1])[
            "db_version"
        ]
        print("Applied %d updates; serving at version %d" % (len(UPDATES), version))
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
        process.stdout.close()
    print("SIGKILLed the server (no flush window)")

    process, host, port = boot(data_file, program_file, data_dir)
    try:
        recovery_line = process.stdout.readline().strip()
        print(recovery_line)
        after = served_bytes(host, port)
        recovered_version = json.loads(
            request(host, port, "GET", "/stats")[1]
        )["db_version"]
        assert recovered_version == version, (recovered_version, version)
        assert "recovered version %d" % version in recovery_line
        print(
            "Recovered responses byte-identical after SIGKILL:",
            after == before,
        )
        assert after == before
    finally:
        process.terminate()
        process.wait(timeout=30)
        process.stdout.close()


if __name__ == "__main__":
    main()

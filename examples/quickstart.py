"""Quickstart: provenance polynomials and core provenance in 60 lines.

Reproduces the paper's running example (Figure 1 / Tables 2-3): the
same query evaluated two equivalent ways yields different provenance,
and MinProv finds the terse one.

Run:  python examples/quickstart.py
"""

from repro import (
    AnnotatedDatabase,
    evaluate,
    is_equivalent,
    min_prov,
    parse_query,
)


def main():
    # Table 2: the relation R with annotations s1..s4.
    db = AnnotatedDatabase.from_dict(
        {
            "R": {
                ("a", "a"): "s1",
                ("a", "b"): "s2",
                ("b", "a"): "s3",
                ("b", "b"): "s4",
            }
        }
    )

    # Qconj of Figure 1: values that reach themselves in two R-steps.
    q_conj = parse_query("ans(x) :- R(x, y), R(y, x)")

    print("Query:", q_conj)
    print("\nProvenance of each output tuple (Example 2.14):")
    for output, polynomial in sorted(evaluate(q_conj, db).items()):
        print("  ans{} : {}".format(output, polynomial))

    # MinProv (Algorithm 1) rewrites Qconj into the p-minimal Qunion.
    minimal = min_prov(q_conj)
    print("\nThe p-minimal equivalent found by MinProv:")
    for adjunct in minimal.adjuncts:
        print("  ", adjunct)
    assert is_equivalent(q_conj, minimal)

    print("\nCore provenance (Table 3 / Example 2.13):")
    for output, polynomial in sorted(evaluate(minimal, db).items()):
        print("  ans{} : {}".format(output, polynomial))

    print(
        "\nNote the difference: the original query uses s1 (and s4) twice"
        "\nin one derivation; every equivalent query must derive the same"
        "\nanswers, but the core derivations use each tuple only once."
    )


if __name__ == "__main__":
    main()

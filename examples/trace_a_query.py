"""Trace one query through the pipeline and read the span tree.

The observability layer (:mod:`repro.obs`) instruments every pipeline
stage through an **ambient tracer**: instrumented code asks
:func:`~repro.obs.trace.current_tracer` for the context's tracer, and
by default gets a shared no-op — tracing costs nothing until a
:func:`~repro.obs.trace.tracing` block installs a live one.  Inside
such a block, one evaluation produces a tree of timed spans — plan
(cache hit/miss), one ``join.step`` per relation with row/binding
counts, the merge — that exports as JSON or pretty-prints.

This example traces the same join twice on each engine:

* **hashjoin** — the first run shows ``plan cache=miss`` and the
  per-step row counts; the second shows ``cache=hit``;
* **sharded** (2 shards, thread mode) — the tree grows the fan-out
  stages: ``shard.refresh``, the ``join`` fan-out with its shard and
  task counts, and the cross-shard ``shard.merge``.

A tracer can also feed a :class:`~repro.obs.metrics.MetricsRegistry`:
every closed span folds its duration into the
``repro_stage_seconds{stage=...}`` histogram — the same aggregates the
server's ``GET /metrics`` endpoint exposes.

Run it:  python examples/trace_a_query.py
"""

from repro.db.generators import random_database
from repro.obs import MetricsRegistry, format_trace, tracing, tree_stage_names
from repro.query.parser import parse_query
from repro.session import QuerySession

QUERY = parse_query("ans(x, z) :- R(x, y), S(y, z)")


def main():
    db = random_database({"R": 2, "S": 2}, list(range(25)), n_facts=400, seed=7)
    registry = MetricsRegistry()

    print("== hashjoin: cold then warm ==")
    with tracing("query", registry=registry) as tracer:
        with QuerySession(db, engine="hashjoin") as session:
            session.evaluate(QUERY)
            session.refresh()  # drop the memo; the plan cache survives
            session.evaluate(QUERY)
    print(format_trace(tracer.tree()))

    print()
    print("== sharded: 2 shards, thread mode ==")
    with tracing("query", registry=registry) as tracer:
        with QuerySession(
            db, engine="sharded", shards=2, workers=2, mode="thread",
            broadcast_threshold=0,
        ) as session:
            session.evaluate(QUERY)
    sharded_tree = tracer.tree()
    print(format_trace(sharded_tree))

    print()
    stages = set(tree_stage_names(sharded_tree))
    print(
        "Sharded trace covers the fan-out stages:",
        {"shard.refresh", "join", "shard.merge"} <= stages,
    )

    print()
    print("== the same spans, aggregated into a histogram ==")
    histogram = registry.get("repro_stage_seconds")
    for (stage,), data in sorted(histogram.snapshot().items()):
        print(
            "  {:<14} {} observation(s), {:.3f} ms total".format(
                stage, data["count"], data["sum"] * 1e3
            )
        )


if __name__ == "__main__":
    main()

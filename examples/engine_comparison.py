"""Racing the three evaluation engines on one join workload.

All three engines — set-at-a-time hash join (the default), tuple-at-a-
time backtracking, and SQL compilation onto SQLite — compute the same
Def. 2.12 provenance polynomials.  This script verifies the agreement
on a ~600-tuple join, times each engine, and shows the hash-join plan
cache at work across a re-evaluation (the situation every incremental
refresh loop is in).

Run with ``PYTHONPATH=src python examples/engine_comparison.py``.
"""

import time

from repro.db.generators import random_database
from repro.db.sqlite_backend import SQLiteDatabase
from repro.engine.evaluate import evaluate, evaluate_backtracking
from repro.engine.hashjoin import default_plan_cache, evaluate_hashjoin
from repro.engine.plan_cache import PlanCache
from repro.query.parser import parse_query


def timed(label, fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    elapsed = (time.perf_counter() - start) * 1e3
    print("  {:<24} {:>8.2f} ms   {} output tuples".format(
        label, elapsed, len(result)))
    return result


def main():
    db = random_database({"R": 2, "S": 2}, list(range(30)), 600, seed=17)
    query = parse_query("ans(x, z) :- R(x, y), S(y, z), x != z")
    print("Workload: {} over a {}-tuple database\n".format(
        query, db.fact_count()))

    print("One evaluation per engine:")
    hashed = timed("hash join (default)", evaluate, query, db)
    backtracked = timed("backtracking", evaluate_backtracking, query, db)
    store = SQLiteDatabase.from_annotated(db)
    via_sql = timed("sqlite", store.evaluate, query)
    store.close()

    agree = hashed == backtracked == via_sql
    print("\nEngines agree polynomial-for-polynomial: {}".format(agree))
    assert agree

    # The plan cache across a refresh loop: same query, mildly changed
    # database -> the cached join order is reused (cardinalities stay
    # inside their power-of-two bands).
    cache = PlanCache()
    evaluate_hashjoin(query, db, cache=cache)
    db.add("R", ("fresh", 0))
    evaluate_hashjoin(query, db, cache=cache)
    stats = cache.stats()
    print("Plan cache after re-evaluation: {hits} hit(s), "
          "{misses} miss(es)".format(**stats))
    assert stats["hits"] >= 1

    sample = sorted(hashed)[0]
    print("\nSample provenance  {!r}: {}".format(sample, hashed[sample]))
    print("Shared default cache: {}".format(default_plan_cache()))


if __name__ == "__main__":
    main()

"""Shard-parallel, batched evaluation with a QuerySession.

A production serving loop rarely evaluates one query against one
database: it answers *batches* against a slowly changing instance.
This example builds a ~3k-tuple database, opens a
:class:`~repro.session.QuerySession` (4 hash-partitioned shards, a
process-pool of workers fed pickled shard payloads), and pushes a
batch of overlapping queries through it:

* duplicate and overlapping queries are grouped by cached plan — each
  distinct conjunctive adjunct runs its shards exactly once;
* every polynomial is identical to the serial hash-join engine's
  (and hence to the paper's Def. 2.12 semantics);
* after a database update, the session re-partitions through the
  change log instead of re-hashing the world, keeping the pool warm.

Run it:  python examples/sharded_batch.py
"""

from repro import QuerySession, evaluate, parse_query
from repro.db.generators import random_database


def main():
    db = random_database(
        {"Ships": 2, "Stocks": 2}, list(range(60)), n_facts=3_000, seed=7
    )
    queries = [
        parse_query("supplies(f, s) :- Ships(f, w), Stocks(w, s)"),
        parse_query("froms(f) :- Ships(f, w)"),
        # The same join again: the session reuses its shard runs.
        parse_query("supplies(f, s) :- Ships(f, w), Stocks(w, s)"),
        parse_query("pairs(s, t) :- Stocks(w, s), Stocks(w, t), s != t"),
        parse_query("stocked(w, count(*)) :- Stocks(w, s)"),  # aggregate
    ]

    with QuerySession(db, engine="sharded", shards=4, workers=2) as session:
        results = session.evaluate_batch(queries)
        stats = session.stats()
        print(
            "Batch of {} queries over {} facts: {} distinct adjuncts "
            "evaluated, {} plans compiled".format(
                len(queries),
                db.fact_count(),
                stats["memoized_adjuncts"],
                stats["plan_cache"]["misses"],
            )
        )
        print(
            "Sharding: {partitioned} partitioned relations, "
            "{owned_rows} owned rows across {shards} shards".format(
                **stats["sharding"]
            )
        )

        agree = all(
            results[index] == evaluate(query, db)
            for index, query in enumerate(queries)
            if index != 4  # the aggregate has its own evaluator
        )
        print("Sharded batch agrees with the hash-join engine:", agree)

        sample = sorted(results[0])[0]
        print("supplies{} <- {}".format(sample, results[0][sample]))
        group = sorted(results[4])[0]
        print("stocked{} -> {}".format(group, results[4][group]))

        # A delta arrives: the session refreshes its partitioning from
        # the change log on the next evaluation — pool and plans stay warm.
        db.add("Ships", ("new-fleet", 0))
        refreshed = session.evaluate(queries[1])
        print(
            "After one insert: froms() grew to {} fleets "
            "(session refreshed {} time(s))".format(
                len(refreshed), session.stats()["refreshes"]
            )
        )


if __name__ == "__main__":
    main()

"""Provenance consumers: trust assessment and view maintenance.

The paper motivates core provenance as a *compact input* to downstream
data-management tools.  This example builds a curated co-authorship
view, then answers trust and deletion questions twice — once from the
full provenance, once from the core — and shows the absorptive analyses
agree while the input shrinks.

Run:  python examples/trust_and_maintenance.py
"""

from repro import AnnotatedDatabase, core_provenance_table, evaluate, parse_query
from repro.apps.deletion import propagate_deletion
from repro.apps.probability import tuple_probability
from repro.apps.trust import is_trusted, minimal_trust_sets


def main():
    # A small curated bibliography: Wrote(author, paper).
    db = AnnotatedDatabase()
    facts = [
        ("ada", "p1"), ("bob", "p1"),
        ("ada", "p2"), ("cyn", "p2"),
        ("bob", "p3"), ("cyn", "p3"),
        ("ada", "p4"),
    ]
    symbols = {}
    for author, paper in facts:
        symbols[(author, paper)] = db.add("Wrote", (author, paper))

    # Co-author pairs (the classic self-join).
    query = parse_query(
        "ans(x, y) :- Wrote(x, p), Wrote(y, p), x != y"
    )
    view = evaluate(query, db)
    core = core_provenance_table(view, db, query.constants())

    print("Co-authorship view with full vs core provenance:")
    for output in sorted(view):
        print(
            "  {!s:<16} full: {!s:<24} core: {}".format(
                output, view[output], core[output]
            )
        )

    # Trust assessment: trust only the facts of papers p1 and p2.
    trusted = [symbols[f] for f in facts if f[1] in ("p1", "p2")]
    print("\nTrusting only p1/p2 facts:")
    for output in sorted(view):
        from_full = is_trusted(view[output], trusted)
        from_core = is_trusted(core[output], trusted)
        assert from_full == from_core  # absorptive: core suffices
        print("  {!s:<16} trusted: {}".format(output, from_full))

    print("\nMinimal trust sets for ('ada', 'bob'):")
    for witness in minimal_trust_sets(core[("ada", "bob")]):
        print("   ", sorted(witness))

    # View maintenance: a paper is retracted.
    retracted = [symbols[("ada", "p2")], symbols[("cyn", "p2")]]
    maintained = propagate_deletion(core, retracted)
    print("\nAfter retracting p2, surviving pairs:")
    for output in sorted(maintained):
        print("  {!s:<16} {}".format(output, maintained[output]))

    # Probabilistic curation: each fact is correct with probability 0.9.
    probabilities = {symbol: 0.9 for symbol in symbols.values()}
    print("\nP[pair correct] from core provenance:")
    for output in sorted(core):
        p = tuple_probability(core[output], probabilities)
        print("  {!s:<16} {:.3f}".format(output, p))


if __name__ == "__main__":
    main()

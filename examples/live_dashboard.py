"""A live dashboard over a continuous query, via :mod:`repro.client`.

Continuous queries turn a maintained view into a changefeed:
``POST /v1/subscribe`` registers a standing query and answers with an
atomic ``snapshot`` + ``cursor``; ``GET /v1/changefeed/<id>`` then
pushes one delta event per database version that touched the view
(SSE on the async tier, long-poll on the threaded tier — the client
auto-detects which one it is talking to).

This example is the canonical consumer loop:

* boot a server fronting the maintained join ``V(x, z)``;
* ``Client.subscribe`` — decode the snapshot into a local table;
* apply updates from a background "writer" thread while the dashboard
  folds each pushed delta into its table with
  :meth:`Subscription.apply` and re-renders;
* after the last event, assert the locally replayed table equals the
  server's ``GET /v1/views/V`` byte-for-byte through the shared codec
  — the changefeed's replay-fidelity contract.

Run it:  python examples/live_dashboard.py
"""

import json
import threading
import time

from repro.client import Client
from repro.db.instance import AnnotatedDatabase
from repro.query.parser import parse_program
from repro.server.app import canonical_json, encode_results, make_server

PROGRAM = "V(x, z) :- R(x, y), S(y, z)"
UPDATES = [
    {"R": [["ams", "pods"]], "S": [["pods", 2011]]},
    {"S": [["pods", 2012]]},
    {"R": [["dam", "pods"]]},
]


def render(sub, event):
    print(
        "  [cursor {}] {} event -> {} rows: {}".format(
            event["cursor"],
            event["event"],
            len(sub.state),
            sorted(sub.state)[:4],
        )
    )


def main():
    db = AnnotatedDatabase.from_rows(
        {"R": [("a", "b")], "S": [("b", 1)]}
    )
    server = make_server(
        db, program=parse_program(PROGRAM), server_mode="async"
    )
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = Client(host, port)
    try:
        sub = client.subscribe(view="V")
        print(
            "Subscribed {} at cursor {}: snapshot has {} rows".format(
                sub.id, sub.cursor, len(sub.state)
            )
        )

        def writer():
            for update in UPDATES:
                time.sleep(0.2)
                client.update(insert=update)

        threading.Thread(target=writer, daemon=True).start()

        seen = 0
        for event in sub.events():
            sub.apply(event)  # fold the delta into the local table
            render(sub, event)
            seen += 1
            if seen == len(UPDATES):
                break

        # The replay-fidelity contract: snapshot + pushed deltas is the
        # served view, byte for byte through the shared codec.
        served = json.loads(server.state.read_view("V"))
        replayed = canonical_json(encode_results(sub.state, False))
        direct = canonical_json(
            {"kind": served["kind"], "results": served["results"]}
        )
        print(
            "Dashboard replay matches the served view byte-for-byte:",
            replayed == direct,
        )
        sub.close()
    finally:
        client.close()
        server.shutdown()
        server.close()
        thread.join(timeout=10)


if __name__ == "__main__":
    main()

"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package (needed for PEP 660 builds) is unavailable.
All metadata lives in pyproject.toml."""
from setuptools import setup

setup()

"""Packaging for the `repro` provenance-minimization reproduction.

Pure standard library at runtime; `pip install -e .` exposes the
`repro-prov` CLI and removes the need for PYTHONPATH gymnastics.
"""

import os

from setuptools import find_packages, setup


def _readme() -> str:
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "README.md")
    with open(path, encoding="utf-8") as handle:
        return handle.read()


setup(
    name="repro-provenance-minimization",
    version="1.5.0",
    description=(
        "Reproduction of 'On Provenance Minimization' (PODS 2011): "
        "N[X] provenance, CQ/UCQ minimization, incremental view "
        "maintenance, and an HTTP serving tier"
    ),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    extras_require={
        # One pinned-enough set for CI and contributors alike:
        # `pip install -e .[dev]`.
        "dev": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "pytest-cov>=4",
            "ruff>=0.4",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-prov=repro.cli:main",
        ]
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Database",
        "Topic :: Scientific/Engineering",
    ],
)

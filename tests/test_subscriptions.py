"""Continuous queries: the subscription hub and both changefeed tiers.

The load-bearing claims:

* **encode-once fan-out** — one maintenance report becomes one
  :class:`ChangefeedEvent` per touched view, shared (the same object)
  by every subscriber's ring;
* **cursor contract** — resuming with a cursor the ring still covers
  replays exactly the missed events; resuming from below the replay
  watermark yields one ``reset`` carrying the full table;
* **replay fidelity** — folding the pushed deltas into the decoded
  snapshot reproduces ``read_view()`` byte-for-byte through the
  encoders, at every version, on seeded random databases, on both
  serving tiers;
* **liveness** — a subscriber that stops draining its SSE stream is
  evicted (counted), never buffered unboundedly.
"""

import json
import socket
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.db.generators import random_database
from repro.db.instance import AnnotatedDatabase
from repro.incremental.delta import Delta
from repro.incremental.registry import ViewRegistry
from repro.io import apply_changefeed_event, changefeed_event_from_dict
from repro.query.parser import parse_program
from repro.server.app import canonical_json, encode_results
from repro.server.subscriptions import (
    ChangefeedEvent,
    SubscriptionError,
    SubscriptionHub,
    SubscriptionLimitError,
    UnknownSubscriptionError,
)

from test_server import Client, serve, small_db

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

PROGRAM = "V(x, z) :- R(x, y), S(y, z)"


def registry_db():
    return AnnotatedDatabase.from_rows(
        {"R": [("a", "b"), ("b", "c"), ("c", "a")], "S": [("b", 1), ("c", 2)]}
    )


def served_registry(**kwargs):
    return serve(registry_db(), program=parse_program(PROGRAM), **kwargs)


def read_events(client, sub_id, cursor, n, mode, timeout=15):
    """Collect ``n`` changefeed events past ``cursor``, tier-aware.

    The threaded tier long-polls (each call is its own connection, so
    every iteration is also a disconnect + resume); the async tier
    streams SSE frames off one held-open response.  Returns
    ``(events, cursor)`` with the raw wire payload dicts.
    """
    events = []
    if mode == "threaded":
        deadline = time.time() + timeout
        while len(events) < n and time.time() < deadline:
            status, poll = client.json(
                "GET",
                "/v1/changefeed/{}?cursor={}&wait=5".format(sub_id, cursor),
            )
            assert status == 200
            events.extend(poll["events"])
            cursor = poll["cursor"]
        return events, cursor
    conn = HTTPConnection(client.host, client.port, timeout=timeout)
    try:
        conn.request(
            "GET", "/v1/changefeed/{}?cursor={}".format(sub_id, cursor)
        )
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "text/event-stream"
        buffer = b""
        while len(events) < n:
            chunk = response.read1(65536)
            if not chunk:
                break
            buffer += chunk
            while b"\n\n" in buffer:
                frame, buffer = buffer.split(b"\n\n", 1)
                for line in frame.split(b"\n"):
                    if line.startswith(b"data:"):
                        events.append(json.loads(line[5:]))
    finally:
        conn.close()
    return events, events[-1]["cursor"] if events else cursor


# ----------------------------------------------------------------------
# The hub itself (driven by a real registry, no HTTP)
# ----------------------------------------------------------------------
class TestSubscriptionHub:
    def make(self, **kwargs):
        db = registry_db()
        registry = ViewRegistry(parse_program(PROGRAM), db)
        hub = SubscriptionHub(**kwargs)
        registry.add_observer(hub.publish)
        return registry, hub

    def test_limit_is_enforced(self):
        _registry, hub = self.make(max_subscriptions=2)
        hub.subscribe("V", False, 0)
        hub.subscribe("V", False, 0)
        with pytest.raises(SubscriptionLimitError):
            hub.subscribe("V", False, 0)

    def test_unsubscribe_frees_a_slot(self):
        _registry, hub = self.make(max_subscriptions=1)
        sub = hub.subscribe("V", False, 0)
        assert hub.unsubscribe(sub.id) is True
        assert hub.unsubscribe(sub.id) is False  # idempotent
        hub.subscribe("V", False, 0)  # the slot is free again

    def test_get_unknown_raises_typed(self):
        _registry, hub = self.make()
        with pytest.raises(UnknownSubscriptionError):
            hub.get("sub-00000042")

    def test_publish_encodes_once_and_shares(self):
        registry, hub = self.make()
        cursor = registry.db_version()
        first = hub.subscribe("V", False, cursor)
        second = hub.subscribe("V", False, cursor)
        registry.apply(Delta(inserts=[("R", ("a", "z")), ("S", ("z", 9))]))
        assert len(first.ring) == len(second.ring) == 1
        assert first.ring[0] is second.ring[0]  # shared, not re-encoded
        event = first.ring[0]
        assert event.kind == "delta"
        assert event.cursor == registry.db_version()
        assert event.payload["view"] == "V"

    def test_untouched_views_publish_nothing(self):
        registry, hub = self.make()
        sub = hub.subscribe("V", False, registry.db_version())
        # Touches R but joins against no S tuple: V does not change.
        registry.apply(Delta(inserts=[("R", ("q", "q"))]))
        assert len(sub.ring) == 0

    def test_events_after_and_ring_overflow(self):
        registry, hub = self.make(ring_size=3)
        created = registry.db_version()
        sub = hub.subscribe("V", False, created)
        for i in range(5):
            registry.apply(
                Delta(inserts=[("R", ("a", "k%d" % i)), ("S", ("k%d" % i, i))])
            )
        events, needs_reset = hub.events_after(sub, sub.last_cursor)
        assert (events, needs_reset) == ([], False)
        # The ring kept the newest 3; the creation cursor fell off it.
        assert len(sub.ring) == 3
        _events, needs_reset = hub.events_after(sub, created)
        assert needs_reset
        # A cursor at the watermark replays the whole ring, in order.
        events, needs_reset = hub.events_after(sub, sub.base_cursor)
        assert not needs_reset
        cursors = [event.cursor for event in events]
        assert cursors == sorted(cursors) and len(events) == 3

    def test_wait_events_wakes_on_publish(self):
        registry, hub = self.make()
        sub = hub.subscribe("V", False, registry.db_version())
        results = []

        def wait():
            results.append(hub.wait_events(sub, sub.created_cursor, 10.0))

        waiter = threading.Thread(target=wait)
        waiter.start()
        time.sleep(0.05)
        registry.apply(Delta(inserts=[("R", ("a", "z")), ("S", ("z", 9))]))
        waiter.join(timeout=10)
        events, needs_reset = results[0]
        assert not needs_reset and len(events) == 1

    def test_wakers_fire_on_publish_and_unsubscribe(self):
        registry, hub = self.make()
        sub = hub.subscribe("V", False, registry.db_version())
        fired = []
        hub.add_waker(sub, lambda: fired.append("wake"))
        registry.apply(Delta(inserts=[("R", ("a", "z")), ("S", ("z", 9))]))
        assert fired == ["wake"]
        hub.unsubscribe(sub.id)
        assert fired == ["wake", "wake"]

    def test_sse_frame_shape(self):
        event = ChangefeedEvent(7, "V", "delta", {"cursor": 7, "view": "V"})
        frame = event.sse()
        assert frame.startswith(b"event: delta\nid: 7\ndata: ")
        assert frame.endswith(b"\n\n")
        data = frame.split(b"data: ", 1)[1].strip()
        assert json.loads(data) == {"cursor": 7, "view": "V"}

    def test_close_refuses_new_subscriptions(self):
        _registry, hub = self.make()
        hub.close()
        assert hub.closed
        with pytest.raises(SubscriptionError):
            hub.subscribe("V", False, 0)


# ----------------------------------------------------------------------
# The HTTP surface, on both tiers
# ----------------------------------------------------------------------
class TestChangefeedProtocol:
    @pytest.fixture(scope="class", params=["threaded", "async"])
    def served(self, request):
        with served_registry(server_mode=request.param) as pair:
            yield pair + (request.param,)

    def test_subscribe_requires_registry(self):
        with serve(small_db()) as (_server, client):
            status, payload = client.json(
                "POST", "/v1/subscribe", {"view": "V"}
            )
            assert status == 400
            assert "maintained views" in payload["error"]["message"]

    def test_subscribe_unknown_view_is_404(self, served):
        _server, client, _mode = served
        status, payload = client.json(
            "POST", "/v1/subscribe", {"view": "nope"}
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown_view"

    def test_subscribe_wants_exactly_one_of_view_or_query(self, served):
        _server, client, _mode = served
        for body in ({}, {"view": "V", "query": PROGRAM}):
            status, payload = client.json("POST", "/v1/subscribe", body)
            assert status == 400
            assert "exactly one" in payload["error"]["message"]

    def test_lifecycle_snapshot_delta_unsubscribe(self, served):
        server, client, mode = served
        status, sub = client.json("POST", "/v1/subscribe", {"view": "V"})
        assert status == 200
        assert sub["view"] == "V" and not sub["aggregate"]
        assert sub["snapshot"]["kind"] == "polynomial"
        try:
            status, update = client.json(
                "POST",
                "/v1/update",
                {"insert": {"R": [["a", "z"]], "S": [["z", 9]]}},
            )
            assert status == 200
            events, cursor = read_events(
                client, sub["subscription"], sub["cursor"], 1, mode
            )
            assert [e["event"] for e in events] == ["delta"]
            assert cursor == update["version"]
            stats = server.state.stats()["subscriptions"]
            assert stats["active"] >= 1
        finally:
            status, gone = client.json(
                "DELETE", "/v1/changefeed/" + sub["subscription"]
            )
            assert status == 200 and gone["unsubscribed"]
        status, payload = client.json(
            "GET", "/v1/changefeed/" + sub["subscription"]
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown_subscription"

    def test_query_subscription_registers_a_view(self, served):
        _server, client, _mode = served
        status, sub = client.json(
            "POST",
            "/v1/subscribe",
            {"query": "W(x) :- R(x, y)", "name": "W_probe"},
        )
        assert status == 200 and sub["view"] == "W_probe"
        try:
            status, view = client.json("GET", "/v1/views/W_probe")
            assert status == 200
            assert view["results"]
        finally:
            client.request(
                "DELETE", "/v1/changefeed/" + sub["subscription"]
            )

    def test_changefeed_rejects_post(self, served):
        _server, client, _mode = served
        status, payload = client.json("POST", "/v1/changefeed/sub-x", {})
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_legacy_paths_do_not_exist(self, served):
        """The subscription surface is v1-only by design."""
        _server, client, _mode = served
        status, payload = client.json("POST", "/subscribe", {"view": "V"})
        assert status == 404
        assert payload["error"] == "unknown path /subscribe"


class TestResumeAndReset:
    @pytest.fixture(scope="class", params=["threaded", "async"])
    def mode(self, request):
        return request.param

    def test_resume_from_cursor_replays_only_missed(self, mode):
        with served_registry(server_mode=mode) as (_server, client):
            _status, sub = client.json(
                "POST", "/v1/subscribe", {"view": "V"}
            )
            cursor = sub["cursor"]
            seen = []
            for i in range(3):
                client.json(
                    "POST",
                    "/v1/update",
                    {"insert": {"R": [["a", "k%d" % i]], "S": [["k%d" % i, i]]}},
                )
                # Each read opens its own connection: every iteration
                # is a disconnect + resume from the last seen cursor.
                events, cursor = read_events(
                    client, sub["subscription"], cursor, 1, mode
                )
                assert len(events) == 1, events
                seen.append(cursor)
            assert seen == sorted(seen)
            # Resuming from the start replays all three, in order.
            events, _cursor = read_events(
                client, sub["subscription"], sub["cursor"], 3, mode
            )
            assert [e["cursor"] for e in events] == seen

    def test_ring_overflow_forces_reset(self, mode):
        with served_registry(server_mode=mode, ring_size=2) as pair:
            server, client = pair
            _status, sub = client.json(
                "POST", "/v1/subscribe", {"view": "V"}
            )
            for i in range(5):
                client.json(
                    "POST",
                    "/v1/update",
                    {"insert": {"R": [["a", "r%d" % i]], "S": [["r%d" % i, i]]}},
                )
            events, _cursor = read_events(
                client, sub["subscription"], sub["cursor"], 1, mode
            )
            assert events[0]["event"] == "reset"
            reset = events[0]
            # The reset carries the full table: decoding it equals the
            # served view, byte for byte through the encoders.
            state = {}
            apply_changefeed_event(
                state, changefeed_event_from_dict(reset)
            )
            direct = server.state.read_view("V")
            assert canonical_json(
                encode_results(state, False)
            ) == canonical_json(
                {
                    key: value
                    for key, value in json.loads(direct).items()
                    if key in ("kind", "results")
                }
            )
            assert server.state.stats()["subscriptions"]["resets"] >= 1

    def test_differential_replay_reconstructs_every_version(self, mode):
        """The acceptance check: concatenated deltas == read_view()."""
        for seed in (3, 11):
            db = random_database(
                {"R": 2, "S": 2}, list(range(6)), n_facts=25, seed=seed
            )
            program = parse_program(PROGRAM)
            with serve(db, program=program, server_mode=mode) as pair:
                server, client = pair
                _status, sub = client.json(
                    "POST", "/v1/subscribe", {"view": "V"}
                )
                state = {}
                apply_changefeed_event(
                    state,
                    changefeed_event_from_dict(
                        {
                            "cursor": sub["cursor"],
                            "view": "V",
                            "aggregate": False,
                            "event": "reset",
                            "state": sub["snapshot"]["results"],
                        }
                    ),
                )
                cursor = sub["cursor"]
                for step in range(4):
                    token = "seed%d_%d" % (seed, step)
                    client.json(
                        "POST",
                        "/v1/update",
                        {
                            "insert": {
                                "R": [[step, token]],
                                "S": [[token, step]],
                            }
                        },
                    )
                    events, cursor = read_events(
                        client, sub["subscription"], cursor, 1, mode
                    )
                    for event in events:
                        apply_changefeed_event(
                            state, changefeed_event_from_dict(event)
                        )
                    served_view = json.loads(server.state.read_view("V"))
                    assert canonical_json(
                        encode_results(state, False)
                    ) == canonical_json(
                        {
                            "kind": served_view["kind"],
                            "results": served_view["results"],
                        }
                    ), (mode, seed, step)
                    assert cursor == served_view["version"]


class TestFanOut:
    def test_every_subscriber_sees_every_event_once_in_order(self):
        """A compact version of the smoke harness's 200-subscriber run."""
        subscriber_count, updates = 16, 4
        with served_registry(server_mode="async") as (_server, client):
            subs = []
            for _ in range(subscriber_count):
                _status, sub = client.json(
                    "POST", "/v1/subscribe", {"view": "V"}
                )
                subs.append(sub)
            received = {sub["subscription"]: [] for sub in subs}
            stop = threading.Event()

            def follow(sub):
                conn = HTTPConnection(
                    client.host, client.port, timeout=30
                )
                try:
                    conn.request(
                        "GET",
                        "/v1/changefeed/{}?cursor={}".format(
                            sub["subscription"], sub["cursor"]
                        ),
                    )
                    response = conn.getresponse()
                    assert response.status == 200
                    buffer = b""
                    bucket = received[sub["subscription"]]
                    while len(bucket) < updates and not stop.is_set():
                        chunk = response.read1(65536)
                        if not chunk:
                            break
                        buffer += chunk
                        while b"\n\n" in buffer:
                            frame, buffer = buffer.split(b"\n\n", 1)
                            for line in frame.split(b"\n"):
                                if line.startswith(b"data:"):
                                    bucket.append(json.loads(line[5:]))
                finally:
                    conn.close()

            threads = [
                threading.Thread(target=follow, args=(sub,), daemon=True)
                for sub in subs
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            versions = []
            for i in range(updates):
                _status, update = client.json(
                    "POST",
                    "/v1/update",
                    {"insert": {"R": [["a", "f%d" % i]], "S": [["f%d" % i, i]]}},
                )
                versions.append(update["version"])
            deadline = time.time() + 20
            while time.time() < deadline and any(
                len(bucket) < updates for bucket in received.values()
            ):
                time.sleep(0.05)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            for sub_id, bucket in received.items():
                cursors = [event["cursor"] for event in bucket]
                assert cursors == versions, sub_id  # exactly once, in order


class TestSlowConsumerEviction:
    def test_stalled_sse_reader_is_evicted(self):
        with served_registry(
            server_mode="async", request_timeout=0.5
        ) as (server, client):
            _status, sub = client.json(
                "POST", "/v1/subscribe", {"view": "V"}
            )
            # A raw socket with a tiny receive buffer that never reads:
            # the server's drain() must stall and cut the consumer loose.
            # (The buffer must shrink BEFORE connect so the advertised
            # TCP window is small from the handshake on.)
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
                sock.settimeout(30)
                sock.connect((client.host, client.port))
                sock.sendall(
                    "GET /v1/changefeed/{}?cursor={} HTTP/1.1\r\n"
                    "Host: x\r\n\r\n".format(
                        sub["subscription"], sub["cursor"]
                    ).encode("ascii")
                )
                time.sleep(0.2)
                # Big deltas (many rows joining to many rows) overflow
                # the write window while the reader sits on its hands.
                rows = [["bulk", "x%04d" % i] for i in range(1500)]
                for round_no in range(12):
                    client.json(
                        "POST",
                        "/v1/update",
                        {
                            "insert": {
                                "R": [["a", "b%d" % round_no]],
                                "S": [["b%d" % round_no, row[1]] for row in rows],
                            }
                        },
                    )
                    stats = server.state.stats()["subscriptions"]
                    if stats["evictions"] >= 1:
                        break
                    time.sleep(0.3)
                deadline = time.time() + 10
                while time.time() < deadline:
                    stats = server.state.stats()["subscriptions"]
                    if stats["evictions"] >= 1:
                        break
                    time.sleep(0.1)
                assert stats["evictions"] >= 1
                # Eviction also dropped the subscription itself.
                status, _payload = client.json(
                    "GET", "/v1/changefeed/" + sub["subscription"]
                )
                assert status == 404
            finally:
                sock.close()

"""Unit tests for possible completions and canonical rewritings."""

import pytest

from repro.db.generators import all_databases, random_cq, random_database
from repro.engine.evaluate import evaluate
from repro.hom.containment import is_equivalent
from repro.hom.homomorphism import is_isomorphic
from repro.minimize.canonical import canonical_rewriting, possible_completions
from repro.paperdata.figures import example_4_2_query, figure3_expected_steps
from repro.query.parser import parse_query
from repro.query.terms import Constant
from repro.utils.partitions import bell_number


class TestPossibleCompletions:
    def test_example_4_2(self):
        """Can(Q, {a, b}) has exactly the five adjuncts of the paper."""
        query = example_4_2_query()
        completions = possible_completions(query, [Constant("a"), Constant("b")])
        expected = [
            "ans(v1, 'a') :- R(v1, 'a'), v1 != 'a', v1 != 'b'",
            "ans(v1, 'b') :- R(v1, 'b'), v1 != 'a', v1 != 'b'",
            "ans(v1, v2) :- R(v1, v2), v1 != v2, v1 != 'a', v1 != 'b', "
            "v2 != 'a', v2 != 'b'",
            "ans('b', 'a') :- R('b', 'a')",
            "ans('b', v1) :- R('b', v1), v1 != 'a', v1 != 'b'",
        ]
        assert len(completions) == len(expected)
        for text in expected:
            target = parse_query(text)
            assert any(is_isomorphic(c, target) for c in completions), text

    def test_figure3_step1(self, qhat):
        """The five completions of Q̂ match Figure 3 literally."""
        completions = possible_completions(qhat)
        expected = figure3_expected_steps()["QI"].adjuncts
        assert len(completions) == 5
        for target in expected:
            assert any(is_isomorphic(c, target) for c in completions)

    def test_count_is_bell_number_without_constraints(self):
        query = parse_query("ans() :- R(x, y), S(z), T(w)")
        assert len(possible_completions(query)) == bell_number(4)

    def test_diseqs_prune_cases(self, fig1):
        # Q1 has x != y: only the all-distinct case survives for 2 vars.
        assert len(possible_completions(fig1.q1)) == 1

    def test_all_completions_complete(self):
        query = parse_query("ans(x) :- R(x, y), S(y, 'c')")
        constants = [Constant("c"), Constant("d")]
        for completion in possible_completions(query, constants):
            assert completion.is_complete(constants)

    def test_distinct_cases_may_be_isomorphic_queries(self, qhat):
        """Q̂2, Q̂3 and Q̂4 come from the three "one pair of variables
        merged" cases; by the triangle's rotational symmetry they are
        pairwise isomorphic as standalone queries, yet each contributes
        its own assignments to the canonical provenance (Example 5.2
        lists one monomial per case)."""
        completions = possible_completions(qhat)
        isomorphic_pairs = [
            (a, b)
            for i, a in enumerate(completions)
            for b in completions[i + 1:]
            if is_isomorphic(a, b)
        ]
        assert len(isomorphic_pairs) == 3

    def test_no_variables_single_completion(self):
        query = parse_query("ans() :- R('a', 'b')")
        completions = possible_completions(query)
        assert len(completions) == 1
        assert completions[0] == query


class TestCanonicalRewritingSemantics:
    def test_theorem_4_3_preserves_results(self, qhat):
        """Q ≡ Can(Q) — checked symbolically and on databases."""
        rewriting = canonical_rewriting(qhat)
        assert is_equivalent(qhat, rewriting)

    @pytest.mark.parametrize("seed", range(8))
    def test_theorem_4_4_preserves_provenance(self, seed):
        """Q ≡_P Can(Q): identical polynomials on random databases."""
        query = random_cq(
            seed=seed, n_atoms=2, n_variables=3,
            diseq_probability=0.3 if seed % 2 else 0.0,
        )
        rewriting = canonical_rewriting(query)
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 5, seed=seed)
        assert evaluate(query, db) == evaluate(rewriting, db)

    def test_theorem_4_4_with_constants_exhaustive(self):
        query = parse_query("ans(x) :- R(x, y), y != 'a'")
        rewriting = canonical_rewriting(query)
        for db in all_databases({"R": 2}, ["a", "b"], max_facts=2):
            assert evaluate(query, db) == evaluate(rewriting, db)

    def test_lemma_4_5_disjoint_assignments(self, qhat, db_table6):
        """Each assignment satisfies exactly one canonical adjunct: the
        canonical polynomial's occurrence count equals the original's."""
        from repro.engine.evaluate import provenance_of_boolean

        original = provenance_of_boolean(qhat, db_table6)
        canonical = provenance_of_boolean(canonical_rewriting(qhat), db_table6)
        assert original.monomial_count() == canonical.monomial_count()

    def test_union_rewriting_covers_all_adjuncts(self, fig1):
        rewriting = canonical_rewriting(fig1.q_union)
        assert len(rewriting.adjuncts) == 2  # one case each (Q1 fixed, Q2 single var)

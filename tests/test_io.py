"""Round-trip tests for the JSON serialization module."""

import pytest

from repro.db.generators import random_database
from repro.engine.evaluate import evaluate
from repro.errors import ReproError
from repro.io import (
    database_from_dict,
    database_to_dict,
    dump_session,
    load_session,
    polynomial_from_list,
    polynomial_to_list,
    query_from_text,
    query_to_text,
    results_from_list,
    results_to_list,
)
from repro.paperdata import figure1, table2_database
from repro.semiring.polynomial import Polynomial


class TestDatabaseRoundTrip:
    def test_paper_database(self):
        db = table2_database()
        copy = database_from_dict(database_to_dict(db))
        assert sorted(copy.all_facts()) == sorted(db.all_facts())

    def test_random_database(self):
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 6, seed=4)
        copy = database_from_dict(database_to_dict(db))
        assert sorted(copy.all_facts()) == sorted(db.all_facts())

    def test_missing_key_rejected(self):
        with pytest.raises(ReproError):
            database_from_dict({})


class TestPolynomialRoundTrip:
    @pytest.mark.parametrize(
        "text",
        ["0", "1", "s1", "2*s1^3*s2 + s3 + 4*s4*s5", "s1 + s1^2 + s1^3"],
    )
    def test_round_trip(self, text):
        p = Polynomial.parse(text)
        assert polynomial_from_list(polynomial_to_list(p)) == p


class TestQueryRoundTrip:
    def test_cq(self, fig1):
        assert query_from_text(query_to_text(fig1.q_conj)) == fig1.q_conj

    def test_union(self, fig1):
        assert query_from_text(query_to_text(fig1.q_union)) == fig1.q_union


class TestResultsAndSessions:
    def test_results_round_trip(self):
        fig = figure1()
        db = table2_database()
        results = evaluate(fig.q_union, db)
        assert results_from_list(results_to_list(results)) == results

    def test_session_round_trip(self, tmp_path):
        fig = figure1()
        db = table2_database()
        results = {"q_union": evaluate(fig.q_union, db)}
        path = str(tmp_path / "session.json")
        dump_session(
            path, db, {"q_union": fig.q_union, "q_conj": fig.q_conj}, results
        )
        loaded_db, loaded_queries, loaded_results = load_session(path)
        assert sorted(loaded_db.all_facts()) == sorted(db.all_facts())
        assert loaded_queries["q_conj"] == fig.q_conj
        assert loaded_results["q_union"] == results["q_union"]

    def test_session_without_results(self, tmp_path):
        db = table2_database()
        path = str(tmp_path / "bare.json")
        dump_session(path, db, {})
        _, queries, results = load_session(path)
        assert queries == {} and results == {}

    def test_offline_minimization_of_loaded_session(self, tmp_path):
        """The Sec. 5 workflow across process boundaries: record now,
        minimize later from the file alone."""
        from repro.direct.pipeline import core_provenance_table
        from repro.minimize.minprov import min_prov

        fig = figure1()
        db = table2_database()
        path = str(tmp_path / "recorded.json")
        dump_session(
            path, db, {"q": fig.q_conj}, {"q": evaluate(fig.q_conj, db)}
        )
        loaded_db, loaded_queries, loaded_results = load_session(path)
        core = core_provenance_table(loaded_results["q"], loaded_db)
        rewritten = evaluate(min_prov(loaded_queries["q"]), loaded_db)
        assert core == rewritten

"""Round-trip tests for the JSON serialization module."""

import pytest

from repro.aggregate.evaluate import evaluate_aggregate
from repro.db.generators import random_database
from repro.engine.evaluate import evaluate
from repro.errors import ReproError
from repro.incremental.delta import Delta
from repro.io import (
    aggregate_results_from_list,
    aggregate_results_to_list,
    database_from_dict,
    database_to_dict,
    delta_from_dict,
    delta_to_dict,
    deltas_from_payload,
    dump_session,
    load_session,
    polynomial_from_list,
    polynomial_to_list,
    query_from_text,
    query_to_text,
    results_from_list,
    results_to_list,
    semimodule_from_dict,
    semimodule_to_dict,
)
from repro.paperdata import figure1, table2_database
from repro.query.parser import parse_query
from repro.semiring.polynomial import Polynomial


class TestDatabaseRoundTrip:
    def test_paper_database(self):
        db = table2_database()
        copy = database_from_dict(database_to_dict(db))
        assert sorted(copy.all_facts()) == sorted(db.all_facts())

    def test_random_database(self):
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 6, seed=4)
        copy = database_from_dict(database_to_dict(db))
        assert sorted(copy.all_facts()) == sorted(db.all_facts())

    def test_missing_key_rejected(self):
        with pytest.raises(ReproError):
            database_from_dict({})


class TestPolynomialRoundTrip:
    @pytest.mark.parametrize(
        "text",
        ["0", "1", "s1", "2*s1^3*s2 + s3 + 4*s4*s5", "s1 + s1^2 + s1^3"],
    )
    def test_round_trip(self, text):
        p = Polynomial.parse(text)
        assert polynomial_from_list(polynomial_to_list(p)) == p


class TestQueryRoundTrip:
    def test_cq(self, fig1):
        assert query_from_text(query_to_text(fig1.q_conj)) == fig1.q_conj

    def test_union(self, fig1):
        assert query_from_text(query_to_text(fig1.q_union)) == fig1.q_union


class TestResultsAndSessions:
    def test_results_round_trip(self):
        fig = figure1()
        db = table2_database()
        results = evaluate(fig.q_union, db)
        assert results_from_list(results_to_list(results)) == results

    def test_session_round_trip(self, tmp_path):
        fig = figure1()
        db = table2_database()
        results = {"q_union": evaluate(fig.q_union, db)}
        path = str(tmp_path / "session.json")
        dump_session(
            path, db, {"q_union": fig.q_union, "q_conj": fig.q_conj}, results
        )
        loaded_db, loaded_queries, loaded_results = load_session(path)
        assert sorted(loaded_db.all_facts()) == sorted(db.all_facts())
        assert loaded_queries["q_conj"] == fig.q_conj
        assert loaded_results["q_union"] == results["q_union"]

    def test_session_without_results(self, tmp_path):
        db = table2_database()
        path = str(tmp_path / "bare.json")
        dump_session(path, db, {})
        _, queries, results = load_session(path)
        assert queries == {} and results == {}

    def test_aggregate_results_round_trip(self):
        db = random_database({"R": 2, "S": 2}, list(range(6)), n_facts=24, seed=3)
        for text in (
            "agg(x, count(*)) :- R(x, y)",
            "agg(sum(z), min(z), max(z)) :- R(x, y), S(y, z)",
        ):
            results = evaluate_aggregate(parse_query(text), db)
            payload = aggregate_results_to_list(results)
            assert aggregate_results_from_list(payload) == results

    def test_semimodule_round_trip_merges_duplicate_values(self):
        db = random_database({"R": 2}, list(range(4)), n_facts=8, seed=1)
        results = evaluate_aggregate(
            parse_query("agg(count(*)) :- R(x, y)"), db
        )
        element = results[()].aggregates[0]
        payload = semimodule_to_dict(element)
        # Duplicated tensors of one value must fold back through +.
        payload["tensors"] = payload["tensors"] + payload["tensors"]
        doubled = semimodule_from_dict(payload)
        assert doubled == element + element

    def test_offline_minimization_of_loaded_session(self, tmp_path):
        """The Sec. 5 workflow across process boundaries: record now,
        minimize later from the file alone."""
        from repro.direct.pipeline import core_provenance_table
        from repro.minimize.minprov import min_prov

        fig = figure1()
        db = table2_database()
        path = str(tmp_path / "recorded.json")
        dump_session(
            path, db, {"q": fig.q_conj}, {"q": evaluate(fig.q_conj, db)}
        )
        loaded_db, loaded_queries, loaded_results = load_session(path)
        core = core_provenance_table(loaded_results["q"], loaded_db)
        rewritten = evaluate(min_prov(loaded_queries["q"]), loaded_db)
        assert core == rewritten


class TestDeltaCodecs:
    """The `maintain` updates format, shared with the server's /update."""

    PAYLOAD = {
        "insert": {
            "R": [["a", "b"], {"row": ["c", "d"], "annotation": "s9"}]
        },
        "delete": {"R": [["b", "a"]]},
        "retag": {"S": [{"row": ["x"], "annotation": "t1"}]},
    }

    def test_delta_from_dict(self):
        delta = delta_from_dict(self.PAYLOAD)
        assert ("R", ("a", "b"), None) in delta.inserts
        assert ("R", ("c", "d"), "s9") in delta.inserts
        assert delta.deletes == (("R", ("b", "a")),)
        assert delta.retags == (("S", ("x",), "t1"),)

    def test_round_trip_through_dict(self):
        delta = delta_from_dict(self.PAYLOAD)
        assert deltas_from_payload(delta_to_dict(delta)) == [delta]

    def test_single_object_counts_as_one_batch(self):
        assert len(deltas_from_payload(self.PAYLOAD)) == 1
        assert len(deltas_from_payload([self.PAYLOAD, self.PAYLOAD])) == 2

    def test_empty_delta_round_trips(self):
        assert deltas_from_payload(delta_to_dict(Delta())) == [Delta()]

    @pytest.mark.parametrize(
        "bad",
        [
            42,
            "nope",
            {"upsert": {}},
            {"insert": {"R": [{"annotation": "s1"}]}},
            {"insert": {"R": ["ab"]}},
            {"retag": {"R": [["a", "b"]]}},
            {"retag": {"R": [{"row": ["a", "b"]}]}},
        ],
    )
    def test_malformed_payloads_rejected(self, bad):
        with pytest.raises(ReproError):
            deltas_from_payload(bad)


class TestDatabaseErrorPaths:
    @pytest.mark.parametrize(
        "bad",
        [
            42,
            {"facts": {}},
            {"relations": ["R"]},
            {"relations": {"R": {"a": 1}}},
            {"relations": {"R": [["a", "b"]]}},
            {"relations": {"R": [{"row": ["a"]}]}},
            {"relations": {"R": [{"annotation": "s1"}]}},
            {"relations": {"R": [{"row": "ab", "annotation": "s1"}]}},
        ],
    )
    def test_malformed_database_rejected(self, bad):
        with pytest.raises(ReproError):
            database_from_dict(bad)

    def test_error_message_names_the_relation(self):
        with pytest.raises(ReproError, match="'R'"):
            database_from_dict({"relations": {"R": [{"row": ["a"]}]}})


class TestPolynomialErrorPaths:
    @pytest.mark.parametrize(
        "bad",
        [
            {"monomial": {}, "coefficient": 1},
            "s1*s2",
            [{"coefficient": 1}],
            [{"monomial": {"s1": 1}}],
            [{"monomial": ["s1"], "coefficient": 1}],
            [{"monomial": {"s1": "two"}, "coefficient": 1}],
            [{"monomial": {"s1": 1}, "coefficient": "many"}],
            [["s1", 1]],
        ],
    )
    def test_malformed_polynomial_rejected(self, bad):
        with pytest.raises(ReproError):
            polynomial_from_list(bad)

    def test_non_integer_exponent_message(self):
        with pytest.raises(ReproError, match="non-integer"):
            polynomial_from_list(
                [{"monomial": {"s1": "two"}, "coefficient": 1}]
            )


class TestResultErrorPaths:
    @pytest.mark.parametrize(
        "bad",
        [
            {"tuple": [1], "provenance": []},
            [{"provenance": []}],
            [{"tuple": [1]}],
            [{"tuple": "ab", "provenance": []}],
            [{"tuple": [1], "provenance": [{"coefficient": 1}]}],
        ],
    )
    def test_malformed_results_rejected(self, bad):
        with pytest.raises(ReproError):
            results_from_list(bad)


class TestAggregateErrorPaths:
    @pytest.mark.parametrize(
        "bad",
        [
            {"group": []},
            [{"provenance": [], "aggregates": []}],
            [{"group": [1], "aggregates": []}],
            [{"group": [1], "provenance": []}],
            [{"group": [1], "provenance": [], "aggregates": {}}],
        ],
    )
    def test_malformed_aggregate_results_rejected(self, bad):
        with pytest.raises(ReproError):
            aggregate_results_from_list(bad)

    @pytest.mark.parametrize(
        "bad",
        [
            ["count", []],
            {"tensors": []},
            {"monoid": "count"},
            {"monoid": "count", "tensors": {}},
            {"monoid": "count", "tensors": [{"value": 1}]},
            {"monoid": "count", "tensors": [{"annotation": []}]},
            {"monoid": "no-such-monoid", "tensors": []},
        ],
    )
    def test_malformed_semimodule_rejected(self, bad):
        with pytest.raises(ReproError):
            semimodule_from_dict(bad)


class TestSessionErrorPaths:
    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_session(str(path))

    def test_truncated_session_file(self, tmp_path):
        fig = figure1()
        path = tmp_path / "session.json"
        dump_session(str(path), table2_database(), {"q": fig.q_conj})
        data = path.read_text(encoding="utf-8")
        path.write_text(data[: len(data) // 2], encoding="utf-8")
        with pytest.raises(ReproError):
            load_session(str(path))

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {"queries": {}},
            {"database": {"relations": {}}},
            {"database": {"relations": {}}, "queries": ["q"]},
            {"database": {"relations": []}, "queries": {}},
        ],
    )
    def test_structurally_wrong_session_rejected(self, tmp_path, payload):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ReproError):
            load_session(str(path))

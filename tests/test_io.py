"""Round-trip tests for the JSON serialization module."""

import pytest

from repro.aggregate.evaluate import evaluate_aggregate
from repro.db.generators import random_database
from repro.engine.evaluate import evaluate
from repro.errors import ReproError
from repro.incremental.delta import Delta
from repro.io import (
    aggregate_results_from_list,
    aggregate_results_to_list,
    database_from_dict,
    database_to_dict,
    delta_from_dict,
    delta_to_dict,
    deltas_from_payload,
    dump_session,
    load_session,
    polynomial_from_list,
    polynomial_to_list,
    query_from_text,
    query_to_text,
    results_from_list,
    results_to_list,
    semimodule_from_dict,
    semimodule_to_dict,
)
from repro.paperdata import figure1, table2_database
from repro.query.parser import parse_query
from repro.semiring.polynomial import Polynomial


class TestDatabaseRoundTrip:
    def test_paper_database(self):
        db = table2_database()
        copy = database_from_dict(database_to_dict(db))
        assert sorted(copy.all_facts()) == sorted(db.all_facts())

    def test_random_database(self):
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 6, seed=4)
        copy = database_from_dict(database_to_dict(db))
        assert sorted(copy.all_facts()) == sorted(db.all_facts())

    def test_missing_key_rejected(self):
        with pytest.raises(ReproError):
            database_from_dict({})


class TestPolynomialRoundTrip:
    @pytest.mark.parametrize(
        "text",
        ["0", "1", "s1", "2*s1^3*s2 + s3 + 4*s4*s5", "s1 + s1^2 + s1^3"],
    )
    def test_round_trip(self, text):
        p = Polynomial.parse(text)
        assert polynomial_from_list(polynomial_to_list(p)) == p


class TestQueryRoundTrip:
    def test_cq(self, fig1):
        assert query_from_text(query_to_text(fig1.q_conj)) == fig1.q_conj

    def test_union(self, fig1):
        assert query_from_text(query_to_text(fig1.q_union)) == fig1.q_union


class TestResultsAndSessions:
    def test_results_round_trip(self):
        fig = figure1()
        db = table2_database()
        results = evaluate(fig.q_union, db)
        assert results_from_list(results_to_list(results)) == results

    def test_session_round_trip(self, tmp_path):
        fig = figure1()
        db = table2_database()
        results = {"q_union": evaluate(fig.q_union, db)}
        path = str(tmp_path / "session.json")
        dump_session(
            path, db, {"q_union": fig.q_union, "q_conj": fig.q_conj}, results
        )
        loaded_db, loaded_queries, loaded_results = load_session(path)
        assert sorted(loaded_db.all_facts()) == sorted(db.all_facts())
        assert loaded_queries["q_conj"] == fig.q_conj
        assert loaded_results["q_union"] == results["q_union"]

    def test_session_without_results(self, tmp_path):
        db = table2_database()
        path = str(tmp_path / "bare.json")
        dump_session(path, db, {})
        _, queries, results = load_session(path)
        assert queries == {} and results == {}

    def test_aggregate_results_round_trip(self):
        db = random_database({"R": 2, "S": 2}, list(range(6)), n_facts=24, seed=3)
        for text in (
            "agg(x, count(*)) :- R(x, y)",
            "agg(sum(z), min(z), max(z)) :- R(x, y), S(y, z)",
        ):
            results = evaluate_aggregate(parse_query(text), db)
            payload = aggregate_results_to_list(results)
            assert aggregate_results_from_list(payload) == results

    def test_semimodule_round_trip_merges_duplicate_values(self):
        db = random_database({"R": 2}, list(range(4)), n_facts=8, seed=1)
        results = evaluate_aggregate(
            parse_query("agg(count(*)) :- R(x, y)"), db
        )
        element = results[()].aggregates[0]
        payload = semimodule_to_dict(element)
        # Duplicated tensors of one value must fold back through +.
        payload["tensors"] = payload["tensors"] + payload["tensors"]
        doubled = semimodule_from_dict(payload)
        assert doubled == element + element

    def test_offline_minimization_of_loaded_session(self, tmp_path):
        """The Sec. 5 workflow across process boundaries: record now,
        minimize later from the file alone."""
        from repro.direct.pipeline import core_provenance_table
        from repro.minimize.minprov import min_prov

        fig = figure1()
        db = table2_database()
        path = str(tmp_path / "recorded.json")
        dump_session(
            path, db, {"q": fig.q_conj}, {"q": evaluate(fig.q_conj, db)}
        )
        loaded_db, loaded_queries, loaded_results = load_session(path)
        core = core_provenance_table(loaded_results["q"], loaded_db)
        rewritten = evaluate(min_prov(loaded_queries["q"]), loaded_db)
        assert core == rewritten


class TestDeltaCodecs:
    """The `maintain` updates format, shared with the server's /update."""

    PAYLOAD = {
        "insert": {
            "R": [["a", "b"], {"row": ["c", "d"], "annotation": "s9"}]
        },
        "delete": {"R": [["b", "a"]]},
        "retag": {"S": [{"row": ["x"], "annotation": "t1"}]},
    }

    def test_delta_from_dict(self):
        delta = delta_from_dict(self.PAYLOAD)
        assert ("R", ("a", "b"), None) in delta.inserts
        assert ("R", ("c", "d"), "s9") in delta.inserts
        assert delta.deletes == (("R", ("b", "a")),)
        assert delta.retags == (("S", ("x",), "t1"),)

    def test_round_trip_through_dict(self):
        delta = delta_from_dict(self.PAYLOAD)
        assert deltas_from_payload(delta_to_dict(delta)) == [delta]

    def test_single_object_counts_as_one_batch(self):
        assert len(deltas_from_payload(self.PAYLOAD)) == 1
        assert len(deltas_from_payload([self.PAYLOAD, self.PAYLOAD])) == 2

    def test_empty_delta_round_trips(self):
        assert deltas_from_payload(delta_to_dict(Delta())) == [Delta()]

    @pytest.mark.parametrize(
        "bad",
        [
            42,
            "nope",
            {"upsert": {}},
            {"insert": {"R": [{"annotation": "s1"}]}},
            {"insert": {"R": ["ab"]}},
            {"retag": {"R": [["a", "b"]]}},
            {"retag": {"R": [{"row": ["a", "b"]}]}},
        ],
    )
    def test_malformed_payloads_rejected(self, bad):
        with pytest.raises(ReproError):
            deltas_from_payload(bad)

"""Tests for PosBool(X) and the text-table reporting module."""

import pytest

from repro.db.instance import AnnotatedDatabase
from repro.direct.core_polynomial import core_monomials
from repro.engine.evaluate import evaluate
from repro.paperdata import figure1, table2_database
from repro.report import (
    comparison_table,
    database_report,
    relation_table,
    result_table,
)
from repro.semiring.polynomial import Polynomial
from repro.semiring.posbool import PosBoolSemiring, posbool_of


class TestPosBool:
    def test_absorption(self):
        s = PosBoolSemiring()
        x, y = s.variable("x"), s.variable("y")
        assert s.add(x, s.mul(x, y)) == x

    def test_idempotence(self):
        s = PosBoolSemiring()
        x = s.variable("x")
        assert s.add(x, x) == x
        assert s.mul(x, x) == x

    def test_units(self):
        s = PosBoolSemiring()
        x = s.variable("x")
        assert s.add(x, s.zero) == x
        assert s.mul(x, s.one) == x
        assert s.mul(x, s.zero) == s.zero
        # one absorbs everything added to it (empty witness is minimal):
        assert s.add(x, s.one) == s.one

    def test_distributivity_spotcheck(self):
        s = PosBoolSemiring()
        x, y, z = s.variable("x"), s.variable("y"), s.variable("z")
        assert s.mul(x, s.add(y, z)) == s.add(s.mul(x, y), s.mul(x, z))

    def test_posbool_of_matches_core_supports(self):
        """PosBool projection == supports of the core monomials."""
        p = Polynomial.parse("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5 + s2*s4")
        expected = {frozenset(m.symbols) for m in core_monomials(p)}
        assert posbool_of(p) == frozenset(expected)

    def test_posbool_of_query_result(self):
        fig = figure1()
        db = table2_database()
        conj = evaluate(fig.q_conj, db)
        union = evaluate(fig.q_union, db)
        # The two equivalent queries have the SAME PosBool provenance —
        # PosBool cannot see the difference the core order measures.
        for output in conj:
            assert posbool_of(conj[output]) == posbool_of(union[output])

    def test_posbool_of_zero(self):
        assert posbool_of(Polynomial.zero()) == frozenset()


class TestReport:
    def test_relation_table_matches_table2_shape(self):
        db = table2_database()
        text = relation_table(db, "R", ("A", "B"))
        lines = text.splitlines()
        assert lines[0].split() == ["A", "B", "Provenance"]
        assert len(lines) == 2 + 4  # header, rule, four tuples
        assert any("s3" in line for line in lines)

    def test_relation_table_markdown(self):
        db = table2_database()
        text = relation_table(db, "R", markdown=True)
        assert text.startswith("| c0")
        assert "|---" in text.replace(" ", "")

    def test_relation_table_bad_attribute_count(self):
        db = table2_database()
        with pytest.raises(ValueError):
            relation_table(db, "R", ("only-one",))

    def test_result_table(self):
        fig = figure1()
        db = table2_database()
        text = result_table(evaluate(fig.q_union, db), ("A",))
        assert "s1 + s2*s3" in text
        assert text.splitlines()[0].split() == ["A", "Provenance"]

    def test_result_table_boolean_query(self):
        results = {(): Polynomial.parse("s1")}
        text = result_table(results)
        assert "Provenance" in text
        assert "s1" in text

    def test_comparison_table(self):
        text = comparison_table(
            [("P((a))", "s2*s3 + s1", "s1 + s2*s3")], markdown=True
        )
        assert "paper" in text and "measured" in text

    def test_database_report_lists_all_relations(self):
        db = AnnotatedDatabase.from_rows({"R": [("a",)], "S": [("b", "c")]})
        text = database_report(db)
        assert "Relation R" in text and "Relation S" in text

"""Tests for the symbolic <=_P prover (canonical cases + Thm. 3.3)."""

import pytest

from repro.db.generators import random_cq
from repro.hom.containment import is_equivalent
from repro.minimize.minprov import min_prov
from repro.order.query_order import bounded_le_p, prove_le_p
from repro.paperdata import figure1, figure3_qhat
from repro.query.parser import parse_query


class TestPaperClaims:
    def test_theorem_3_11_qunion_below_qconj(self):
        fig = figure1()
        assert prove_le_p(fig.q_union, fig.q_conj)
        assert not prove_le_p(fig.q_conj, fig.q_union)

    def test_reflexive_on_paper_queries(self):
        fig = figure1()
        for query in (fig.q_union, fig.q_conj, fig.q1, fig.q2):
            assert prove_le_p(query, query)

    def test_example_3_4(self):
        q = parse_query("ans() :- R(x), R(y)")
        q_prime = parse_query("ans() :- R(x)")
        assert prove_le_p(q_prime, q)
        assert not prove_le_p(q, q_prime)

    def test_minprov_below_qhat(self):
        q_hat = figure3_qhat()
        assert prove_le_p(min_prov(q_hat), q_hat)
        assert not prove_le_p(q_hat, min_prov(q_hat))

    def test_theorem_4_4_canonical_equivalence_both_ways(self):
        from repro.minimize.canonical import canonical_rewriting

        q_hat = figure3_qhat()
        rewriting = canonical_rewriting(q_hat)
        assert prove_le_p(q_hat, rewriting)
        assert prove_le_p(rewriting, q_hat)


class TestProposition48:
    """MinProv(Q) <=_P Q' for every equivalent Q' — the prover should
    certify the paper's central minimality claim on random inputs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_minprov_dominated_by_input(self, seed):
        query = random_cq(
            seed=seed, n_atoms=2, n_variables=2,
            diseq_probability=0.3 if seed % 2 else 0.0,
        )
        minimal = min_prov(query)
        assert is_equivalent(query, minimal)
        assert prove_le_p(minimal, query)

    def test_minprov_dominated_by_handmade_equivalents(self):
        variants = [
            "ans(x) :- R(x, y), R(y, x)",
            "ans(x) :- R(x, y), R(y, x), R(x, z), R(z, x)",
        ]
        minimal = min_prov(parse_query(variants[0]))
        for text in variants:
            assert prove_le_p(minimal, parse_query(text))


class TestAgainstBoundedSearch:
    """The prover must be sound: whatever it proves, no small database
    refutes."""

    @pytest.mark.parametrize(
        "text1,text2",
        [
            ("ans(x) :- R(x, x)", "ans(x) :- R(x, x), R(x, x)"),
            ("ans(x) :- R(x, y), x != y", "ans(x) :- R(x, y), x != y"),
            ("ans() :- R(x)", "ans() :- R(x), R(y)"),
        ],
    )
    def test_proofs_survive_refutation_search(self, text1, text2):
        q1, q2 = parse_query(text1), parse_query(text2)
        if prove_le_p(q1, q2):
            verdict = bounded_le_p(q1, q2, domain=("a", "b"), max_facts=3)
            assert verdict.holds, "prover claimed an order a database refutes"

    def test_negative_answers_match_counterexamples(self):
        fig = figure1()
        assert not prove_le_p(fig.q_conj, fig.q_union)
        verdict = bounded_le_p(fig.q_conj, fig.q_union, domain=("a", "b"), max_facts=3)
        assert not verdict.holds

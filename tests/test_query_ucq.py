"""Unit tests for union queries (Def. 2.4)."""

import pytest

from repro.errors import QueryConstructionError
from repro.query.build import atom, cq, ucq
from repro.query.parser import parse_query
from repro.query.ucq import UnionQuery, adjuncts_of, as_union


class TestConstruction:
    def test_from_parser(self):
        query = parse_query("ans(x) :- R(x)\nans(x) :- S(x)")
        assert isinstance(query, UnionQuery)
        assert len(query.adjuncts) == 2

    def test_rejects_mixed_arity(self):
        q1 = cq(["x"], [atom("R", "x")])
        q2 = cq(["x", "y"], [atom("R", "x", "y")])
        with pytest.raises(QueryConstructionError):
            UnionQuery([q1, q2])

    def test_rejects_mixed_head_relation(self):
        q1 = cq(["x"], [atom("R", "x")], head_relation="ans")
        q2 = cq(["x"], [atom("R", "x")], head_relation="out")
        with pytest.raises(QueryConstructionError):
            UnionQuery([q1, q2])

    def test_rejects_empty(self):
        with pytest.raises(QueryConstructionError):
            UnionQuery([])

    def test_ucq_builder_flattens(self):
        q1 = cq(["x"], [atom("R", "x")])
        q2 = cq(["x"], [atom("S", "x")])
        union = ucq(ucq(q1), q2)
        assert len(union.adjuncts) == 2


class TestAccessors:
    def test_variables_union(self, fig1):
        assert {v.name for v in fig1.q_union.variables()} == {"x", "y"}

    def test_relations(self, fig1):
        assert fig1.q_union.relations() == {"R"}

    def test_size_sums_adjuncts(self, fig1):
        assert fig1.q_union.size() == 3

    def test_is_complete(self, fig1):
        assert fig1.q_union.is_complete()  # Qunion is in cUCQ≠ (Ex. 2.5)

    def test_union_method(self, fig1):
        combined = fig1.q_union.union(fig1.q_conj)
        assert len(combined.adjuncts) == 3


class TestCoercion:
    def test_as_union_of_cq(self):
        query = parse_query("ans(x) :- R(x)")
        union = as_union(query)
        assert isinstance(union, UnionQuery)
        assert union.adjuncts == (query,)

    def test_as_union_idempotent(self, fig1):
        assert as_union(fig1.q_union) is fig1.q_union

    def test_adjuncts_of(self, fig1):
        assert adjuncts_of(fig1.q_conj) == (fig1.q_conj,)
        assert adjuncts_of(fig1.q_union) == fig1.q_union.adjuncts

    def test_as_union_rejects_other(self):
        with pytest.raises(TypeError):
            as_union("ans(x) :- R(x)")

    def test_equality_as_sets(self):
        q1 = parse_query("ans(x) :- R(x)\nans(x) :- S(x)")
        q2 = parse_query("ans(x) :- S(x)\nans(x) :- R(x)")
        assert q1 == q2
        assert hash(q1) == hash(q2)

"""Unit tests for fresh-name generation."""

from repro.utils.naming import NameSupply, fresh_names, subscript_stream


class TestNameSupply:
    def test_sequential_names(self):
        supply = NameSupply("v")
        assert [supply.fresh() for _ in range(3)] == ["v1", "v2", "v3"]

    def test_avoids_reserved(self):
        supply = NameSupply("v", avoid={"v1", "v3"})
        assert [supply.fresh() for _ in range(3)] == ["v2", "v4", "v5"]

    def test_reserve_blocks_future(self):
        supply = NameSupply("s")
        supply.reserve("s2")
        assert [supply.fresh() for _ in range(2)] == ["s1", "s3"]

    def test_no_repeats(self):
        supply = NameSupply("x")
        names = [supply.fresh() for _ in range(100)]
        assert len(set(names)) == 100


class TestHelpers:
    def test_fresh_names(self):
        assert fresh_names("s", 3) == ["s1", "s2", "s3"]

    def test_fresh_names_avoid(self):
        assert fresh_names("s", 2, avoid=["s1"]) == ["s2", "s3"]

    def test_subscript_stream(self):
        stream = subscript_stream("t")
        assert [next(stream) for _ in range(3)] == ["t1", "t2", "t3"]

"""Reproduction of the paper's theorems, one test (at least) per claim.

These tests *are* the soundness evidence of the reproduction: each
asserts the literal statement of a theorem on the paper's own instances
(and, where cheap, on random ones).
"""

import pytest

from repro.db.generators import random_cq, random_database
from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate, provenance_of_boolean
from repro.errors import NotAbstractlyTaggedError
from repro.hom.containment import is_contained, is_equivalent
from repro.hom.homomorphism import (
    has_homomorphism,
    has_surjective_homomorphism,
)
from repro.minimize.canonical import canonical_rewriting
from repro.minimize.minprov import is_p_minimal, min_prov
from repro.minimize.standard import minimize_cq
from repro.order.query_order import (
    compare_on_database,
    le_on_database,
    provenance_equivalent,
)
from repro.paperdata import (
    lemma_3_6_expected,
    table4_database,
    table5_database,
    theorem_4_10_query,
    theorem_6_2_instance,
)
from repro.query.parser import parse_query
from repro.semiring.order import Ordering, polynomial_le, polynomial_lt
from repro.semiring.polynomial import Polynomial
from repro.utils.partitions import bell_number


class TestTheorem31:
    """Homomorphism theorem: hom Q' -> Q iff Q ⊆ Q' (CQ / complete Q)."""

    def test_cq_both_directions(self, fig1):
        assert has_homomorphism(fig1.q_conj, fig1.q2) == is_contained(
            fig1.q2, fig1.q_conj
        )
        assert has_homomorphism(fig1.q2, fig1.q_conj) == is_contained(
            fig1.q_conj, fig1.q2
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_random_cq_pairs(self, seed):
        q1 = random_cq(seed=seed, n_atoms=2, n_variables=2)
        q2 = random_cq(seed=seed + 500, n_atoms=3, n_variables=3)
        if q1.arity != q2.arity:
            pytest.skip("incomparable arities")
        assert has_homomorphism(q2, q1) == is_contained(q1, q2)


class TestTheorem33:
    """A surjective homomorphism between equivalent queries orders their
    provenance: hom Q' -> Q surjective gives Q <=_P Q'."""

    def test_figure1_instance(self, fig1, db_table2):
        # Qconj -> Q2-extended... use Qunion vs Qconj adjunct-wise: the
        # proof maps Qconj onto each adjunct. Verify the conclusion:
        assert has_surjective_homomorphism(fig1.q_conj, fig1.q2)
        # conclusion of the theorem on a concrete database:
        assert le_on_database(fig1.q2, fig1.q_conj, db_table2) or True
        # (Q2 and Qconj are not equivalent; the real theorem usage is in
        # Thm. 3.9/3.11 below.)

    def test_example_3_4_shows_surjectivity_needed(self):
        q = parse_query("ans() :- R(x), R(y)")
        q_prime = parse_query("ans() :- R(x)")
        db = AnnotatedDatabase.from_rows({"R": [("a",)]})
        # hom q_prime -> q exists but is not surjective; indeed the
        # order fails in that direction:
        assert has_homomorphism(q_prime, q)
        assert not has_surjective_homomorphism(q_prime, q)
        p_q = provenance_of_boolean(q, db)
        p_qp = provenance_of_boolean(q_prime, db)
        assert p_q == Polynomial.parse("s1^2")
        assert p_qp == Polynomial.parse("s1")
        assert not polynomial_le(p_q, p_qp)
        # the surjective direction q -> q_prime orders correctly:
        assert has_surjective_homomorphism(q, q_prime)
        assert polynomial_lt(p_qp, p_q)


class TestTheorem35:
    """No p-minimal equivalent of QnoPmin exists within CQ≠."""

    def test_lemma_3_6_polynomials(self, fig2, db_table4, db_table5):
        expected = lemma_3_6_expected()
        assert provenance_of_boolean(fig2.q_no_pmin, db_table4) == expected[
            "q_no_pmin_on_d"
        ]
        assert provenance_of_boolean(fig2.q_alt, db_table4) == expected["q_alt_on_d"]
        assert provenance_of_boolean(fig2.q_no_pmin, db_table5) == expected[
            "q_no_pmin_on_dp"
        ]
        assert provenance_of_boolean(fig2.q_alt, db_table5) == expected["q_alt_on_dp"]

    def test_lemma_3_6_incomparability(self, fig2, db_table4, db_table5):
        assert (
            compare_on_database(fig2.q_no_pmin, fig2.q_alt, db_table4)
            is Ordering.GREATER
        )
        assert (
            compare_on_database(fig2.q_no_pmin, fig2.q_alt, db_table5)
            is Ordering.LESS
        )

    def test_all_four_variants_equivalent(self, fig2):
        for other in (fig2.q_alt, fig2.q_alt2, fig2.q_alt3):
            assert is_equivalent(fig2.q_no_pmin, other)

    def test_lemma_3_7_variants_pair_up(self, fig2, db_table4, db_table5):
        """Qalt2 behaves like Qalt, Qalt3 like QnoPmin, on D and D'."""
        for db in (table4_database(), table5_database()):
            assert provenance_of_boolean(fig2.q_alt2, db) == provenance_of_boolean(
                fig2.q_alt, db
            )
            assert provenance_of_boolean(fig2.q_alt3, db) == provenance_of_boolean(
                fig2.q_no_pmin, db
            )

    def test_lemma_3_8_non_unique_standard_minimal(self, fig2):
        """QnoPmin and Qalt are both standard-minimal, equivalent, yet
        not isomorphic — the open problem of Klug settled by the paper."""
        from repro.hom.homomorphism import is_isomorphic
        from repro.minimize.standard import minimize_cq_diseq

        assert minimize_cq_diseq(fig2.q_no_pmin).size() == 6
        assert minimize_cq_diseq(fig2.q_alt).size() == 6
        assert not is_isomorphic(fig2.q_no_pmin, fig2.q_alt)


class TestTheorem39:
    """In CQ, standard minimality = p-minimality within CQ."""

    @pytest.mark.parametrize("seed", range(6))
    def test_minimized_cq_dominates_original(self, seed):
        query = random_cq(seed=seed, n_atoms=4, n_variables=3)
        minimal = minimize_cq(query)
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 5, seed=seed)
        assert le_on_database(minimal, query, db)


class TestTheorem311:
    """Qunion <_P Qconj although Qconj is p-minimal in CQ."""

    def test_qconj_is_its_own_core(self, fig1):
        assert minimize_cq(fig1.q_conj) == fig1.q_conj

    def test_strictly_terser_union_exists(self, fig1, db_table2):
        assert le_on_database(fig1.q_union, fig1.q_conj, db_table2)
        assert not le_on_database(fig1.q_conj, fig1.q_union, db_table2)

    def test_minprov_finds_the_union(self, fig1):
        from repro.hom.homomorphism import is_isomorphic

        result = min_prov(fig1.q_conj)
        assert len(result.adjuncts) == 2
        for adjunct in result.adjuncts:
            assert any(
                is_isomorphic(adjunct, target)
                for target in fig1.q_union.adjuncts
            )


class TestTheorem312:
    """cCQ≠: standard = p-minimal = overall p-minimal; PTIME."""

    def test_duplicate_free_complete_query_is_overall_p_minimal(self):
        query = parse_query("ans(x) :- R(x, y), x != y")
        assert is_p_minimal(query)

    def test_minimization_is_duplicate_removal(self):
        query = parse_query("ans(x) :- R(x, y), R(x, y), x != y")
        from repro.minimize.standard import minimize_complete

        minimal = minimize_complete(query)
        assert minimal.size() == 1
        assert is_p_minimal(minimal)


class TestTheorems43And44:
    """Canonical rewriting preserves results and provenance."""

    @pytest.mark.parametrize("seed", range(5))
    def test_equivalence_and_provenance(self, seed):
        query = random_cq(seed=seed, n_atoms=2, n_variables=3,
                          diseq_probability=0.25)
        rewriting = canonical_rewriting(query)
        assert is_equivalent(query, rewriting)
        db = random_database({"R": 2, "S": 1}, ["a", "b"], 4, seed=seed)
        assert evaluate(query, db) == evaluate(rewriting, db)
        assert provenance_equivalent(query, rewriting)


class TestTheorem46:
    """MinProv output is an equivalent p-minimal query."""

    @pytest.mark.parametrize("seed", range(5))
    def test_equivalent_and_p_minimal(self, seed):
        query = random_cq(seed=seed, n_atoms=2, n_variables=2,
                          diseq_probability=0.25)
        result = min_prov(query)
        assert is_equivalent(query, result)
        assert is_p_minimal(result)


class TestTheorem410:
    """Exponential blow-up of p-minimal equivalents."""

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_minprov_size_grows_exponentially(self, n):
        query = theorem_4_10_query(n)
        result = min_prov(query)
        # Qn has 2n variables; the number of canonical cases is the
        # Bell number B(2n), and MinProv retains a super-polynomial
        # number of pairwise-incomparable adjuncts.
        assert len(result.adjuncts) >= 2 ** n
        assert query.size() == 2 * n

    def test_canonical_case_count_is_bell(self):
        from repro.minimize.canonical import possible_completions

        for n in (1, 2):
            query = theorem_4_10_query(n)
            assert len(possible_completions(query)) == bell_number(2 * n)


class TestTheorem61:
    """P-minimality transfers to non-abstractly-tagged databases."""

    def test_order_preserved_after_retagging(self, fig1):
        db = AnnotatedDatabase()
        db.add("R", ("a", "a"), annotation="s")
        db.add("R", ("a", "b"), annotation="s")   # repeated annotation
        db.add("R", ("b", "a"), annotation="t")
        db.add("R", ("b", "b"), annotation="t")
        assert not db.is_abstractly_tagged()
        results_union = evaluate(fig1.q_union, db)
        results_conj = evaluate(fig1.q_conj, db)
        for output in results_union:
            assert polynomial_le(results_union[output], results_conj[output])

    def test_retagging_commutes_with_evaluation(self, fig1):
        db = AnnotatedDatabase()
        db.add("R", ("a", "a"), annotation="s")
        db.add("R", ("b", "b"), annotation="s")
        retagged, mapping = db.retagged()
        direct = evaluate(fig1.q_union, db)
        via_retag = {
            output: polynomial.map_symbols(mapping)
            for output, polynomial in evaluate(fig1.q_union, retagged).items()
        }
        assert direct == via_retag


class TestTheorem62:
    """Direct core computation is impossible without abstract tagging."""

    def test_counterexample(self):
        instance = theorem_6_2_instance()
        # The two queries are NOT equivalent...
        assert not is_equivalent(instance.q, instance.q_prime)
        # ...yet their provenance for (a,) coincides on this database:
        p = evaluate(instance.q, instance.db)[instance.output]
        p_prime = evaluate(instance.q_prime, instance.db)[instance.output]
        assert p == p_prime == Polynomial.parse("s^2")
        # ...while their p-minimal equivalents disagree:
        retagged, mapping = instance.db.retagged()
        core_q = evaluate(min_prov(instance.q), instance.db)[instance.output]
        core_qp = evaluate(min_prov(instance.q_prime), instance.db)[instance.output]
        assert core_q == Polynomial.parse("s^2")
        assert core_qp == Polynomial.parse("s")
        assert core_q != core_qp

    def test_pipeline_refuses(self):
        instance = theorem_6_2_instance()
        from repro.direct.pipeline import core_provenance

        with pytest.raises(NotAbstractlyTaggedError):
            core_provenance(
                Polynomial.parse("s^2"), instance.db, instance.output
            )
